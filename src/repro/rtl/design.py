"""Elaboration of a memory system into an RTL design + simulation.

:func:`elaborate` builds the register-level chain for a (single- or
multi-segment) memory system; :class:`RtlDesign` executes it with the
downstream-to-upstream combinational order of the handshake chain and
collects outputs, statistics and (optionally) a waveform dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..microarch.memory_system import MemorySystem
from ..stencil.spec import StencilSpec
from .components import RtlFifo, RtlFilter, RtlKernel, RtlStreamSource
from .core import WaveformDump


class RtlDeadlockError(RuntimeError):
    """No RTL module made progress while the run was incomplete."""


@dataclass
class RtlRunStats:
    total_cycles: int
    outputs_produced: int
    fifo_max_occupancy: Dict[str, int]
    filter_forwarded: Dict[str, int]
    filter_discarded: Dict[str, int]


@dataclass
class RtlRunResult:
    outputs: List[float]
    stats: RtlRunStats
    dump: Optional[WaveformDump]


@dataclass
class _RtlSegment:
    first: int
    last: int
    source: RtlStreamSource
    fifos: List[RtlFifo]


class RtlDesign:
    """An elaborated chain ready to simulate on a concrete grid."""

    def __init__(
        self,
        spec: StencilSpec,
        system: MemorySystem,
        grid: np.ndarray,
        kernel_latency: int = 4,
        dump_waveform: bool = False,
    ) -> None:
        if tuple(grid.shape) != tuple(spec.grid):
            raise ValueError("grid shape does not match spec")
        self.spec = spec
        self.system = system
        self.filters: List[RtlFilter] = [
            RtlFilter(
                name=f"filter{f.filter_id}",
                stream_domain=system.stream_domain,
                output_domain=f.output_domain,
            )
            for f in system.filters
        ]
        self.segments: List[_RtlSegment] = []
        for seg in system.segments:
            self.segments.append(
                _RtlSegment(
                    first=seg.first_filter,
                    last=seg.last_filter,
                    source=RtlStreamSource(
                        f"stream{seg.segment_id}",
                        system.stream_domain,
                        grid,
                    ),
                    fifos=[
                        RtlFifo(f"fifo{f.fifo_id}", f.capacity)
                        for f in seg.fifos
                    ],
                )
            )
        self.kernel = RtlKernel(
            references=[f.reference for f in system.filters],
            expression=spec.expression,
            latency=kernel_latency,
        )
        self.dump = WaveformDump() if dump_waveform else None
        if self.dump is not None:
            for flt in self.filters:
                self.dump.watch(*flt.signals())
            for seg in self.segments:
                self.dump.watch(*seg.source.signals())
                for fifo in seg.fifos:
                    self.dump.watch(*fifo.signals())
            self.dump.watch(*self.kernel.signals())
        self._expected = spec.iteration_domain.count()
        self.cycle = 0

    # ------------------------------------------------------------------
    def _step(self) -> bool:
        progress = False
        retired_before = len(self.kernel.outputs)
        if self.kernel.try_fire(self.filters):
            progress = True
        for seg in self.segments:
            for k in range(seg.last, seg.first - 1, -1):
                flt = self.filters[k]
                if not flt.ready:
                    continue
                # Upstream of splitter k.
                if k == seg.first:
                    if not seg.source.valid.value:
                        continue
                    upstream_pop = seg.source.pop
                else:
                    fifo_in = seg.fifos[k - seg.first - 1]
                    if fifo_in.empty:
                        continue
                    upstream_pop = fifo_in.pop
                fifo_out = (
                    seg.fifos[k - seg.first] if k < seg.last else None
                )
                if fifo_out is not None and fifo_out.full:
                    continue
                value = upstream_pop()
                if fifo_out is not None:
                    fifo_out.push(value)
                flt.accept(value)
                progress = True
        self.kernel.drain()
        if len(self.kernel.outputs) > retired_before:
            progress = True  # pipeline retirement is forward progress
        if self.dump is not None:
            self.dump.sample(self.cycle)
        return progress

    def run(self, max_cycles: Optional[int] = None) -> RtlRunResult:
        if max_cycles is None:
            stream_len = self.system.stream_domain.count()
            max_cycles = 4 * (
                stream_len
                + self._expected
                + self.system.total_buffer_size
                + self.kernel.latency
                + 64
            )
        while (
            len(self.kernel.outputs) < self._expected
            or not self.kernel.all_retired()
        ):
            self.cycle += 1
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"RTL run exceeded {max_cycles} cycles with "
                    f"{len(self.kernel.outputs)}/{self._expected} "
                    "outputs"
                )
            progress = self._step()
            if not progress and not self.kernel._pipeline:
                raise RtlDeadlockError(
                    f"RTL deadlock at cycle {self.cycle}: "
                    f"{len(self.kernel.outputs)}/{self._expected} "
                    "outputs"
                )
        stats = RtlRunStats(
            total_cycles=self.cycle,
            outputs_produced=len(self.kernel.outputs),
            fifo_max_occupancy={
                fifo.name: fifo.max_occupancy
                for seg in self.segments
                for fifo in seg.fifos
            },
            filter_forwarded={
                flt.name: int(flt.forwarded.value)
                for flt in self.filters
            },
            filter_discarded={
                flt.name: int(flt.discarded.value)
                for flt in self.filters
            },
        )
        return RtlRunResult(
            outputs=list(self.kernel.outputs),
            stats=stats,
            dump=self.dump,
        )


def elaborate(
    spec: StencilSpec,
    system: MemorySystem,
    grid: np.ndarray,
    kernel_latency: int = 4,
    dump_waveform: bool = False,
) -> RtlDesign:
    """Elaborate the generated memory system into an RTL design."""
    return RtlDesign(
        spec, system, grid, kernel_latency, dump_waveform
    )


def simulate_rtl(
    spec: StencilSpec,
    system: MemorySystem,
    grid: np.ndarray,
    kernel_latency: int = 4,
    dump_waveform: bool = False,
) -> RtlRunResult:
    """One-call elaboration + simulation."""
    return elaborate(
        spec, system, grid, kernel_latency, dump_waveform
    ).run()
