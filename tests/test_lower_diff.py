"""Differential campaign: golden vs chain simulator vs compiled.

Seeded random stencils — varying dimensionality, window shape, grid
size, boundary mode and domain skew — executed through three
independent implementations:

* the NumPy golden reference (``repro.stencil.golden``),
* the behavioural chain simulator (``repro.sim.engine``), and
* the lowered vectorized kernel (``repro.lower``).

Agreement must be *exact* (bit-equal float64), not approximate: all
three replay the same expression semantics on the same inputs, so any
drift is a real lowering bug, never rounding noise.
"""

import random

import numpy as np
import pytest

from repro.lower import (
    LoweringUnsupported,
    bufferize_plan,
    convert,
    get_converter,
)
from repro.lower.convert_c import c_toolchain
from repro.microarch.memory_system import build_memory_system
from repro.service.executor import compile_plan
from repro.service.fingerprint import CompileOptions, fingerprint
from repro.sim.engine import ChainSimulator
from repro.stencil import make_input, skewed_denoise
from repro.stencil.boundary import (
    PAD_MODES,
    pad_grid,
    pad_spec,
    run_with_boundary,
)
from repro.stencil.golden import golden_output_sequence
from repro.stencil.spec import StencilSpec, StencilWindow

CAMPAIGN_SEED = 20140605


def random_spec(rng: random.Random, ndim: int) -> StencilSpec:
    """A random stencil window on a small grid (window always fits)."""
    reach = 2 if ndim < 3 else 1
    n_offsets = rng.randint(2, 5 if ndim < 3 else 4)
    offsets = {tuple(0 for _ in range(ndim))}  # keep the center read
    while len(offsets) < n_offsets:
        offsets.add(
            tuple(
                rng.randint(-reach, reach) for _ in range(ndim)
            )
        )
    window = StencilWindow.from_offsets(sorted(offsets))
    mins, maxs = window.span()
    grid = tuple(
        (hi - lo) + rng.randint(3, 6 if ndim < 3 else 4)
        for lo, hi in zip(mins, maxs)
    )
    return StencilSpec(f"RAND{ndim}D", grid, window)


def compiled_outputs(
    spec: StencilSpec,
    grid: np.ndarray,
    streams: int = 1,
    gather_limit=None,
    converter: str = "numpy",
) -> np.ndarray:
    opts = CompileOptions(offchip_streams=streams)
    plan = compile_plan(spec, opts, fingerprint(spec, opts))
    program = bufferize_plan(plan)
    kwargs = {} if gather_limit is None else {
        "gather_limit": gather_limit
    }
    kernel = get_converter(converter)(program, **kwargs)
    return np.ascontiguousarray(kernel.run(grid), dtype=np.float64)


def chain_outputs(spec: StencilSpec, grid: np.ndarray) -> np.ndarray:
    result = ChainSimulator(
        spec, build_memory_system(spec.analysis()), grid
    ).run()
    return np.asarray(result.output_values(), dtype=np.float64)


def assert_three_way_exact(spec: StencilSpec, grid: np.ndarray):
    golden = np.asarray(
        golden_output_sequence(spec, grid), dtype=np.float64
    )
    compiled = compiled_outputs(spec, grid)
    simulated = chain_outputs(spec, grid)
    assert np.array_equal(compiled, golden), spec.name
    assert np.array_equal(simulated, golden), spec.name


class TestRandomInteriorSpecs:
    @pytest.mark.parametrize("case", range(8))
    def test_three_way_exact_agreement(self, case):
        rng = random.Random(CAMPAIGN_SEED + case)
        spec = random_spec(rng, ndim=rng.choice((1, 2, 2, 3)))
        grid = np.random.default_rng(case).uniform(
            -9, 9, size=spec.grid
        )
        assert_three_way_exact(spec, grid)


class TestBoundaryModes:
    @pytest.mark.parametrize(
        "mode_index,mode", list(enumerate(PAD_MODES))
    )
    @pytest.mark.parametrize("case", range(2))
    def test_padded_spec_three_way_exact(self, mode_index, mode, case):
        """Full-size outputs: the compiled kernel runs the padded spec
        (pinned non-interior domain) bit-identically for every padding
        mode."""
        rng = random.Random(CAMPAIGN_SEED + 100 * case + mode_index)
        spec = random_spec(rng, ndim=2)
        base = make_input(spec, seed=case)
        padded_spec = pad_spec(spec)
        padded_grid = pad_grid(spec, base, mode=mode)

        golden_full = run_with_boundary(spec, base, mode=mode)
        compiled = compiled_outputs(padded_spec, padded_grid)
        simulated = chain_outputs(padded_spec, padded_grid)
        flat = golden_full.reshape(-1)
        assert np.array_equal(compiled, flat)
        assert np.array_equal(simulated, flat)


class TestSkewedDomains:
    @pytest.mark.parametrize("rows,cols", [(6, 8), (8, 10), (9, 7)])
    def test_skewed_gather_three_way_exact(self, rows, cols):
        spec = skewed_denoise(rows=rows, cols=cols)
        grid = make_input(spec, seed=rows * cols)
        assert_three_way_exact(spec, grid)

    @pytest.mark.parametrize("rows,cols", [(6, 8), (9, 7)])
    def test_chunked_gather_matches_eager_and_golden(self, rows, cols):
        """Forcing chunked gather replay (tiny limit) must not change
        a single output bit relative to the eager table or golden."""
        spec = skewed_denoise(rows=rows, cols=cols)
        grid = make_input(spec, seed=rows + cols)
        golden = np.asarray(
            golden_output_sequence(spec, grid), dtype=np.float64
        )
        chunked = compiled_outputs(spec, grid, gather_limit=2)
        assert np.array_equal(chunked, golden)
        assert np.array_equal(chunked, compiled_outputs(spec, grid))


class TestMultiStream:
    @pytest.mark.parametrize("case", range(4))
    @pytest.mark.parametrize("streams", [2, 3])
    def test_multi_stream_three_way_exact(self, case, streams):
        """The per-stream sub-programs reproduce golden bit-for-bit
        over the random corpus (2D only: enough window points)."""
        rng = random.Random(CAMPAIGN_SEED + case)
        spec = random_spec(rng, ndim=2)
        if spec.window.n_points <= streams:
            pytest.skip("window too small for this stream count")
        grid = np.random.default_rng(case).uniform(
            -9, 9, size=spec.grid
        )
        golden = np.asarray(
            golden_output_sequence(spec, grid), dtype=np.float64
        )
        compiled = compiled_outputs(spec, grid, streams=streams)
        assert np.array_equal(compiled, golden), spec.name


@pytest.mark.skipif(
    c_toolchain() is None, reason="no C toolchain on this machine"
)
class TestCConverterDiff:
    @pytest.mark.parametrize("case", range(4))
    def test_c_three_way_exact(self, case):
        rng = random.Random(CAMPAIGN_SEED + case)
        spec = random_spec(rng, ndim=rng.choice((1, 2, 2, 3)))
        grid = np.random.default_rng(case).uniform(
            -9, 9, size=spec.grid
        )
        golden = np.asarray(
            golden_output_sequence(spec, grid), dtype=np.float64
        )
        assert np.array_equal(
            compiled_outputs(spec, grid, converter="c"), golden
        )

    def test_c_skewed_gather_exact(self):
        spec = skewed_denoise(rows=7, cols=9)
        grid = make_input(spec, seed=63)
        golden = np.asarray(
            golden_output_sequence(spec, grid), dtype=np.float64
        )
        for gather_limit in (None, 2):
            assert np.array_equal(
                compiled_outputs(
                    spec,
                    grid,
                    converter="c",
                    gather_limit=gather_limit,
                ),
                golden,
            )


class TestCampaignCoversFallbacks:
    def test_every_random_spec_actually_lowered(self):
        """Guard the campaign itself: the random generator must produce
        specs the lowering accepts (otherwise the diff suite would
        silently shrink to nothing)."""
        lowered = 0
        for case in range(8):
            rng = random.Random(CAMPAIGN_SEED + case)
            spec = random_spec(rng, ndim=rng.choice((1, 2, 2, 3)))
            opts = CompileOptions()
            plan = compile_plan(spec, opts, fingerprint(spec, opts))
            try:
                bufferize_plan(plan)
            except LoweringUnsupported:  # pragma: no cover
                continue
            lowered += 1
        assert lowered == 8
