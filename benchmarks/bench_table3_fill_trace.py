"""Table 3 — the execution flow of the microarchitecture on DENOISE:
automatic filling of the reuse buffers by the distributed modules.

The paper's table shows (at 768x1024 scale): filter 4 forwards once and
stalls first, FIFO 3 fills; the stall front moves upstream until FIFO 0
fills; then every filter forwards and the kernel streams at full rate.
We regenerate the trace at a reduced 24x32 grid (the structure is
scale-free) and check the same event sequence.
"""

import numpy as np

from conftest import emit

from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.sim.modules import SimFilter
from repro.sim.trace import TraceRecorder
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE

GRID = (24, 32)


def _run_traced():
    spec = DENOISE.with_grid(GRID)
    grid = make_input(spec)
    system = build_memory_system(spec.analysis())
    trace = TraceRecorder(max_cycles=3000)
    result = ChainSimulator(spec, system, grid, trace=trace).run()
    return spec, grid, system, result, trace


def bench_table3_fill_trace(benchmark):
    """Benchmark a full traced simulation and verify the fill order."""
    spec, grid, system, result, trace = benchmark(_run_traced)

    # Function correctness first.
    assert np.allclose(
        result.output_values(), golden_output_sequence(spec, grid)
    )

    # Table 3 event order: the latest filter stalls first ...
    stalls = [
        trace.first_cycle_with_status(k, SimFilter.STALLED)
        for k in range(system.n_references)
    ]
    assert stalls[4] is not None
    assert all(
        s is None or s > stalls[4] for s in stalls[:4]
    )
    # ... FIFOs fill from the chain tail toward the head ...
    fills = [trace.fifo_fill_cycle(f.fifo_id) for f in system.fifos]
    assert fills[3] < fills[0]
    # ... and a steady state exists where every filter forwards.
    assert any(
        all(s == SimFilter.FORWARDING for s in row.filter_statuses)
        for row in trace.rows
    )

    emit(
        f"Table 3 — execution flow (DENOISE at {GRID[0]}x{GRID[1]}; "
        "f=forwarding d=discarding s=stalled .=idle)",
        trace.render(max_rows=90, compress=True),
    )


def bench_table3_untraced_simulation(benchmark):
    """Same run without tracing: the simulator's raw speed."""
    spec = DENOISE.with_grid(GRID)
    grid = make_input(spec)

    def run():
        system = build_memory_system(spec.analysis())
        return ChainSimulator(spec, system, grid).run()

    result = benchmark(run)
    assert result.stats.outputs_produced == (
        spec.iteration_domain.count()
    )
