"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation section and prints the reproduced rows (run with ``-s`` to
see them, e.g. ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print one reproduced artifact with a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
