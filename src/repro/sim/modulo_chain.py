"""The paper's future-work alternative (Section 6): a *modulo-scheduled*
centralized controller over the same non-uniform banks.

"Our data streaming method may not be the only solution for utilizing
the non-uniform reuse buffers.  A modified modulo scheduling extended
from conventional uniform memory partitioning is also a good candidate."

This module implements that candidate: keep the paper's n-1 banks with
their exact non-uniform capacities, but drive them with a static
schedule instead of distributed handshakes.  Bank ``k`` is a circular
buffer of capacity ``c_k`` addressed by ``(t mod c_k)`` counters.  Every
cycle one element enters bank 0; the element *read* from bank ``k``
(age ``D_k = c_0 + ... + c_k``) is forwarded simultaneously to reference
port ``k+1`` and to bank ``k+1``'s write port — one read plus one write
per dual-ported bank per cycle, so the schedule is port-feasible.

Properties (verified by tests):

* same bank count and total capacity as the streaming design — the
  non-uniform optimality transfers to the centralized controller;
* functionally identical output on rectangular (hull-streamed) domains;
* the address generation needs a modulo counter per bank with a
  *non-uniform, generally non-power-of-two* modulus — this is the cost
  the streaming design avoids, quantified by
  :func:`repro.resources.estimate.estimate_modulo_chain`.

Limitation (deliberate, also the paper's point): the static schedule
assumes constant reuse distances, i.e. hull-box streaming of box
domains; skewed domains would need the dynamic adaptation that only the
distributed design provides (Section 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..microarch.memory_system import MemorySystem
from ..polyhedral.domain import BoxDomain
from ..polyhedral.lexorder import Vector
from ..stencil.expr import evaluate
from ..stencil.spec import StencilSpec


@dataclass
class ModuloChainStats:
    """Timing/occupancy statistics of a modulo-scheduled run."""

    total_cycles: int
    outputs_produced: int
    fill_cycles: int
    bank_moduli: List[int]


@dataclass
class ModuloChainResult:
    outputs: List[Tuple[Vector, float]]
    stats: ModuloChainStats

    def output_values(self) -> List[float]:
        return [v for _, v in self.outputs]


class ModuloChainSimulator:
    """Cycle-counting simulator of the modulo-scheduled controller."""

    def __init__(
        self,
        spec: StencilSpec,
        system: MemorySystem,
        grid: np.ndarray,
    ) -> None:
        if tuple(grid.shape) != tuple(spec.grid):
            raise ValueError("grid shape does not match spec")
        if not isinstance(system.stream_domain, BoxDomain):
            raise TypeError(
                "the static modulo schedule requires hull-box "
                "streaming (constant reuse distances)"
            )
        if len(system.segments) != 1:
            raise ValueError(
                "modulo scheduling drives the unbroken single-stream "
                "chain"
            )
        self.spec = spec
        self.system = system
        self.grid = grid
        self._capacities = system.fifo_capacities()
        self._references = [f.reference for f in system.filters]
        self._expression = spec.expression

    def run(self) -> ModuloChainResult:
        stream_domain = self.system.stream_domain
        refs = self._references
        caps = self._capacities
        n = len(refs)
        # Cumulative delays: reference k lags reference 0 by D_{k-1}.
        delays = [0]
        for c in caps:
            delays.append(delays[-1] + c)
        # Circular banks, addressed (t mod c_k).
        banks: List[List[Optional[Tuple[Vector, float]]]] = [
            [None] * c for c in caps
        ]
        expected = self.spec.iteration_domain.count()
        outputs: List[Tuple[Vector, float]] = []
        first_output_cycle: Optional[int] = None

        # The kernel fires at the cycle the earliest reference's needed
        # element arrives; iterate iterations in lex order and walk the
        # stream in lock step.
        iter_points = self.spec.iteration_domain.iter_points()
        next_iter = next(iter_points, None)
        t = 0
        for element_point in stream_domain.iter_points():
            t += 1
            incoming: Tuple[Vector, float] = (
                element_point,
                float(self.grid[element_point]),
            )
            # Modulo-scheduled data movement: the element read out of
            # bank k this cycle cascades into bank k+1.
            cascade = incoming
            port_values: List[Tuple[Vector, float]] = [incoming]
            for k in range(n - 1):
                slot = t % caps[k]
                read_out = banks[k][slot]
                banks[k][slot] = cascade
                cascade = read_out  # forwarded to port k+1 and bank k+1
                port_values.append(read_out)  # may be None during fill

            # Fire the kernel if the current iteration's earliest
            # element is exactly the incoming one.
            if next_iter is not None:
                needed_first = refs[0].access_index(next_iter)
                if needed_first == element_point:
                    env: Dict[Tuple[str, Vector], float] = {}
                    for ref, slot_value in zip(refs, port_values):
                        if slot_value is None:
                            raise RuntimeError(
                                "modulo schedule underflow: bank read "
                                f"empty at iteration {next_iter}"
                            )
                        point, value = slot_value
                        expected_point = ref.access_index(next_iter)
                        if point != expected_point:
                            raise RuntimeError(
                                "modulo schedule misalignment: port "
                                f"for {ref.label} holds {point}, "
                                f"expected {expected_point}"
                            )
                        env[(ref.array, ref.offset)] = value
                    outputs.append(
                        (
                            next_iter,
                            float(evaluate(self._expression, env)),
                        )
                    )
                    if first_output_cycle is None:
                        first_output_cycle = t
                    next_iter = next(iter_points, None)
        if len(outputs) != expected:
            raise RuntimeError(
                f"modulo-scheduled run produced {len(outputs)} of "
                f"{expected} outputs"
            )
        stats = ModuloChainStats(
            total_cycles=t,
            outputs_produced=len(outputs),
            fill_cycles=first_output_cycle or 0,
            bank_moduli=list(caps),
        )
        return ModuloChainResult(outputs=outputs, stats=stats)
