"""Cross-process trace stitching: clock alignment, critical path,
stage coverage — plus the end-to-end fabric test that a 2-node router
run produces one stitched trace spanning all three process layers."""

import glob
import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stitch import (
    critical_path,
    events_for_trace,
    format_timeline,
    load_jsonl_trace,
    stage_coverage,
    stitch_traces,
    trace_ids,
)
from repro.obs.tracing import Tracer, install_tracer, uninstall_tracer
from repro.service.router import NodeConfig, Router, RouterConfig

TRACE = "a" * 32


def _write_jsonl(path, meta, records):
    with open(path, "w", encoding="utf-8") as fh:
        if meta is not None:
            fh.write(json.dumps(meta) + "\n")
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


def _meta(process, pid, epoch_us):
    return {
        "kind": "trace_meta",
        "process": process,
        "pid": pid,
        "epoch_unix_us": epoch_us,
    }


def _span(name, ts_us, dur_us, span_id=None, parent=None, **extra):
    rec = {
        "name": name,
        "ts_us": ts_us,
        "dur_us": dur_us,
        "tid": 1,
        "depth": 0,
        "parent": None,
        "args": extra,
        "trace_id": TRACE,
    }
    if span_id:
        rec["span_id"] = span_id
    if parent:
        rec["parent_span_id"] = parent
    return rec


class TestLoadJsonl:
    def test_meta_and_records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_jsonl(
            path, _meta("router", 1, 5.0), [_span("a", 0, 10)]
        )
        meta, records = load_jsonl_trace(path)
        assert meta["process"] == "router"
        assert [r["name"] for r in records] == ["a"]

    def test_truncated_line_names_position(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(_meta("r", 1, 0.0)) + "\n")
            fh.write('{"name": "a", "ts_us":')  # torn write
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            load_jsonl_trace(path)

    def test_non_span_object_rejected(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_jsonl(path, None, [{"foo": 1}])
        with pytest.raises(ValueError, match="not a span record"):
            load_jsonl_trace(path)


class TestStitch:
    def _two_files(self, tmp_path):
        """Router at epoch 1e6 us, node at epoch 1e6+100 us."""
        router = str(tmp_path / "router.jsonl")
        node = str(tmp_path / "node.jsonl")
        _write_jsonl(
            router,
            _meta("router", 1, 1_000_000.0),
            [_span("router.request", 0.0, 1000.0, span_id="r" * 16)],
        )
        _write_jsonl(
            node,
            _meta("node", 2, 1_000_100.0),
            [
                _span(
                    "service.request",
                    50.0,
                    500.0,
                    span_id="s" * 16,
                    parent="r" * 16,
                ),
                # A pool worker's relayed span: own pid, no meta of
                # its own in any file.
                dict(
                    _span(
                        "worker.execute",
                        120.0,
                        200.0,
                        span_id="w" * 16,
                        parent="s" * 16,
                    ),
                    pid=3,
                ),
            ],
        )
        return [router, node]

    def test_rebase_aligns_epochs(self, tmp_path):
        doc = stitch_traces(self._two_files(tmp_path))
        events = {
            e["name"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        # Root starts at the global minimum; the node span lands
        # 150 us later (100 us epoch skew + 50 us local offset).
        assert events["router.request"]["ts"] == 0.0
        assert events["service.request"]["ts"] == pytest.approx(150.0)
        assert all(
            e["ts"] >= 0 for e in events.values()
        )

    def test_distinct_pid_rows_with_names(self, tmp_path):
        doc = stitch_traces(self._two_files(tmp_path))
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {
            1: "router",
            2: "node",
            3: "pool-worker-3",
        }
        assert {
            e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"
        } == {1, 2, 3}

    def test_missing_meta_is_an_error(self, tmp_path):
        path = str(tmp_path / "bare.jsonl")
        _write_jsonl(path, None, [_span("a", 0, 1)])
        with pytest.raises(ValueError, match="no trace_meta header"):
            stitch_traces([path])

    def test_trace_ids_counts(self, tmp_path):
        doc = stitch_traces(self._two_files(tmp_path))
        assert trace_ids(doc) == {TRACE: 3}

    def test_timeline_renders_every_span(self, tmp_path):
        doc = stitch_traces(self._two_files(tmp_path))
        text = format_timeline(
            events_for_trace(doc, TRACE), {1: "router", 2: "node"}
        )
        assert "router.request" in text
        assert "worker.execute" in text


def _doc(events):
    return {"traceEvents": events}


def _event(name, ts, dur, span_id=None, parent=None, pid=1):
    return {
        "name": name,
        "ph": "X",
        "ts": float(ts),
        "dur": float(dur),
        "pid": pid,
        "tid": 0,
        "args": {
            "trace_id": TRACE,
            **({"span_id": span_id} if span_id else {}),
            **({"parent_span_id": parent} if parent else {}),
        },
    }


class TestCriticalPath:
    def test_descends_dominant_children(self):
        doc = _doc(
            [
                _event("root", 0, 1000, span_id="r"),
                _event("a", 10, 600, span_id="a", parent="r"),
                _event("b", 700, 100, span_id="b", parent="r"),
                _event("g", 20, 400, span_id="g", parent="a"),
            ]
        )
        assert [e["name"] for e in critical_path(doc, TRACE)] == [
            "root",
            "a",
            "g",
        ]

    def test_empty_trace(self):
        assert critical_path(_doc([]), TRACE) == []

    def test_orphan_parent_ids_do_not_break_rooting(self):
        # A span whose parent never exported (chaos-killed node) is a
        # root candidate, but the longest root still wins.
        doc = _doc(
            [
                _event("root", 0, 1000, span_id="r"),
                _event("lost", 5, 10, span_id="x", parent="gone"),
            ]
        )
        path = critical_path(doc, TRACE)
        assert path[0]["name"] == "root"


class TestStageCoverage:
    def test_union_of_overlapping_children(self):
        doc = _doc(
            [
                _event("root", 0, 1000, span_id="r"),
                _event("a", 0, 400, span_id="a", parent="r"),
                _event("b", 300, 300, span_id="b", parent="r"),
                _event("c", 800, 100, span_id="c", parent="r"),
            ]
        )
        # Union: [0, 600) + [800, 900) = 700 of 1000.
        assert stage_coverage(doc, TRACE) == pytest.approx(0.7)

    def test_children_clipped_to_root_window(self):
        doc = _doc(
            [
                _event("root", 100, 100, span_id="r"),
                _event("a", 0, 1000, span_id="a", parent="r"),
            ]
        )
        assert stage_coverage(doc, TRACE) == pytest.approx(1.0)

    def test_no_root_returns_none(self):
        assert stage_coverage(_doc([]), TRACE) is None


@pytest.mark.slow
class TestStitchedFabricTrace:
    def test_two_node_run_spans_three_process_layers(self, tmp_path):
        """A traced 2-node router campaign stitches into one valid
        trace_event document: distinct pid per process, non-negative
        epoch-aligned timestamps, and for every request one trace_id
        shared by router, node and pool-worker spans with >=90% of the
        root span's wall-clock attributed to named stages."""
        trace_dir = str(tmp_path / "traces")
        registry = MetricsRegistry()
        config = RouterConfig(
            nodes=2,
            node=NodeConfig(
                workers=2,
                worker_mode="process",
                cache_dir=str(tmp_path / "cache"),
            ),
            trace_dir=trace_dir,
        )
        tracer = install_tracer(Tracer(name="router"))
        try:
            router = Router(config, registry=registry).start()
            try:
                slots = [
                    router.submit(
                        {
                            "proto": 1,
                            "id": f"t-{name}",
                            "benchmark": name,
                            "grid": [10, 12],
                        }
                    )
                    for name in ("SOBEL", "DENOISE")
                ]
                responses = [s.result(timeout=120) for s in slots]
            finally:
                assert router.close(timeout=120)
            n = tracer.export_jsonl(
                os.path.join(trace_dir, "router.jsonl")
            )
        finally:
            uninstall_tracer()
        assert n > 0
        assert all(r.ok for r in responses), [
            r.to_json() for r in responses if not r.ok
        ]

        paths = sorted(glob.glob(os.path.join(trace_dir, "*.jsonl")))
        assert len(paths) == 3  # router + both nodes
        doc = stitch_traces(paths)
        json.loads(json.dumps(doc))  # loads as valid trace_event JSON

        complete = [
            e for e in doc["traceEvents"] if e["ph"] == "X"
        ]
        assert complete
        assert all(e["ts"] >= 0 for e in complete)
        named_pids = {
            e["pid"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert {e["pid"] for e in complete} <= named_pids

        for response in responses:
            assert response.trace_id
            events = events_for_trace(doc, response.trace_id)
            layers = {e["name"].split(".")[0] for e in events}
            assert {"router", "service", "worker"} <= layers
            # Three distinct processes contributed to this request.
            assert len({e["pid"] for e in events}) >= 3
            coverage = stage_coverage(doc, response.trace_id)
            assert coverage is not None and coverage >= 0.9
            path = critical_path(doc, response.trace_id)
            assert path and path[0]["name"] == "router.request"
            assert len(path) >= 2


class TestTraceCli:
    def _fabric_dir(self, tmp_path):
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        _write_jsonl(
            str(trace_dir / "router.jsonl"),
            _meta("router", 1, 1_000_000.0),
            [
                _span(
                    "router.request",
                    0.0,
                    1000.0,
                    span_id="r" * 16,
                    request="req-1",
                ),
                _span(
                    "router.node_wait",
                    10.0,
                    980.0,
                    span_id="n" * 16,
                    parent="r" * 16,
                ),
            ],
        )
        _write_jsonl(
            str(trace_dir / "node-0-g0.jsonl"),
            _meta("serve-2", 2, 1_000_050.0),
            [
                _span(
                    "service.request",
                    0.0,
                    900.0,
                    span_id="s" * 16,
                    parent="n" * 16,
                )
            ],
        )
        return trace_dir

    def test_prints_timeline_coverage_and_critical_path(
        self, tmp_path, capsys
    ):
        from repro.cli import main as cli_main

        trace_dir = self._fabric_dir(tmp_path)
        out_file = tmp_path / "stitched.json"
        rc = cli_main(
            [
                "trace",
                "req-1",
                "--trace-dir",
                str(trace_dir),
                "--out",
                str(out_file),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "3 spans across 2 processes" in captured.out
        assert "router.request" in captured.out
        assert "stage coverage" in captured.out
        assert "critical path:" in captured.out
        # node_wait -> service.request chain crosses the processes.
        assert "service.request (serve-2)" in captured.out
        doc = json.loads(out_file.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} == {"M", "X"}

    def test_unknown_request_id_fails(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace_dir = self._fabric_dir(tmp_path)
        rc = cli_main(
            ["trace", "nope", "--trace-dir", str(trace_dir)]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "no trace for request" in captured.err
        assert "req-1" in captured.err  # lists what it does know

    def test_empty_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["trace", "--trace-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "no .jsonl trace files" in captured.err


class TestTopCli:
    def test_renders_fabric_snapshot(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        router_reg = MetricsRegistry()
        router_reg.counter(
            "router_requests_total", {"status": "ok"}
        ).inc(3)
        router_reg.histogram(
            "router_stage_ms", {"stage": "total"}, buckets=(1, 10, 100)
        ).observe(12.0)
        router_reg.record_exemplar(
            "router_request_latency_ms",
            12.0,
            {"request": "req-slow", "status": "ok"},
        )
        node_reg = MetricsRegistry()
        node_reg.counter(
            "service_requests_total", {"status": "ok"}
        ).inc(3)
        node_reg.counter(
            "service_cache_total", {"outcome": "hit"}
        ).inc(2)
        node_reg.counter(
            "service_cache_total", {"outcome": "miss"}
        ).inc(1)
        node_reg.histogram(
            "service_stage_ms",
            {"stage": "execute"},
            buckets=(1, 10, 100),
        ).observe(8.0)
        fabric = {
            "router": router_reg.snapshot(),
            "nodes": {"0": node_reg.snapshot(), "1": None},
            "merged": {},
        }
        path = tmp_path / "fabric.json"
        path.write_text(json.dumps(fabric))

        rc = cli_main(["top", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fabric summary (3 sources)" in out
        assert "per-node health:" in out
        assert "unreachable" in out  # node 1 never answered
        assert "node.execute" in out and "router.total" in out
        assert "p95_ms" in out
        assert "req-slow" in out  # slowest-request exemplar

    def test_rejects_non_metrics_json(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        rc = cli_main(["top", str(path)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "not a metrics snapshot" in captured.err
