"""Multi-node fingerprint router over service-node subprocesses.

:class:`Router` is the front end of a small cluster: it owns the
client-facing JSONL surface, spawns N *service nodes* (each one a
``repro serve`` subprocess speaking the :mod:`repro.service.proto`
JSONL protocol over its stdin/stdout pipes) and places every request
on one node by **rendezvous hashing** its plan fingerprint:

* the fingerprint is computed *at the router* from the parsed
  request, so placement needs no node round trip;
* :func:`rendezvous_order` ranks all nodes by a per-(fingerprint,
  node) hash — each fingerprint has one deterministic *home* node and
  a deterministic failover order, and adding/removing a node only
  moves the fingerprints that hashed to it (minimal ownership churn);
* an **in-flight owner table** pins a fingerprint to the node
  currently serving it, which makes single-flight *global*:
  concurrent identical requests all land on the owning node, whose
  plan-cache single-flight collapses them into one compile.

Failure handling keeps the service invariant — *nothing is dropped
without a response*:

* a node that **dies** mid-request (crash, chaos kill) fails its
  in-flight requests over to the next alive node in rendezvous order,
  within each request's retry/deadline budget;
* a node that **wedges** (silent past every in-flight deadline plus a
  grace period) is killed and treated the same way;
* dead nodes are respawned by a supervisor thread, and with a shared
  ``cache_dir`` the sibling promotes the already-compiled plan from
  the disk tier instead of recompiling.

Health, queue depth and ownership churn are exported per node through
:mod:`repro.obs` (``router_node_up``, ``router_node_pending``,
``router_ownership_churn_total``, ...).  Whole-node chaos (seeded
kills of the owning node right after dispatch) reuses the
:mod:`repro.service.chaos` decision function so campaigns replay
exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.tracing import (
    new_span_id,
    new_trace_id,
    record_span,
    span,
    trace_context,
)
from ..lower.engine import LoweringConfig
from .chaos import ChaosConfig, ChaosInjector
from .executor import STAGE_BUCKETS_MS, observe_stage
from .lease import cleanup_stale_artifacts
from .proto import (
    PROTO_VERSION,
    ProtoError,
    Request,
    Response,
    error_response,
)
from .scheduler import ResultSlot
from .workload import WorkloadError, request_fingerprint
from .transport import (
    BackoffPolicy,
    Heartbeat,
    Hello,
    SocketConnection,
    TransportError,
    connect_with_backoff,
    parse_address,
)

__all__ = [
    "NodeConfig",
    "Router",
    "RouterConfig",
    "rendezvous_order",
]


def rendezvous_order(fp: str, nodes: int) -> Tuple[int, ...]:
    """All node indices by descending highest-random-weight score.

    ``order[0]`` is the fingerprint's home node; ``order[1:]`` is its
    failover sequence.  Pure function of ``(fp, nodes)``, so every
    router instance agrees on placement without coordination.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    scores = []
    for idx in range(nodes):
        digest = hashlib.sha256(f"{fp}:{idx}".encode("utf-8")).digest()
        scores.append((-int.from_bytes(digest[:8], "big"), idx))
    scores.sort()
    return tuple(idx for _, idx in scores)


@dataclass(frozen=True)
class NodeConfig:
    """How the router spawns (and reaches) each ``repro serve`` node."""

    workers: int = 2
    queue: int = 256
    max_batch: int = 16
    worker_mode: str = "thread"
    backend: str = "interpreted"  # execution backend on every node
    converter: str = "numpy"  # kernel converter under "compiled"
    #: The resolved lowering configuration shipped to every node as
    #: one ``--lowering`` JSON pass-through.  Derived from
    #: ``converter`` when unset; when given, ``converter`` mirrors it
    #: so existing readers keep working.
    lowering: Optional[LoweringConfig] = None
    validate_every: int = 0
    cache_dir: Optional[str] = None  # share across nodes for failover
    hang_timeout_s: float = 60.0
    #: ``"pipe"`` (default): proto:1 JSONL over the subprocess's
    #: stdin/stdout.  ``"tcp"``: the node listens on localhost
    #: (``repro serve --listen``) and the router connects through
    #: :mod:`repro.service.transport` — handshake, reconnect with
    #: backoff, heartbeats.  Every pipe-path behavior is unchanged.
    transport: str = "pipe"
    extra_args: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.transport not in ("pipe", "tcp"):
            raise ValueError(
                f"transport must be 'pipe' or 'tcp', "
                f"got {self.transport!r}"
            )
        if self.lowering is None:
            object.__setattr__(
                self,
                "lowering",
                LoweringConfig(converter=self.converter),
            )
        elif not isinstance(self.lowering, LoweringConfig):
            raise ValueError(
                "lowering must be a LoweringConfig, got "
                f"{type(self.lowering).__name__}"
            )
        else:
            object.__setattr__(
                self, "converter", self.lowering.converter
            )

    def argv(self) -> List[str]:
        out = [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--workers", str(self.workers),
            "--queue", str(self.queue),
            "--max-batch", str(self.max_batch),
            "--worker-mode", self.worker_mode,
            "--validate-every", str(self.validate_every),
            "--hang-timeout", str(self.hang_timeout_s),
        ]
        if self.backend != "interpreted":
            out += ["--backend", self.backend]
        if self.lowering is not None and (
            self.lowering.to_json() != LoweringConfig().to_json()
        ):
            # One consolidated pass-through instead of per-knob flags.
            out += [
                "--lowering",
                json.dumps(self.lowering.to_json(), sort_keys=True),
            ]
        if self.cache_dir:
            out += ["--cache-dir", self.cache_dir]
        if self.transport == "tcp":
            # Port 0: the node binds an ephemeral port and announces
            # it as a ``{"listening": "host:port"}`` line on stdout.
            out += ["--listen", "127.0.0.1:0"]
        out += list(self.extra_args)
        return out


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one router instance."""

    nodes: int = 2
    node: NodeConfig = field(default_factory=NodeConfig)
    default_timeout_s: float = 30.0
    max_retries: int = 2  # failover budget per request
    failover_grace_s: float = 2.0  # wedge = deadline + this, no reply
    monitor_interval_s: float = 0.05
    node_metrics_dir: Optional[str] = None  # node-N.json on clean exit
    #: Directory for per-process JSONL trace files: each node exports
    #: ``node-<idx>-g<generation>.jsonl`` on clean exit (the generation
    #: suffix keeps a respawned node from overwriting its predecessor).
    #: The router's own tracer is installed by the caller (the CLI
    #: writes ``router.jsonl`` beside them); stitch with
    #: :func:`repro.obs.stitch.stitch_traces` / ``repro trace``.
    trace_dir: Optional[str] = None
    chaos_seed: int = 2014
    node_kill_rate: float = 0.0  # kill the owning node after dispatch
    #: Seeded *connection* chaos (TCP transport only): sever the
    #: owning node's socket right after a successful dispatch write —
    #: the in-flight request must fail over, never drop.
    conn_kill_rate: float = 0.0
    #: Already-running ``repro serve --listen`` endpoints
    #: (``host:port``) the router connects to instead of spawning
    #: subprocesses.  Non-empty ``remotes`` overrides ``nodes``; the
    #: router supervises the *connections* (reconnect with backoff)
    #: but never the remote processes.
    remotes: Tuple[str, ...] = ()
    connect_attempts: int = 5  # per-connect backoff budget
    reconnect_base_s: float = 0.05  # backoff envelope (full jitter)
    reconnect_cap_s: float = 2.0
    heartbeat_interval_s: float = 2.0
    heartbeat_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if not 0.0 <= self.node_kill_rate <= 1.0:
            raise ValueError("node_kill_rate must be in [0, 1]")
        if not 0.0 <= self.conn_kill_rate <= 1.0:
            raise ValueError("conn_kill_rate must be in [0, 1]")
        if self.conn_kill_rate and self.transport != "tcp":
            raise ValueError(
                "conn_kill_rate needs the tcp transport "
                "(there is no connection to kill over pipes)"
            )

    @property
    def transport(self) -> str:
        """The resolved fabric transport (remotes force ``tcp``)."""
        return "tcp" if self.remotes else self.node.transport

    def backoff(self) -> BackoffPolicy:
        return BackoffPolicy(
            base_s=self.reconnect_base_s,
            cap_s=self.reconnect_cap_s,
            seed=self.chaos_seed,
        )


@dataclass
class _Pending:
    """One client request currently dispatched to a node."""

    internal_id: str  # the id on the node wire ("rt-N")
    client_id: Optional[str]
    request: Request
    fingerprint: str
    slot: ResultSlot
    deadline: float  # monotonic
    retries_left: int
    attempts: int = 0
    node: int = -1
    generation: int = -1  # node process generation dispatched to
    #: Distributed-trace context: the trace this request belongs to
    #: and the id of its root ``router.request`` span, which every
    #: downstream span (node and pool worker) hangs off.
    trace_id: Optional[str] = None
    root_span_id: Optional[str] = None
    #: Allocated per dispatch attempt so the node's spans parent to
    #: the ``router.node_wait`` span covering *that* attempt, keeping
    #: the critical path connected across the process boundary.
    node_wait_span_id: Optional[str] = None
    start_ns: int = 0  # perf_counter_ns at submission
    sent_ns: int = 0  # perf_counter_ns of the successful node write


class _Node:
    """One supervised ``repro serve`` subprocess behind pipes."""

    transport = "pipe"

    def __init__(self, idx: int, config: RouterConfig) -> None:
        self.idx = idx
        self.config = config
        self.proc: Optional[subprocess.Popen] = None
        self.generation = -1
        self.write_lock = threading.Lock()
        self.closing = False  # stdin EOF sent (graceful drain)
        #: Unix time of the last line received from this node (0 =
        #: never) — what ``repro top`` renders for unreachable rows.
        self.last_seen = 0.0

    def ready(self) -> bool:
        """Dispatchable right now (for TCP: *connected*)."""
        return self.alive()

    def break_link(self) -> None:
        """Force the failover path for everything in flight here.

        Over pipes the process *is* the link, so this kills it; the
        TCP override severs just the connection and keeps the (still
        healthy) process for the reconnect."""
        self.kill()

    def _argv(self) -> List[str]:
        out = self.config.node.argv()
        if self.config.node_metrics_dir:
            out += [
                "--metrics-out",
                os.path.join(
                    self.config.node_metrics_dir,
                    f"node-{self.idx}.json",
                ),
            ]
        if self.config.trace_dir:
            out += [
                "--trace-out",
                os.path.join(
                    self.config.trace_dir,
                    f"node-{self.idx}-g{self.generation + 1}.jsonl",
                ),
            ]
        return out

    def spawn(self) -> None:
        env = os.environ.copy()
        # Make ``python -m repro`` resolvable even when the parent was
        # launched from outside the source tree.
        src = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        path = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + path if path else "")
        self.proc = subprocess.Popen(
            self._argv(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            bufsize=1,
            env=env,
        )
        self.generation += 1
        self.closing = False

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def send(self, wire: dict, generation: int) -> None:
        """Write one request line to process ``generation``.

        Raises OSError on a dead pipe *or* when the node has been
        respawned since the caller picked it — without the generation
        check a request registered against the old process could be
        written into the new one's stdin, double-serving it after the
        caller's failover re-dispatch.
        """
        line = json.dumps(wire, sort_keys=True) + "\n"
        with self.write_lock:
            if self.generation != generation:
                raise BrokenPipeError("node was respawned")
            if self.proc is None or self.proc.stdin is None:
                raise BrokenPipeError("node has no stdin")
            self.proc.stdin.write(line)
            self.proc.stdin.flush()

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()

    def close_stdin(self) -> None:
        """EOF = graceful drain; the node answers stragglers, exports
        its metrics file and exits on its own."""
        self.closing = True
        with self.write_lock:
            if self.proc is not None and self.proc.stdin is not None:
                try:
                    self.proc.stdin.close()
                except OSError:
                    pass


class _TcpNode(_Node):
    """A local ``repro serve --listen`` node reached over a socket.

    Lifecycle (drain-on-stdin-EOF, metrics export, respawn) stays on
    the subprocess pipes; *data* rides the TCP connection.  The node's
    ``generation`` advances on every successful **connect** — a lost
    connection orphans exactly the requests written into it, whether
    or not the process survived — and :meth:`send` keeps the same
    generation-checked contract the pipe path has.
    """

    transport = "tcp"

    def __init__(self, idx: int, config: RouterConfig) -> None:
        super().__init__(idx, config)
        self.conn: Optional[SocketConnection] = None
        self.address: Optional[Tuple[str, int]] = None
        self.heartbeat = Heartbeat(
            interval_s=config.heartbeat_interval_s,
            timeout_s=config.heartbeat_timeout_s,
        )
        self.spawn_count = 0
        #: Reconnect pacing: the monitor skips this node until here.
        self.next_attempt_at = 0.0
        self.connect_attempt = 0

    def _argv(self) -> List[str]:
        # The base names trace files by generation (== spawn count for
        # pipes); here generations advance per *connect*, so count
        # spawns separately to keep one trace file per process.
        out = self.config.node.argv()
        if self.config.node_metrics_dir:
            out += [
                "--metrics-out",
                os.path.join(
                    self.config.node_metrics_dir,
                    f"node-{self.idx}.json",
                ),
            ]
        if self.config.trace_dir:
            out += [
                "--trace-out",
                os.path.join(
                    self.config.trace_dir,
                    f"node-{self.idx}-g{self.spawn_count + 1}.jsonl",
                ),
            ]
        return out

    def spawn(self) -> None:
        """Start the process and read its ``listening`` announcement."""
        super().spawn()
        self.generation -= 1  # undo: TCP generations advance on connect
        self.spawn_count += 1
        self.address = None
        assert self.proc is not None and self.proc.stdout is not None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break  # process died before announcing
            try:
                data = json.loads(line)
                self.address = parse_address(str(data["listening"]))
                return
            except (KeyError, TypeError, ValueError):
                continue  # tolerate stray stdout noise

    def connect(self, hello: Hello, backoff: BackoffPolicy) -> None:
        """One connect+handshake try; raises TransportError/OSError."""
        if self.address is None:
            raise BrokenPipeError("node never announced its address")
        old = self.conn
        if old is not None:
            old.close()
        conn = connect_with_backoff(
            self.address,
            hello,
            backoff,
            max_attempts=1,
        )
        with self.write_lock:
            self.conn = conn
            self.generation += 1
            self.closing = False
        self.heartbeat.reset()
        self.connect_attempt = 0
        self.next_attempt_at = 0.0

    def ready(self) -> bool:
        return self.conn is not None and not self.conn.closed

    def needs_respawn(self) -> bool:
        return self.proc is None or self.proc.poll() is not None

    def send(self, wire: dict, generation: int) -> None:
        with self.write_lock:
            if self.generation != generation:
                raise BrokenPipeError("node connection was replaced")
            conn = self.conn
        if conn is None or conn.closed:
            raise BrokenPipeError("node is not connected")
        conn.send(wire)

    def break_link(self) -> None:
        if self.conn is not None:
            self.conn.close()

    def kill(self) -> None:
        super().kill()
        self.break_link()

    def close_stdin(self) -> None:
        super().close_stdin()  # child drains, exports metrics, exits


class _RemoteNode(_TcpNode):
    """An externally managed ``repro serve --listen`` endpoint.

    The router supervises only the connection: it reconnects with
    backoff but never spawns, kills or drains the remote process.
    """

    def __init__(
        self, idx: int, config: RouterConfig, address: Tuple[str, int]
    ) -> None:
        super().__init__(idx, config)
        self.address = address

    def spawn(self) -> None:
        self.spawn_count += 1  # no process: the endpoint just exists

    def alive(self) -> bool:
        return self.ready()

    def needs_respawn(self) -> bool:
        return False

    def kill(self) -> None:
        self.break_link()  # the remote process is not ours to kill

    def close_stdin(self) -> None:
        self.closing = True
        self.break_link()


class Router:
    """Rendezvous-hashing front end over N service-node subprocesses.

    The client surface mirrors :class:`StencilService`:
    :meth:`submit` / :meth:`submit_json` return a
    :class:`~repro.service.scheduler.ResultSlot` that always resolves
    with a typed :class:`~repro.service.proto.Response`.
    """

    def __init__(
        self,
        config: Optional[RouterConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or RouterConfig()
        self.metrics = registry or get_metrics() or MetricsRegistry()
        if self.config.remotes:
            self._nodes: List[_Node] = [
                _RemoteNode(i, self.config, parse_address(addr))
                for i, addr in enumerate(self.config.remotes)
            ]
        elif self.config.transport == "tcp":
            self._nodes = [
                _TcpNode(i, self.config)
                for i in range(self.config.nodes)
            ]
        else:
            self._nodes = [
                _Node(i, self.config)
                for i in range(self.config.nodes)
            ]
        self._hello = Hello(
            node_id=f"router-{os.getpid()}",
            role="client",
            backends=(self.config.node.backend,),
        )
        self._backoff = self.config.backoff()
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._pending: Dict[str, _Pending] = {}
        #: Outstanding control requests (metrics collection) by wire
        #: id — kept apart from ``_pending`` so control replies never
        #: enter the request resolution/failover machinery.
        self._controls: Dict[str, ResultSlot] = {}
        #: fingerprint -> (node index, in-flight count): the global
        #: single-flight owner table.
        self._owners: Dict[str, List[int]] = {}
        self._seq = 0
        self._started = False
        self._closed = False
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._readers: List[threading.Thread] = []
        self._chaos: Optional[ChaosInjector] = None
        if self.config.node_kill_rate > 0.0:
            self._chaos = ChaosInjector(
                ChaosConfig(
                    seed=self.config.chaos_seed,
                    kill_rate=self.config.node_kill_rate,
                )
            )
        self._conn_chaos: Optional[ChaosInjector] = None
        if self.config.conn_kill_rate > 0.0:
            # A distinct seed offset keeps connection kills and whole-
            # node kills independent draws in mixed campaigns.
            self._conn_chaos = ChaosInjector(
                ChaosConfig(
                    seed=self.config.chaos_seed + 1,
                    kill_rate=self.config.conn_kill_rate,
                )
            )
        if self.config.node_metrics_dir:
            os.makedirs(self.config.node_metrics_dir, exist_ok=True)
        if self.config.trace_dir:
            os.makedirs(self.config.trace_dir, exist_ok=True)

    # -- telemetry -----------------------------------------------------
    def _count(self, name: str, labels=None) -> None:
        self.metrics.counter(name, labels).inc()

    def _node_labels(self, idx: int) -> dict:
        return {"node": str(idx)}

    def _sync_gauges(self) -> None:
        with self._lock:
            per_node = [0] * len(self._nodes)
            for entry in self._pending.values():
                if 0 <= entry.node < len(per_node):
                    per_node[entry.node] += 1
            inflight = len(self._owners)
        for node in self._nodes:
            self.metrics.gauge(
                "router_node_up", self._node_labels(node.idx)
            ).set(1 if node.ready() else 0)
            self.metrics.gauge(
                "router_node_pending", self._node_labels(node.idx)
            ).set(per_node[node.idx])
        self.metrics.gauge("router_inflight_fingerprints").set(inflight)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Router":
        if self._started:
            return self
        self._started = True
        if self.config.node.cache_dir:
            # Sweep leases/tmp files orphaned by a crashed previous
            # run, so its cold compiles are not TTL-gated for ours.
            cleanup_stale_artifacts(
                self.config.node.cache_dir, registry=self.metrics
            )
        for node in self._nodes:
            self._spawn_node(node)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="router-monitor",
            daemon=True,
        )
        self._monitor.start()
        return self

    def _spawn_node(self, node: _Node) -> None:
        node.spawn()
        if isinstance(node, _TcpNode):
            # A failed first connect is not fatal: the monitor keeps
            # retrying with backoff until the endpoint answers.
            self._connect_tcp(node)
            return
        reader = threading.Thread(
            target=self._read_loop,
            args=(node, node.generation),
            name=f"router-node-{node.idx}-reader",
            daemon=True,
        )
        reader.start()
        self._readers.append(reader)
        self.metrics.gauge(
            "router_node_up", self._node_labels(node.idx)
        ).set(1)

    def _connect_tcp(self, node: "_TcpNode") -> bool:
        """One connect+handshake attempt; schedules the next on loss."""
        try:
            node.connect(self._hello, self._backoff)
        except (TransportError, OSError) as exc:
            kind = getattr(exc, "kind", "")
            if kind == "handshake_failed":
                self._count(
                    "router_handshake_failures_total",
                    self._node_labels(node.idx),
                )
            self._count(
                "router_connect_failures_total",
                self._node_labels(node.idx),
            )
            pause = self._backoff.delay(
                node.connect_attempt, f"node-{node.idx}"
            )
            node.connect_attempt += 1
            node.next_attempt_at = time.monotonic() + pause
            return False
        if node.generation > 0:
            self._count(
                "router_reconnects_total", self._node_labels(node.idx)
            )
        conn, generation = node.conn, node.generation
        reader = threading.Thread(
            target=self._tcp_read_loop,
            args=(node, conn, generation),
            name=f"router-node-{node.idx}-reader-g{generation}",
            daemon=True,
        )
        reader.start()
        self._readers.append(reader)
        self.metrics.gauge(
            "router_node_up", self._node_labels(node.idx)
        ).set(1)
        return True

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- placement -----------------------------------------------------
    def _pick_node(self, fp: str) -> Optional[int]:
        """The owning node for ``fp`` (caller holds the lock).

        A pinned in-flight owner wins (global single-flight); else the
        first *alive* node in rendezvous order.  Returns None when no
        node is alive right now.
        """
        owner = self._owners.get(fp)
        if owner is not None and self._nodes[owner[0]].ready():
            return owner[0]
        for idx in rendezvous_order(fp, len(self._nodes)):
            if self._nodes[idx].ready():
                return idx
        return None

    def _pin(self, fp: str, idx: int) -> None:
        """Record one more in-flight request for ``fp`` on ``idx``
        (caller holds the lock); counts churn on an owner change."""
        owner = self._owners.get(fp)
        if owner is None:
            self._owners[fp] = [idx, 1]
            if idx != rendezvous_order(fp, len(self._nodes))[0]:
                self._count("router_ownership_churn_total")
        else:
            if owner[0] != idx:
                owner[0] = idx
                self._count("router_ownership_churn_total")
            owner[1] += 1

    def _unpin(self, fp: str) -> None:
        owner = self._owners.get(fp)
        if owner is None:
            return
        owner[1] -= 1
        if owner[1] <= 0:
            del self._owners[fp]

    # -- submission ----------------------------------------------------
    def _take(self, internal_id: str) -> Optional[_Pending]:
        """Claim exclusive ownership of a pending entry.

        Every resolution/failover path goes through this: whoever
        pops the entry from the table owns its fate, so a response
        racing a node-death sweep can never double-handle one
        request.  Returns None when someone else already took it.
        """
        with self._lock:
            entry = self._pending.pop(internal_id, None)
            if entry is not None:
                self._unpin(entry.fingerprint)
            if not self._pending:
                self._drained.notify_all()
        return entry

    def _take_if(
        self, internal_id: str, attempts: int
    ) -> Optional[_Pending]:
        """Claim the entry only while it is still the incarnation
        dispatched with ``attempts``.

        A node-death sweep can take a just-written entry and
        re-dispatch it (bumping ``attempts``) before the writer's own
        post-write check runs; an unconditional take there would steal
        the *new* in-flight incarnation and fail it over a second
        time, burning retry budget on a request that was already
        placed cleanly.  Matching on the attempt count makes the
        reclaim race-free: whoever re-dispatched owns the entry.
        """
        with self._lock:
            entry = self._pending.get(internal_id)
            if entry is None or entry.attempts != attempts:
                return None
            del self._pending[internal_id]
            self._unpin(entry.fingerprint)
            if not self._pending:
                self._drained.notify_all()
        return entry

    def _resolve_entry(
        self, entry: _Pending, response: Response
    ) -> None:
        """Resolve a *taken* entry's client slot."""
        response.id = entry.client_id
        if response.trace_id is None:
            response.trace_id = entry.trace_id
        end_ns = time.perf_counter_ns()
        if entry.start_ns:
            # The request's full router residency — the root span of
            # the distributed trace — plus the node round trip (which
            # is where almost all of the wall-clock goes, so stage
            # coverage stays honest).
            record_span(
                "router.request",
                entry.start_ns,
                end_ns,
                trace_id=entry.trace_id,
                span_id=entry.root_span_id,
                request=entry.client_id or entry.internal_id,
                fingerprint=entry.fingerprint[:12],
                status=response.status,
            )
            total_ms = (end_ns - entry.start_ns) / 1e6
            observe_stage(
                self.metrics, "total", total_ms, name="router_stage_ms"
            )
            self.metrics.record_exemplar(
                "router_request_latency_ms",
                total_ms,
                {
                    "request": entry.client_id or entry.internal_id,
                    "benchmark": entry.request.benchmark
                    or (
                        "workload"
                        if entry.request.workload is not None
                        else "spec"
                    ),
                    "status": response.status,
                    "node": str(entry.node),
                },
            )
        if entry.sent_ns:
            record_span(
                "router.node_wait",
                entry.sent_ns,
                end_ns,
                trace_id=entry.trace_id,
                span_id=entry.node_wait_span_id,
                parent_span_id=entry.root_span_id,
                node=entry.node,
            )
            observe_stage(
                self.metrics,
                "node_wait",
                (end_ns - entry.sent_ns) / 1e6,
                name="router_stage_ms",
            )
        entry.slot.resolve(response)
        self._count(
            "router_requests_total", {"status": response.status}
        )

    def _resolve_direct(
        self, request_id, status: str, detail: str, kind=None
    ) -> ResultSlot:
        """A response that never reached a node (parse failures...)."""
        slot = ResultSlot()
        slot.resolve(error_response(request_id, status, detail, kind=kind))
        self._count("router_requests_total", {"status": status})
        return slot

    def submit_json(self, line: str) -> ResultSlot:
        """Submit one JSON-encoded request line."""
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return self._resolve_direct(
                None, "invalid", f"bad request JSON: {exc}"
            )
        return self.submit(data)

    def submit(self, request) -> ResultSlot:
        """Route one request (typed or wire dict) onto its node."""
        if not self._started:
            self.start()
        if isinstance(request, Request):
            req = request
        else:
            try:
                req = Request.from_json(request, registry=self.metrics)
            except ProtoError as exc:
                return self._resolve_direct(
                    request.get("id")
                    if isinstance(request, dict)
                    else None,
                    "invalid",
                    str(exc),
                    kind=exc.kind,
                )
        if self._closed:
            return self._resolve_direct(
                req.id, "rejected", "router is draining", kind="draining"
            )
        try:
            # Workload requests route on their *plan* fingerprint
            # (stage chain included), so the whole pipeline lands on
            # one node and its intermediates never cross the wire.
            fp = request_fingerprint(req)
        except WorkloadError as exc:
            return self._resolve_direct(
                req.id, "invalid", str(exc), kind="bad_workload"
            )
        except (KeyError, TypeError, ValueError) as exc:
            message = (
                exc.args[0]
                if isinstance(exc, KeyError) and exc.args
                else str(exc)
            )
            return self._resolve_direct(req.id, "invalid", message)
        timeout_s = (
            self.config.default_timeout_s
            if req.timeout_s is None
            else req.timeout_s
        )
        # The router is the trace origin: requests arriving without a
        # context get a fresh trace id here, and every request gets a
        # root span id that all downstream spans (node, pool worker)
        # parent to over the wire.
        start_ns = time.perf_counter_ns()
        trace_id = req.trace_id or new_trace_id()
        root_span_id = new_span_id()
        req = req.with_trace(trace_id, root_span_id)
        with self._lock:
            self._seq += 1
            internal_id = f"rt-{self._seq}"
        entry = _Pending(
            internal_id=internal_id,
            client_id=req.id,
            request=req,
            fingerprint=fp,
            slot=ResultSlot(),
            deadline=time.monotonic() + timeout_s,
            retries_left=(
                self.config.max_retries
                if req.retries is None
                else req.retries
            ),
            trace_id=trace_id,
            root_span_id=root_span_id,
            start_ns=start_ns,
        )
        with trace_context(trace_id, root_span_id), span(
            "router.dispatch",
            request=internal_id,
            fingerprint=fp[:12],
        ):
            self._dispatch(entry)
        observe_stage(
            self.metrics,
            "dispatch",
            (time.perf_counter_ns() - start_ns) / 1e6,
            name="router_stage_ms",
        )
        return entry.slot

    def _dispatch(self, entry: _Pending) -> None:
        """Place ``entry`` on its owning node (initial or failover)."""
        while True:
            with self._lock:
                idx = self._pick_node(entry.fingerprint)
                if idx is not None:
                    self._pin(entry.fingerprint, idx)
                    node = self._nodes[idx]
                    entry.node = idx
                    entry.generation = node.generation
                    self._pending[entry.internal_id] = entry
            if idx is None:
                # Every node is down; the supervisor respawns them on
                # its next tick — wait it out within the deadline.
                if time.monotonic() > entry.deadline:
                    self._resolve_entry(
                        entry,
                        error_response(
                            None,
                            "timeout",
                            "no service node became available "
                            "before the deadline",
                            kind="worker_lost",
                            fingerprint=entry.fingerprint,
                            attempts=entry.attempts,
                        ),
                    )
                    return
                time.sleep(self.config.monitor_interval_s)
                continue
            entry.node_wait_span_id = new_span_id()
            wire = replace(
                entry.request,
                id=entry.internal_id,
                parent_span_id=entry.node_wait_span_id,
            ).to_json()
            written_attempts = entry.attempts
            try:
                node.send(wire, entry.generation)
            except OSError:
                # Died (or was respawned) between the liveness check
                # and the write; undo the registration and retry.
                if self._take_if(
                    entry.internal_id, written_attempts
                ) is None:
                    return  # a sweep already owns this entry
                if not self._budget_left(entry):
                    self._resolve_exhausted(entry, idx)
                    return
                entry.attempts += 1
                entry.retries_left -= 1
                self._count("router_failovers_total")
                continue
            entry.sent_ns = time.perf_counter_ns()
            self._count(
                "router_dispatch_total", self._node_labels(idx)
            )
            if self._chaos is not None and (
                self._chaos.decision(
                    entry.internal_id, entry.attempts
                )
                == "kill"
            ):
                # Whole-node chaos: the owning node dies right after
                # accepting the request (the worst time).
                self._count(
                    "router_chaos_node_kills_total",
                    self._node_labels(idx),
                )
                node.kill()
            if self._conn_chaos is not None and (
                self._conn_chaos.decision(
                    entry.internal_id, entry.attempts
                )
                == "kill"
            ):
                # Connection chaos: the socket dies right after the
                # request was written into it — the node may even
                # compute the answer, but this link never delivers it.
                self._count(
                    "router_chaos_conn_kills_total",
                    self._node_labels(idx),
                )
                node.break_link()
            # The node may have died after the write but before the
            # line was consumed — after the death sweep for this
            # generation already ran, in which case nobody else will
            # ever reclaim this entry.  Re-check and self-fail-over.
            if (
                node.generation != entry.generation
                or not node.ready()
            ):
                reclaimed = self._take_if(
                    entry.internal_id, written_attempts
                )
                if reclaimed is not None:
                    self._fail_over(reclaimed, idx)
            return

    def _budget_left(self, entry: _Pending) -> bool:
        return (
            entry.retries_left > 0
            and time.monotonic() <= entry.deadline
        )

    def _resolve_exhausted(self, entry: _Pending, idx: int) -> None:
        expired = time.monotonic() > entry.deadline
        self._resolve_entry(
            entry,
            error_response(
                None,
                "timeout" if expired else "error",
                f"service node {idx} was lost mid-request and the "
                + ("deadline expired" if expired else
                   "failover budget is exhausted"),
                kind="worker_lost",
                fingerprint=entry.fingerprint,
                attempts=entry.attempts + 1,
                node=idx,
            ),
        )

    # -- node I/O ------------------------------------------------------
    def _read_loop(self, node: _Node, generation: int) -> None:
        proc = node.proc
        assert proc is not None and proc.stdout is not None
        for line in proc.stdout:
            line = line.strip()
            if not line:
                continue
            node.last_seen = time.time()
            try:
                data = json.loads(line)
                response = Response.from_json(data)
            except (ProtoError, ValueError):
                self._count("router_bad_node_lines_total")
                continue
            self._on_response(node, response)
        proc.wait()
        self._on_node_exit(node, generation)

    def _tcp_read_loop(
        self,
        node: "_TcpNode",
        conn: SocketConnection,
        generation: int,
    ) -> None:
        """Reader for one connection generation.

        Exits on *connection* loss — process death, chaos kill, wedge
        teardown all surface here as EOF — and fails over exactly the
        requests written into this generation.  Pongs are consumed at
        this layer (RTT histogram); everything else takes the same
        response path as the pipe transport.
        """
        while True:
            line = conn.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            node.last_seen = time.time()
            try:
                data = json.loads(line)
            except ValueError:
                self._count("router_bad_node_lines_total")
                continue
            if isinstance(data, dict) and isinstance(
                data.get("summary"), dict
            ) and data["summary"].get("pong"):
                rtt = node.heartbeat.observe_pong(
                    str(data.get("id"))
                )
                if rtt is not None:
                    self.metrics.histogram(
                        "router_heartbeat_rtt_ms",
                        buckets=STAGE_BUCKETS_MS,
                    ).observe(rtt * 1e3)
                continue
            try:
                response = Response.from_json(data)
            except (ProtoError, ValueError):
                self._count("router_bad_node_lines_total")
                continue
            self._on_response(node, response)
        conn.close()
        self._on_node_exit(node, generation)

    def _on_response(self, node: _Node, response: Response) -> None:
        with self._lock:
            control = self._controls.pop(response.id or "", None)
        if control is not None:
            response.node = node.idx
            control.resolve(response)
            return
        entry = self._take(response.id or "")
        if entry is None:
            self._count("router_unmatched_responses_total")
            return
        response.node = node.idx
        self._resolve_entry(entry, response)

    def _on_node_exit(self, node: _Node, generation: int) -> None:
        """Fail over everything in flight on a dead node."""
        with self._lock:
            orphans = [
                e
                for e in self._pending.values()
                if e.node == node.idx and e.generation == generation
            ]
        self.metrics.gauge(
            "router_node_up", self._node_labels(node.idx)
        ).set(0)
        for entry in orphans:
            taken = self._take(entry.internal_id)
            if taken is None:
                continue  # resolved or reclaimed while we iterated
            self._fail_over(taken, node.idx)

    def _fail_over(self, entry: _Pending, idx: int) -> None:
        """Re-dispatch a *taken* entry whose node was lost, within
        the retry/deadline budget; resolve it otherwise — a lost node
        never drops a request without a response."""
        if self._closed or not self._budget_left(entry):
            self._resolve_orphan_final(entry, idx)
            return
        entry.attempts += 1
        entry.retries_left -= 1
        self._count("router_failovers_total")
        self._dispatch(entry)

    def _resolve_orphan_final(self, entry: _Pending, idx: int) -> None:
        if self._closed:
            response = error_response(
                None,
                "cancelled",
                f"service node {idx} exited during router shutdown",
                kind="cancelled",
                fingerprint=entry.fingerprint,
                attempts=entry.attempts + 1,
                node=idx,
            )
            entry.slot.resolve(response)
            self._count(
                "router_requests_total", {"status": response.status}
            )
        else:
            self._resolve_exhausted(entry, idx)

    # -- telemetry aggregation -----------------------------------------
    def collect_node_metrics(
        self, timeout_s: float = 5.0
    ) -> Dict[int, Optional[dict]]:
        """One metrics snapshot per node, over the existing pipes.

        Sends the ``{"control": "metrics"}`` document down each alive
        node's stdin and matches the replies out-of-band (they never
        touch the request failover machinery).  A dead, draining or
        unresponsive node maps to ``None`` — aggregation degrades, it
        never blocks the fabric.
        """
        slots: Dict[int, Tuple[str, ResultSlot]] = {}
        out: Dict[int, Optional[dict]] = {}
        for node in self._nodes:
            out[node.idx] = None
            if not node.ready() or node.closing:
                continue
            with self._lock:
                self._seq += 1
                control_id = f"ctl-{self._seq}"
                slot = ResultSlot()
                self._controls[control_id] = slot
            wire = {
                "proto": PROTO_VERSION,
                "id": control_id,
                "control": "metrics",
            }
            try:
                node.send(wire, node.generation)
            except OSError:
                with self._lock:
                    self._controls.pop(control_id, None)
                continue
            slots[node.idx] = (control_id, slot)
        deadline = time.monotonic() + timeout_s
        for idx, (control_id, slot) in slots.items():
            try:
                reply = slot.result(
                    max(0.01, deadline - time.monotonic())
                )
            except TimeoutError:
                with self._lock:
                    self._controls.pop(control_id, None)
                continue
            if reply.ok and isinstance(reply.summary, dict):
                out[idx] = reply.summary
        for node in self._nodes:
            # A node that could not be pulled (dead, draining, wedged
            # or mid-reconnect) degrades the snapshot, never fails it
            # — but the misses are themselves telemetry.
            if out[node.idx] is None and not node.closing:
                self._count(
                    "fabric_metrics_pull_failures_total",
                    self._node_labels(node.idx),
                )
        return out

    def node_status(self) -> Dict[int, dict]:
        """Reachability + liveness facts per node, for ``repro top``."""
        return {
            node.idx: {
                "reachable": node.ready(),
                "transport": node.transport,
                "last_seen": node.last_seen or None,
                "generation": node.generation,
            }
            for node in self._nodes
        }

    def fabric_snapshot(self, timeout_s: float = 5.0) -> dict:
        """The whole fabric's telemetry in one document.

        ``router`` is this process's registry, ``nodes`` maps node
        index to its snapshot (``None`` when unreachable) and
        ``merged`` folds router plus every reachable node into one
        registry via :meth:`MetricsRegistry.merge_snapshot` — the
        input of ``repro top``.
        """
        node_snapshots = self.collect_node_metrics(timeout_s)
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for snapshot in node_snapshots.values():
            if snapshot is not None:
                merged.merge_snapshot(snapshot)
        return {
            "router": self.metrics.snapshot(),
            "nodes": {
                str(idx): snap for idx, snap in node_snapshots.items()
            },
            "node_status": {
                str(idx): status
                for idx, status in self.node_status().items()
            },
            "merged": merged.snapshot(),
        }

    # -- supervision ---------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.monitor_interval_s):
            now = time.monotonic()
            for node in self._nodes:
                if isinstance(node, _TcpNode):
                    self._supervise_tcp(node, now)
                    continue
                if not node.alive():
                    if not node.closing and not self._closed:
                        self._count(
                            "router_node_restarts_total",
                            self._node_labels(node.idx),
                        )
                        self._spawn_node(node)
                    continue
                if self._request_wedged(node, now):
                    self._count(
                        "router_node_wedges_total",
                        self._node_labels(node.idx),
                    )
                    node.kill()
            self._sync_gauges()

    def _request_wedged(self, node: _Node, now: float) -> bool:
        """A node holding a request past its deadline plus grace
        without answering is stuck — break the link so the failover
        path takes over."""
        with self._lock:
            return any(
                e.node == node.idx
                and e.generation == node.generation
                and now > e.deadline + self.config.failover_grace_s
                for e in self._pending.values()
            )

    def _supervise_tcp(self, node: "_TcpNode", now: float) -> None:
        """One supervision tick of a TCP node.

        Ordering matters: process death forces respawn+reconnect; a
        live process with a lost connection reconnects, paced by the
        backoff schedule; a live connection gets heartbeat service —
        send a due ping, and tear down a link whose outstanding ping
        aged past the heartbeat timeout (the half-open signature).
        """
        if self._closed or node.closing:
            return
        if node.needs_respawn():
            if now < node.next_attempt_at:
                return
            node.break_link()
            self._count(
                "router_node_restarts_total",
                self._node_labels(node.idx),
            )
            node.spawn()
            if node.address is None:
                # Died before announcing a port — pace the respawns
                # so a crash-looping child cannot melt the monitor.
                pause = self._backoff.delay(
                    node.connect_attempt, f"spawn-{node.idx}"
                )
                node.connect_attempt += 1
                node.next_attempt_at = time.monotonic() + pause
                return
            self._connect_tcp(node)
            return
        if not node.ready():
            if now >= node.next_attempt_at:
                self._connect_tcp(node)
            return
        if node.heartbeat.wedged():
            self._count(
                "router_node_wedges_total",
                self._node_labels(node.idx),
            )
            node.break_link()  # reader EOFs -> failover -> reconnect
            return
        if node.heartbeat.due():
            conn = node.conn
            ping = node.heartbeat.make_ping(
                scope=f"hb-{node.idx}-g{node.generation}"
            )
            try:
                if conn is not None:
                    conn.send(ping)
            except OSError:
                node.break_link()
                return
        if self._request_wedged(node, now):
            self._count(
                "router_node_wedges_total",
                self._node_labels(node.idx),
            )
            node.break_link()

    # -- shutdown ------------------------------------------------------
    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._drained:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._drained.wait(remaining)
        return True

    def close(self, timeout: float = 60.0) -> bool:
        """Drain, stop the nodes gracefully and reap everything.

        Returns True when every in-flight request resolved and every
        node exited within ``timeout``.  Nodes get stdin EOF, answer
        their stragglers, export their metrics files (when
        ``node_metrics_dir`` is set) and exit on their own.
        """
        if not self._started:
            return True
        self._closed = True
        drained = self.wait_drained(timeout)
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for node in self._nodes:
            node.close_stdin()
        clean = True
        budget = time.monotonic() + timeout
        for node in self._nodes:
            if node.proc is None:
                continue
            try:
                node.proc.wait(
                    timeout=max(0.1, budget - time.monotonic())
                )
            except subprocess.TimeoutExpired:
                node.kill()
                node.proc.wait()
                clean = False
        for node in self._nodes:
            if isinstance(node, _TcpNode):
                node.break_link()  # unblock readers still in readline
        for reader in self._readers:
            reader.join(timeout=5.0)
        self._started = False
        return drained and clean

    # -- convenience ---------------------------------------------------
    def handle(self, request, wait_timeout=None) -> Response:
        """Synchronous submit-and-wait."""
        return self.submit(request).result(wait_timeout)
