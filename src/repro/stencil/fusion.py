"""Stencil loop fusion (the paper's ref [12] substrate).

Section 2.1 motivates large stencil windows with "loop fusion of
stencil applications for computation reduction as proposed in [12]":
fusing a producer stencil into its consumer eliminates the intermediate
array (and the paper's Fig 13c inter-accelerator buffer) at the cost of
recomputation and an *enlarged window* — the Minkowski sum of the two
windows.  Those enlarged windows are exactly where non-uniform
partitioning shines (Fig 6c / Table 4's SEGMENTATION row).

:func:`fuse` performs the transformation symbolically on the expression
AST; the result is an ordinary :class:`~repro.stencil.spec.StencilSpec`
the whole flow consumes.  Tests verify fused-vs-chained functional
equivalence, and the fusion bench quantifies the buffer-vs-recompute
trade-off.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..polyhedral.lexorder import Vector
from .expr import BinOp, Const, Expr, Ref, UnOp, collect_refs
from .spec import StencilSpec, StencilWindow


def shift_expression(expr: Expr, delta: Vector, array: str) -> Expr:
    """Shift every reference to ``array`` by ``delta``."""
    if isinstance(expr, Ref):
        if expr.array == array:
            return Ref(
                tuple(o + d for o, d in zip(expr.offset, delta)),
                expr.array,
            )
        return expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, UnOp):
        return UnOp(expr.op, shift_expression(expr.operand, delta, array))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            shift_expression(expr.left, delta, array),
            shift_expression(expr.right, delta, array),
        )
    raise TypeError(f"unknown expression node {expr!r}")


def substitute_producer(
    consumer_expr: Expr,
    producer_expr: Expr,
    intermediate_array: str,
    producer_array: str,
) -> Expr:
    """Replace each read of the intermediate array at offset ``c`` with
    the producer's expression shifted by ``c``."""
    if isinstance(consumer_expr, Ref):
        if consumer_expr.array == intermediate_array:
            return shift_expression(
                producer_expr, consumer_expr.offset, producer_array
            )
        return consumer_expr
    if isinstance(consumer_expr, Const):
        return consumer_expr
    if isinstance(consumer_expr, UnOp):
        return UnOp(
            consumer_expr.op,
            substitute_producer(
                consumer_expr.operand,
                producer_expr,
                intermediate_array,
                producer_array,
            ),
        )
    if isinstance(consumer_expr, BinOp):
        return BinOp(
            consumer_expr.op,
            substitute_producer(
                consumer_expr.left,
                producer_expr,
                intermediate_array,
                producer_array,
            ),
            substitute_producer(
                consumer_expr.right,
                producer_expr,
                intermediate_array,
                producer_array,
            ),
        )
    raise TypeError(f"unknown expression node {consumer_expr!r}")


def minkowski_window(
    producer: StencilWindow, consumer: StencilWindow
) -> StencilWindow:
    """The fused window: every producer offset reached from every
    consumer offset."""
    offsets = {
        tuple(p + c for p, c in zip(po, co))
        for po in producer.offsets
        for co in consumer.offsets
    }
    return StencilWindow.from_offsets(sorted(offsets))


def fuse(producer: StencilSpec, consumer: StencilSpec) -> StencilSpec:
    """Fuse ``consumer(producer(A))`` into one stencil over ``A``.

    Both stages must share dimensionality and read a single array; the
    consumer is interpreted as reading the producer's output.  The
    fused kernel runs on the producer's grid, with the Minkowski-sum
    window and the symbolically substituted expression.
    """
    if producer.dim != consumer.dim:
        raise ValueError("fusion requires equal dimensionality")
    fused_expr = substitute_producer(
        consumer.expression,
        producer.expression,
        intermediate_array=consumer.input_array,
        producer_array=producer.input_array,
    )
    window = minkowski_window(producer.window, consumer.window)
    # Sanity: the substituted expression's refs equal the window.
    refs = {
        r.offset
        for r in collect_refs(fused_expr)
        if r.array == producer.input_array
    }
    assert refs == set(window.offsets)
    return StencilSpec(
        name=f"{producer.name}+{consumer.name}",
        grid=producer.grid,
        window=window,
        expression=fused_expr,
        input_array=producer.input_array,
        output_array=consumer.output_array,
    )


def fusion_statistics(
    producer: StencilSpec, consumer: StencilSpec
) -> Dict[str, object]:
    """Quantify the fusion trade-off for the bench/report:

    * fused window size vs the two original windows,
    * reuse-buffer sizes of the three accelerators,
    * arithmetic operations per output (the recompute cost).
    """
    from .expr import count_operations

    fused = fuse(producer, consumer)
    ops_p = sum(count_operations(producer.expression).values())
    ops_c = sum(count_operations(consumer.expression).values())
    ops_f = sum(count_operations(fused.expression).values())
    return {
        "producer_points": producer.n_points,
        "consumer_points": consumer.n_points,
        "fused_points": fused.n_points,
        "producer_buffer": producer.analysis().minimum_total_buffer(),
        "consumer_buffer": consumer.analysis().minimum_total_buffer(),
        "fused_buffer": fused.analysis().minimum_total_buffer(),
        "chained_ops_per_output": ops_p + ops_c,
        "fused_ops_per_output": ops_f,
        "fused_banks": fused.analysis().minimum_banks(),
    }
