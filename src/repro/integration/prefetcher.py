"""Off-chip burst prefetcher (Fig 13b, Appendix 9.3).

Because the transformed accelerator consumes a *single* lexicographic
data stream, it couples to DRAM through plain bus bursts: the prefetch
module "directly forwards the data stream from the bus pipeline to the
accelerator and only needs a small buffer to hide the bus latency".

:class:`BurstPrefetcher` sizes that buffer and models the steady-state
bandwidth balance; :func:`simulate_with_prefetch` runs the actual chain
simulator behind a latency-delayed stream to demonstrate that throughput
is unaffected once the pipeline fills.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..microarch.memory_system import MemorySystem
from ..sim.engine import ChainSimulator, SimulationResult
from ..stencil.spec import StencilSpec


@dataclass(frozen=True)
class BurstPrefetcher:
    """Sizing model of the stream prefetch module.

    Parameters
    ----------
    bus_latency:
        Cycles from burst request to first beat.
    burst_length:
        Beats (elements) delivered per burst.
    words_per_cycle:
        Sustained bus bandwidth in elements per cycle (>= 1.0 keeps the
        accelerator fully fed).
    """

    bus_latency: int
    burst_length: int
    words_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.bus_latency < 0:
            raise ValueError("bus latency must be >= 0")
        if self.burst_length < 1:
            raise ValueError("burst length must be >= 1")
        if self.words_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")

    def required_buffer(self) -> int:
        """Elements of buffering that hide the bus latency.

        The prefetcher must cover one latency window of consumption plus
        one in-flight burst, rounded up to whole bursts.
        """
        in_flight = math.ceil(self.bus_latency * 1.0) + self.burst_length
        return math.ceil(in_flight / self.burst_length) * (
            self.burst_length
        )

    def sustains_full_rate(self, streams: int = 1) -> bool:
        """True iff the bus bandwidth covers all chain segments."""
        return self.words_per_cycle >= streams

    def fill_cycles(self) -> int:
        """Cycles before the first element reaches the accelerator."""
        return self.bus_latency


def simulate_with_prefetch(
    spec: StencilSpec,
    system: MemorySystem,
    grid: np.ndarray,
    prefetcher: BurstPrefetcher,
    kernel_latency: int = 4,
) -> SimulationResult:
    """Run the accelerator behind a latency-delayed off-chip stream."""
    sim = ChainSimulator(
        spec,
        system,
        grid,
        kernel_latency=kernel_latency,
        stream_latency=prefetcher.fill_cycles(),
    )
    return sim.run()
