"""Tests for repro.service.pool: sharding, breakers, supervised workers.

The process-pool executor's contract is the scheduler's, hardened
against real process death: every admitted request resolves with a
structured response even when the worker executing it is killed out
from under it.  These tests exercise the parent-side machinery
directly (CircuitBreaker, shard routing) and the full pool through
:class:`StencilService` in ``worker_mode="process"``.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import ServiceConfig, StencilService
from repro.service.pool import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    shard_of,
)
from repro.stencil import DENOISE, SOBEL

from conftest import small_spec


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCircuitBreaker:
    def test_opens_after_threshold_failures(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        assert b.state == BREAKER_CLOSED
        assert b.record_failure() is None
        assert b.record_failure() is None
        assert b.record_failure() == BREAKER_OPEN
        assert b.state == BREAKER_OPEN
        assert not b.allow()

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(threshold=2, clock=FakeClock())
        b.record_failure()
        b.record_success()  # streak broken
        assert b.record_failure() is None
        assert b.state == BREAKER_CLOSED

    def test_half_open_after_cooldown_then_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        b.record_failure()
        assert not b.allow()
        clock.advance(5.1)
        assert b.allow()  # the half-open probe
        assert b.state == BREAKER_HALF_OPEN
        assert b.record_success() == BREAKER_CLOSED
        assert b.allow()

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        for _ in range(3):
            b.record_failure()
        clock.advance(5.1)
        assert b.allow()
        # One failure in half-open re-opens, regardless of threshold.
        assert b.record_failure() == BREAKER_OPEN
        assert not b.allow()
        clock.advance(2.0)  # cooldown restarted at the re-open
        assert not b.allow()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_retry_after_tracks_cooldown_remaining(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        assert b.retry_after_s() == 0.0  # closed: no hint
        b.record_failure()
        assert b.retry_after_s() == pytest.approx(5.0)
        clock.advance(3.5)
        assert b.retry_after_s() == pytest.approx(1.5)
        clock.advance(2.0)  # past the cooldown: probe allowed
        assert b.retry_after_s() == 0.0
        assert b.allow()  # half-open
        assert b.retry_after_s() == 0.0


class TestShardOf:
    def test_stable_and_in_range(self):
        fp = "a" * 64
        first = shard_of(fp, 4)
        assert first == shard_of(fp, 4)
        assert 0 <= first < 4

    def test_hops_cycle_every_sibling(self):
        fp = "b" * 64
        shards = {shard_of(fp, 4, hops=h) for h in range(4)}
        assert shards == {0, 1, 2, 3}

    def test_distinct_fingerprints_spread(self):
        shards = {
            shard_of(f"{k:064d}", 4) for k in range(64)
        }
        assert shards == {0, 1, 2, 3}


def process_service(**overrides):
    defaults = dict(
        workers=2,
        max_queue=64,
        default_timeout_s=30.0,
        worker_mode="process",
    )
    defaults.update(overrides)
    return StencilService(
        ServiceConfig(**defaults), registry=MetricsRegistry()
    )


class TestProcessPool:
    def test_round_trip_matches_thread_mode(self):
        """Process-pool responses agree with the thread executor's."""
        req = {"benchmark": "DENOISE", "grid": [12, 16], "seed": 7}
        with process_service() as svc:
            pooled = svc.handle(dict(req), wait_timeout=60.0)
        thread_svc = StencilService(
            ServiceConfig(workers=2), registry=MetricsRegistry()
        )
        with thread_svc:
            threaded = thread_svc.handle(dict(req), wait_timeout=60.0)
        assert pooled["status"] == threaded["status"] == "ok"
        assert pooled["checksum"] == threaded["checksum"]
        assert pooled["fingerprint"] == threaded["fingerprint"]

    def test_repeat_requests_hit_cache(self):
        req = {"benchmark": "SOBEL", "grid": [10, 12]}
        with process_service() as svc:
            first = svc.handle(dict(req), wait_timeout=60.0)
            second = svc.handle(dict(req), wait_timeout=60.0)
            snap = svc.metrics.snapshot()
        assert first["status"] == second["status"] == "ok"
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        counters = snap["counters"]
        assert counters['service_pool_jobs_total{outcome="ok"}'] >= 2

    def test_validate_runs_in_worker(self):
        spec = small_spec(DENOISE)
        with process_service() as svc:
            reply = svc.handle(
                {"spec": spec.to_json(), "validate": True},
                wait_timeout=60.0,
            )
        assert reply["status"] == "ok"
        assert reply["validated"] is True

    def test_distinct_fingerprints_all_serve(self):
        with process_service() as svc:
            slots = [
                svc.submit(
                    {"benchmark": name, "grid": list(grid)}
                )
                for name, grid in (
                    ("DENOISE", (12, 16)),
                    ("SOBEL", (10, 12)),
                    ("RICIAN", (12, 16)),
                    ("BICUBIC", (11, 13)),
                )
            ]
            replies = [s.result(60.0) for s in slots]
        assert [r["status"] for r in replies] == ["ok"] * 4
        assert len({r["fingerprint"] for r in replies}) == 4

    def test_breaker_state_defaults_closed(self):
        with process_service() as svc:
            assert svc.executor.breaker_state("0" * 64) == "closed"


class TestDrainUnderFaults:
    def test_drain_with_killed_worker_drops_nothing(self):
        """Satellite: a full queue plus one murdered worker process
        still yields a response for every admitted request."""
        svc = process_service(workers=2, max_batch=4, max_retries=3)
        svc.start()
        slots = [
            svc.submit(
                {
                    "id": f"drain-{k}",
                    "benchmark": "DENOISE" if k % 2 else "SOBEL",
                    "grid": [12, 16] if k % 2 else [10, 12],
                    "seed": k,
                }
            )
            for k in range(16)
        ]
        # Kill one worker mid-flight, the way the OOM killer would.
        time.sleep(0.05)
        victim = svc.executor._shards[0]
        if victim.proc is not None:
            victim.proc.kill()
        drained = svc.shutdown(drain=True, timeout=60.0)
        assert drained
        replies = [s.result(5.0) for s in slots]
        # Zero dropped-without-response: every slot resolved with a
        # structured status, and a kill is never a wrong answer.
        assert len(replies) == 16
        assert all(
            r["status"] in ("ok", "error", "timeout") for r in replies
        )
        assert sum(r["status"] == "ok" for r in replies) >= 14
        assert svc.scheduler.unresolved == 0

    def test_idle_worker_death_is_respawned(self):
        with process_service(workers=2) as svc:
            first = svc.handle(
                {"benchmark": "SOBEL", "grid": [10, 12]},
                wait_timeout=60.0,
            )
            assert first["status"] == "ok"
            for shard in svc.executor._shards:
                shard.proc.kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all(s.alive() for s in svc.executor._shards):
                    break
                time.sleep(0.05)
            reply = svc.handle(
                {"benchmark": "SOBEL", "grid": [10, 12]},
                wait_timeout=60.0,
            )
            snap = svc.metrics.snapshot()
        assert reply["status"] == "ok"
        restarts = sum(
            v
            for k, v in snap["counters"].items()
            if k.startswith("service_worker_restarts_total")
        )
        assert restarts >= 1
