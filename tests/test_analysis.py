"""Unit tests for whole-array stencil analysis."""

import pytest

from repro.polyhedral.access import ArrayReference
from repro.polyhedral.analysis import StencilAnalysis
from repro.polyhedral.domain import BoxDomain


def denoise_analysis(grid=(768, 1024)):
    iter_domain = BoxDomain((1, 1), (grid[0] - 2, grid[1] - 2))
    refs = [
        ArrayReference("A", o)
        for o in [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]
    ]
    return StencilAnalysis("A", refs, iter_domain)


class TestConstruction:
    def test_references_sorted_descending(self):
        an = denoise_analysis()
        assert an.offsets() == [
            (1, 0),
            (0, 1),
            (0, 0),
            (0, -1),
            (-1, 0),
        ]

    def test_earliest_and_latest(self):
        an = denoise_analysis()
        assert an.earliest.offset == (1, 0)
        assert an.latest.offset == (-1, 0)

    def test_duplicate_offsets_rejected(self):
        refs = [
            ArrayReference("A", (0, 0)),
            ArrayReference("A", (0, 0)),
        ]
        with pytest.raises(ValueError):
            StencilAnalysis("A", refs, BoxDomain((0, 0), (3, 3)))

    def test_wrong_array_name_rejected(self):
        refs = [ArrayReference("B", (0, 0))]
        with pytest.raises(ValueError):
            StencilAnalysis("A", refs, BoxDomain((0, 0), (3, 3)))

    def test_mixed_dimensions_rejected(self):
        refs = [
            ArrayReference("A", (0, 0)),
            ArrayReference("A", (0, 0, 0)),
        ]
        with pytest.raises(ValueError):
            StencilAnalysis("A", refs, BoxDomain((0, 0), (3, 3)))

    def test_domain_dimension_mismatch_rejected(self):
        refs = [ArrayReference("A", (0, 0))]
        with pytest.raises(ValueError):
            StencilAnalysis("A", refs, BoxDomain((0,), (3,)))

    def test_empty_reference_list_rejected(self):
        with pytest.raises(ValueError):
            StencilAnalysis("A", [], BoxDomain((0, 0), (3, 3)))


class TestDerivedQuantities:
    def test_stream_domain_is_full_grid(self):
        an = denoise_analysis()
        stream = an.stream_domain()
        assert stream.lows == (0, 0)
        assert stream.highs == (767, 1023)

    def test_fifo_capacities_table2(self):
        an = denoise_analysis()
        assert an.fifo_capacities() == [1023, 1, 1, 1023]

    def test_minimum_total_buffer(self):
        assert denoise_analysis().minimum_total_buffer() == 2048

    def test_minimum_banks_is_n_minus_1(self):
        assert denoise_analysis().minimum_banks() == 4

    def test_capacities_sum_to_total(self):
        an = denoise_analysis()
        assert sum(an.fifo_capacities()) == an.minimum_total_buffer()

    def test_adjacent_pairs_structure(self):
        an = denoise_analysis()
        pairs = an.adjacent_pairs()
        assert len(pairs) == 4
        assert pairs[0].ref_from.offset == (1, 0)
        assert pairs[0].ref_to.offset == (0, 1)
        assert pairs[0].distance_vector == (1, -1)
        assert pairs[0].max_distance == 1023

    def test_single_reference_analysis(self):
        an = StencilAnalysis(
            "A",
            [ArrayReference("A", (0, 0))],
            BoxDomain((0, 0), (3, 3)),
        )
        assert an.minimum_banks() == 0
        assert an.fifo_capacities() == []
        assert an.minimum_total_buffer() == 0

    def test_summary_keys(self):
        summary = denoise_analysis().summary()
        assert summary["n_references"] == 5
        assert summary["minimum_banks"] == 4
        assert summary["minimum_total_buffer"] == 2048

    def test_data_domain_lookup(self):
        an = denoise_analysis((8, 10))
        dd = an.data_domain(an.earliest)
        lo, hi = dd.bounding_box()
        assert lo == (2, 1)
        assert hi == (7, 8)

    def test_scaling_preserves_bank_count(self):
        small = denoise_analysis((8, 10))
        large = denoise_analysis((768, 1024))
        assert small.minimum_banks() == large.minimum_banks()
