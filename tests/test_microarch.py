"""Unit tests for microarchitecture components, mapping and assembly."""

import pytest

from repro.microarch.accelerator import Accelerator, KernelInfo
from repro.microarch.components import (
    ChainSegment,
    DataPathSplitter,
    FifoImpl,
    ReuseFifo,
)
from repro.microarch.mapping import (
    ALL_BRAM_POLICY,
    DEFAULT_POLICY,
    MappingPolicy,
    map_capacities,
    map_fifo,
    mapping_histogram,
)
from repro.microarch.memory_system import build_memory_system
from repro.stencil.kernels import DENOISE, PAPER_BENCHMARKS

from conftest import small_spec


class TestMapping:
    def test_thresholds(self):
        assert map_fifo(1) is FifoImpl.REGISTER
        assert map_fifo(4) is FifoImpl.REGISTER
        assert map_fifo(5) is FifoImpl.LUTRAM
        assert map_fifo(128) is FifoImpl.LUTRAM
        assert map_fifo(129) is FifoImpl.BRAM
        assert map_fifo(1023) is FifoImpl.BRAM

    def test_force_bram_policy(self):
        assert map_fifo(1, ALL_BRAM_POLICY) is FifoImpl.BRAM

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            map_fifo(0)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            MappingPolicy(register_threshold=10, lutram_threshold=5)

    def test_map_capacities(self):
        impls = map_capacities([1, 60, 2000])
        assert impls == [
            FifoImpl.REGISTER,
            FifoImpl.LUTRAM,
            FifoImpl.BRAM,
        ]

    def test_histogram(self):
        hist = mapping_histogram([1023, 1, 1, 1023])
        assert hist["block"] == 2
        assert hist["register"] == 2
        assert hist["distributed"] == 0


class TestComponents:
    def test_fifo_capacity_positive(self):
        with pytest.raises(ValueError):
            ReuseFifo(0, 0, "a", "b", FifoImpl.REGISTER)

    def test_segment_fifo_count_checked(self):
        fifo = ReuseFifo(0, 4, "a", "b", FifoImpl.REGISTER)
        with pytest.raises(ValueError):
            ChainSegment(0, 0, 2, (fifo,))  # needs 2 FIFOs

    def test_segment_buffer_size(self):
        fifos = (
            ReuseFifo(0, 4, "a", "b", FifoImpl.REGISTER),
            ReuseFifo(1, 6, "b", "c", FifoImpl.LUTRAM),
        )
        seg = ChainSegment(0, 0, 2, fifos)
        assert seg.buffer_size == 10
        assert seg.n_filters == 3

    def test_table2_row(self):
        fifo = ReuseFifo(0, 1023, "A[i+1][j]", "A[i][j+1]", FifoImpl.BRAM)
        row = fifo.table2_row()
        assert row["size"] == 1023
        assert row["physical_impl"] == "block"


class TestMemorySystemBuild:
    def test_denoise_structure(self):
        system = build_memory_system(DENOISE.analysis())
        assert system.n_references == 5
        assert system.num_banks == 4
        assert system.total_buffer_size == 2048
        assert len(system.splitters) == 5
        assert system.splitters[-1].feeds_fifo is False
        assert all(s.feeds_fifo for s in system.splitters[:-1])

    def test_table2_physical_mapping(self):
        system = build_memory_system(DENOISE.analysis())
        rows = system.table2_rows()
        assert [r["physical_impl"] for r in rows] == [
            "block",
            "register",
            "register",
            "block",
        ]

    def test_filters_cover_references_in_order(self):
        system = build_memory_system(DENOISE.analysis())
        labels = [f.reference.label for f in system.filters]
        assert labels == [
            "A[i+1][j]",
            "A[i][j+1]",
            "A[i][j]",
            "A[i][j-1]",
            "A[i-1][j]",
        ]

    def test_single_segment_by_default(self):
        system = build_memory_system(DENOISE.analysis())
        assert len(system.segments) == 1
        assert system.offchip_accesses_per_cycle == 1

    def test_segment_of_filter(self):
        system = build_memory_system(DENOISE.analysis())
        assert system.segment_of_filter(3).segment_id == 0
        with pytest.raises(KeyError):
            system.segment_of_filter(99)

    def test_describe_mentions_all_fifos(self):
        system = build_memory_system(DENOISE.analysis())
        text = system.describe()
        for fifo in system.fifos:
            assert f"FIFO {fifo.fifo_id}" in text

    @pytest.mark.parametrize(
        "spec", PAPER_BENCHMARKS, ids=lambda s: s.name
    )
    def test_every_benchmark_builds(self, spec):
        system = build_memory_system(spec.analysis())
        assert system.num_banks == spec.n_points - 1


class TestAccelerator:
    def _make(self, spec):
        system = build_memory_system(spec.analysis())
        return Accelerator(
            spec=spec,
            memory_systems=(system,),
            kernel=KernelInfo(latency=6, ii=1),
        )

    def test_properties(self):
        acc = self._make(small_spec(DENOISE))
        assert acc.num_banks == 4
        assert acc.offchip_accesses_per_cycle == 1
        assert acc.total_buffer_size > 0

    def test_expected_output_count(self):
        spec = small_spec(DENOISE)
        acc = self._make(spec)
        assert (
            acc.expected_output_count()
            == spec.iteration_domain.count()
        )

    def test_kernel_info_validation(self):
        with pytest.raises(ValueError):
            KernelInfo(latency=-1, ii=1)
        with pytest.raises(ValueError):
            KernelInfo(latency=1, ii=0)

    def test_needs_memory_system(self):
        with pytest.raises(ValueError):
            Accelerator(
                spec=small_spec(DENOISE),
                memory_systems=(),
                kernel=KernelInfo(latency=1, ii=1),
            )

    def test_describe(self):
        acc = self._make(small_spec(DENOISE))
        assert "DENOISE" in acc.describe()
