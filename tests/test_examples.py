"""Smoke tests: every shipped example must run end to end.

Each example asserts its own correctness internally (golden matches),
so a zero exit status is a meaningful check, not just "it imports".
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=lambda p: p.stem
)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "medical_imaging_pipeline",
        "bandwidth_memory_tradeoff",
        "skewed_grid",
        "design_space_exploration",
        "multi_array_kernel",
        "loop_skewing_and_rtl",
        "capacity_exploration",
    } <= names
