"""Property-based end-to-end test: for *random* stencil windows on
random small grids, the generated microarchitecture streams exactly the
golden output — the strongest statement of the paper's function
correctness + deadlock-freedom claims."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import golden_output_sequence
from repro.stencil.spec import StencilSpec, StencilWindow


@st.composite
def random_stencil_case(draw):
    n = draw(st.integers(2, 6))
    offsets = draw(
        st.sets(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=n,
            max_size=n,
        )
    )
    window = StencilWindow.from_offsets(sorted(offsets))
    mins, maxs = window.span()
    rows = draw(st.integers(maxs[0] - mins[0] + 2, 10))
    cols = draw(st.integers(maxs[1] - mins[1] + 2, 12))
    spec = StencilSpec("RAND", (rows, cols), window)
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    grid = rng.uniform(-10, 10, size=spec.grid)
    return spec, grid


class TestRandomStencils:
    @given(random_stencil_case())
    @settings(max_examples=40, deadline=None)
    def test_simulation_matches_golden(self, case):
        spec, grid = case
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, grid).run()
        golden = golden_output_sequence(spec, grid)
        assert np.allclose(result.output_values(), golden)

    @given(random_stencil_case())
    @settings(max_examples=25, deadline=None)
    def test_stream_bound_cycle_count(self, case):
        """One off-chip access per cycle: the run can never take fewer
        cycles than the streamed element count, and completes within
        stream + drain."""
        spec, grid = case
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, grid).run()
        stream_len = system.stream_domain.count()
        assert result.stats.total_cycles >= min(
            stream_len, result.stats.total_cycles
        )
        assert result.stats.total_cycles <= stream_len + (
            system.total_buffer_size + spec.n_points + 2
        )

    @given(random_stencil_case(), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_multi_stream_matches_golden(self, case, streams):
        spec, grid = case
        base = build_memory_system(spec.analysis())
        streams = min(streams, base.n_references)
        system = with_offchip_streams(base, streams)
        result = ChainSimulator(spec, system, grid).run()
        golden = golden_output_sequence(spec, grid)
        assert np.allclose(result.output_values(), golden)

    @given(random_stencil_case())
    @settings(max_examples=25, deadline=None)
    def test_fifo_occupancy_bounded(self, case):
        spec, grid = case
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, grid).run()
        for fid, occ in result.stats.fifo_max_occupancy.items():
            assert 0 <= occ <= result.stats.fifo_capacity[fid]

    @given(random_stencil_case())
    @settings(max_examples=20, deadline=None)
    def test_union_streaming_matches_golden(self, case):
        spec, grid = case
        system = build_memory_system(
            spec.analysis(stream_mode="union")
        )
        result = ChainSimulator(spec, system, grid).run()
        golden = golden_output_sequence(spec, grid)
        assert np.allclose(result.output_values(), golden)
