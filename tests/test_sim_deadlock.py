"""Deadlock experiments: violating either Section 3.3.2 condition
deadlocks the chain; honoring both never does (Appendix 9.2)."""

import pytest

from repro.microarch.memory_system import build_memory_system
from repro.obs import MetricsProbe
from repro.sim.engine import ChainSimulator, DeadlockError
from repro.stencil.golden import make_input
from repro.stencil.kernels import DENOISE, RICIAN

from conftest import small_spec


@pytest.fixture
def denoise_setup():
    spec = small_spec(DENOISE)
    return spec, build_memory_system(spec.analysis()), make_input(spec)


class TestCondition2Violations:
    """FIFO capacities below the max reuse distance (Eq. 2)."""

    def test_undersized_large_fifo_deadlocks(self, denoise_setup):
        spec, system, grid = denoise_setup
        big = max(system.fifos, key=lambda f: f.capacity)
        with pytest.raises(DeadlockError):
            ChainSimulator(
                spec,
                system,
                grid,
                fifo_capacity_override={big.fifo_id: big.capacity - 1},
            ).run()

    def test_oversized_fifo_is_harmless(self, denoise_setup):
        spec, system, grid = denoise_setup
        big = max(system.fifos, key=lambda f: f.capacity)
        result = ChainSimulator(
            spec,
            system,
            grid,
            fifo_capacity_override={big.fifo_id: big.capacity + 50},
        ).run()
        assert result.stats.outputs_produced == (
            spec.iteration_domain.count()
        )

    def test_exact_capacity_never_deadlocks(self, small_benchmark):
        """The paper's sizing (capacity == max reuse distance) is
        tight: it must complete for every benchmark."""
        spec = small_benchmark
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, make_input(spec)).run()
        assert result.stats.outputs_produced == (
            spec.iteration_domain.count()
        )

    def test_all_small_fifos_undersizing_not_possible(
        self, denoise_setup
    ):
        # Register FIFOs already have capacity 1; capacity 0 is
        # structurally rejected.
        spec, system, grid = denoise_setup
        small = min(system.fifos, key=lambda f: f.capacity)
        assert small.capacity == 1
        with pytest.raises(ValueError):
            ChainSimulator(
                spec,
                system,
                grid,
                fifo_capacity_override={small.fifo_id: 0},
            ).run()


class TestCondition1Violations:
    """Filters not in descending lexicographic offset order (Eq. 1)."""

    def test_swapped_extreme_filters_deadlock(self, denoise_setup):
        spec, system, grid = denoise_setup
        order = [4, 1, 2, 3, 0]
        with pytest.raises(DeadlockError):
            ChainSimulator(
                spec, system, grid, filter_order_override=order
            ).run()

    def test_reversed_order_deadlocks(self, denoise_setup):
        spec, system, grid = denoise_setup
        with pytest.raises(DeadlockError):
            ChainSimulator(
                spec,
                system,
                grid,
                filter_order_override=[4, 3, 2, 1, 0],
            ).run()

    def test_adjacent_swap_deadlocks_rician(self):
        spec = small_spec(RICIAN)
        system = build_memory_system(spec.analysis())
        grid = make_input(spec)
        with pytest.raises(DeadlockError):
            ChainSimulator(
                spec,
                system,
                grid,
                filter_order_override=[1, 0, 2, 3],
            ).run()

    def test_identity_order_is_fine(self, denoise_setup):
        spec, system, grid = denoise_setup
        result = ChainSimulator(
            spec, system, grid, filter_order_override=[0, 1, 2, 3, 4]
        ).run()
        assert result.stats.outputs_produced > 0


class TestDeadlockDiagnostics:
    def test_report_names_filters_and_fifos(self, denoise_setup):
        spec, system, grid = denoise_setup
        big = max(system.fifos, key=lambda f: f.capacity)
        with pytest.raises(DeadlockError) as exc:
            ChainSimulator(
                spec,
                system,
                grid,
                fifo_capacity_override={big.fifo_id: 1},
            ).run()
        message = str(exc.value)
        assert "filter" in message
        assert "FIFO" in message
        assert "outputs produced" in message

    def test_probe_ring_buffer_enriches_report(self, denoise_setup):
        """With a probe attached the report carries the last N cycles
        of per-module fire/stall state, not just the frozen end."""
        spec, system, grid = denoise_setup
        big = max(system.fifos, key=lambda f: f.capacity)
        probe = MetricsProbe(ring_size=8)
        with pytest.raises(DeadlockError) as exc:
            ChainSimulator(
                spec,
                system,
                grid,
                fifo_capacity_override={big.fifo_id: 1},
                probe=probe,
            ).run()
        message = str(exc.value)
        assert "cycles before deadlock" in message
        assert "f=forward d=discard s=stall" in message
        # One pre-state line per ring entry, each with both module
        # families' state.
        ring_lines = [
            line
            for line in message.splitlines()
            if "filters=" in line and "fifos=" in line
        ]
        assert len(ring_lines) == len(probe.ring) == 8
        # The last ring entry is the deadlock cycle itself.
        final_cycle = int(
            message.split("deadlock at cycle ")[1].split(":")[0]
        )
        assert probe.ring[-1][0] == final_cycle

    def test_no_probe_report_is_unchanged(self, denoise_setup):
        spec, system, grid = denoise_setup
        big = max(system.fifos, key=lambda f: f.capacity)
        with pytest.raises(DeadlockError) as exc:
            ChainSimulator(
                spec,
                system,
                grid,
                fifo_capacity_override={big.fifo_id: 1},
            ).run()
        assert "cycles before deadlock" not in str(exc.value)
