"""Behavioural Verilog for the three chain primitives.

The structural netlist of :func:`generate_memory_system_rtl`
instantiates ``reuse_fifo``, ``data_path_splitter`` and ``data_filter``;
this module emits their parametric behavioural definitions so the
generated design is a complete, self-contained RTL bundle:

* ``reuse_fifo`` — circular-buffer FIFO with a synthesis-style RAM
  attribute selected by the STYLE parameter (block / distributed /
  registers) and first-word-fall-through read behaviour (the
  cut-through semantics the simulators model);
* ``data_path_splitter`` — AND-gated valid/ready fork to one or two
  sinks;
* ``data_filter`` — the Fig 10 structure: two multi-dimension domain
  counters with carry chains, bounds comparators for polyhedral
  membership, an equality comparator and the forwarding switch.

The text is exercised by tests (structure, parameters, balance) and is
intended as hand-off collateral; functional truth lives in
:mod:`repro.sim` and :mod:`repro.rtl`.
"""

from __future__ import annotations

PRIMITIVES_HEADER = "// Chain primitives for the non-uniform reuse microarchitecture"


def reuse_fifo_verilog() -> str:
    return """\
module reuse_fifo #(
  parameter DEPTH = 16,
  parameter WIDTH = 32,
  parameter STYLE = "block"  // block | distributed | registers
) (
  input  wire             clk,
  input  wire             rst,
  input  wire [WIDTH-1:0] wr_data,
  input  wire             wr_valid,
  output wire             wr_ready,
  output wire [WIDTH-1:0] rd_data,
  output wire             rd_valid,
  input  wire             rd_ready
);
  localparam AW = (DEPTH <= 1) ? 1 : $clog2(DEPTH);
  (* ram_style = STYLE *) reg [WIDTH-1:0] mem [0:DEPTH-1];
  reg [AW:0] wr_ptr, rd_ptr;
  wire [AW:0] count = wr_ptr - rd_ptr;
  assign wr_ready = (count < DEPTH);
  assign rd_valid = (count != 0);
  assign rd_data  = mem[rd_ptr[AW-1:0]];
  always @(posedge clk) begin
    if (rst) begin
      wr_ptr <= 0;
      rd_ptr <= 0;
    end else begin
      if (wr_valid && wr_ready) begin
        mem[wr_ptr[AW-1:0]] <= wr_data;
        wr_ptr <= wr_ptr + 1;
      end
      if (rd_valid && rd_ready)
        rd_ptr <= rd_ptr + 1;
    end
  end
endmodule"""


def data_path_splitter_verilog() -> str:
    return """\
module data_path_splitter #(
  parameter WIDTH = 32,
  parameter FANOUT = 2  // 2: FIFO + filter; 1: filter only (chain tail)
) (
  input  wire             clk,
  input  wire             rst,
  input  wire [WIDTH-1:0] in_data,
  input  wire             in_valid,
  output wire             in_ready,
  output wire [WIDTH-1:0] out0_data,  // towards the next reuse FIFO
  output wire             out0_valid,
  input  wire             out0_ready,
  output wire [WIDTH-1:0] out1_data,  // towards this stage's filter
  output wire             out1_valid,
  input  wire             out1_ready
);
  // Fires only when every sink can accept: AND-gated fork.
  wire sinks_ready = (FANOUT == 2) ? (out0_ready && out1_ready)
                                   : out1_ready;
  wire fire = in_valid && sinks_ready;
  assign in_ready   = sinks_ready;
  assign out0_data  = in_data;
  assign out0_valid = fire && (FANOUT == 2);
  assign out1_data  = in_data;
  assign out1_valid = fire;
endmodule"""


def data_filter_verilog() -> str:
    return """\
module data_filter #(
  parameter WIDTH = 32,
  parameter DIM = 2,
  parameter [DIM*32-1:0] IN_LO  = 0,  // input-counter domain bounds
  parameter [DIM*32-1:0] IN_HI  = 0,
  parameter [DIM*32-1:0] OUT_LO = 0,  // output-counter domain bounds
  parameter [DIM*32-1:0] OUT_HI = 0
) (
  input  wire             clk,
  input  wire             rst,
  input  wire [WIDTH-1:0] in_data,
  input  wire             in_valid,
  output wire             in_ready,
  output reg  [WIDTH-1:0] port_data,
  output reg              port_valid,
  input  wire             port_consume
);
  // Fig 10: input counter over D_A, output counter over D_Ax, and a
  // data switch that forwards on counter equality.
  reg signed [31:0] in_cnt  [0:DIM-1];
  reg signed [31:0] out_cnt [0:DIM-1];
  integer d;

  function counters_equal;
    input dummy;
    begin
      counters_equal = 1'b1;
      for (d = 0; d < DIM; d = d + 1)
        if (in_cnt[d] != out_cnt[d]) counters_equal = 1'b0;
    end
  endfunction

  task advance;  // lexicographic +1 with per-dimension wrap
    inout reg signed [31:0] cnt [0:DIM-1];
    input [DIM*32-1:0] lo;
    input [DIM*32-1:0] hi;
    integer k;
    begin
      for (k = DIM - 1; k >= 0; k = k - 1) begin
        if (cnt[k] < $signed(hi[k*32 +: 32])) begin
          cnt[k] = cnt[k] + 1;
          k = -1;  // break
        end else begin
          cnt[k] = $signed(lo[k*32 +: 32]);
        end
      end
    end
  endtask

  assign in_ready = !port_valid;

  always @(posedge clk) begin
    if (rst) begin
      port_valid <= 1'b0;
      for (d = 0; d < DIM; d = d + 1) begin
        in_cnt[d]  <= $signed(IN_LO[d*32 +: 32]);
        out_cnt[d] <= $signed(OUT_LO[d*32 +: 32]);
      end
    end else begin
      if (port_valid && port_consume)
        port_valid <= 1'b0;
      if (in_valid && in_ready) begin
        if (counters_equal(1'b0)) begin
          port_data  <= in_data;
          port_valid <= 1'b1;
          advance(out_cnt, OUT_LO, OUT_HI);
        end
        advance(in_cnt, IN_LO, IN_HI);
      end
    end
  end
endmodule"""


def generate_primitives_library() -> str:
    """The complete primitives file the generated netlist needs."""
    return "\n\n".join(
        [
            PRIMITIVES_HEADER,
            reuse_fifo_verilog(),
            data_path_splitter_verilog(),
            data_filter_verilog(),
        ]
    )
