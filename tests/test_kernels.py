"""Unit tests for the paper benchmark definitions."""

import pytest

from repro.stencil.expr import collect_refs
from repro.stencil.kernels import (
    BENCHMARKS_BY_NAME,
    BICUBIC,
    DENOISE,
    DENOISE_3D,
    PAPER_BENCHMARKS,
    RICIAN,
    SEGMENTATION_3D,
    SOBEL,
    get_benchmark,
    skewed_denoise,
)


class TestWindowShapes:
    def test_denoise_is_5_point_cross(self):
        assert DENOISE.n_points == 5
        assert set(DENOISE.window.offsets) == {
            (0, 0),
            (0, 1),
            (0, -1),
            (1, 0),
            (-1, 0),
        }

    def test_rician_is_4_point_diamond(self):
        assert RICIAN.n_points == 4
        assert (0, 0) not in RICIAN.window

    def test_sobel_is_8_point(self):
        assert SOBEL.n_points == 8
        assert (0, 0) not in SOBEL.window

    def test_bicubic_is_4_stride2_taps(self):
        assert BICUBIC.n_points == 4
        assert set(BICUBIC.window.offsets) == {
            (0, 0),
            (0, 2),
            (2, 0),
            (2, 2),
        }

    def test_denoise_3d_is_7_point(self):
        assert DENOISE_3D.n_points == 7
        assert DENOISE_3D.dim == 3

    def test_segmentation_is_19_point(self):
        assert SEGMENTATION_3D.n_points == 19
        # centre + 6 faces + 12 edges, no corners
        assert (1, 1, 1) not in SEGMENTATION_3D.window
        assert (1, 1, 0) in SEGMENTATION_3D.window
        assert (0, 0, 0) in SEGMENTATION_3D.window


class TestGrids:
    def test_denoise_paper_grid(self):
        assert DENOISE.grid == (768, 1024)

    def test_expressions_cover_windows(self):
        for spec in PAPER_BENCHMARKS:
            refs = {
                r.offset
                for r in collect_refs(spec.expression)
                if r.array == spec.input_array
            }
            assert refs == set(spec.window.offsets), spec.name

    def test_table4_row_order(self):
        assert [s.name for s in PAPER_BENCHMARKS] == [
            "DENOISE",
            "RICIAN",
            "SOBEL",
            "BICUBIC",
            "DENOISE_3D",
            "SEGMENTATION_3D",
        ]


class TestMinimumTargets:
    """The theoretical targets of Section 2.3 for each benchmark."""

    @pytest.mark.parametrize(
        "name,banks",
        [
            ("DENOISE", 4),
            ("RICIAN", 3),
            ("SOBEL", 7),
            ("BICUBIC", 3),
            ("DENOISE_3D", 6),
            ("SEGMENTATION_3D", 18),
        ],
    )
    def test_minimum_banks_is_n_minus_1(self, name, banks):
        spec = BENCHMARKS_BY_NAME[name]
        assert spec.analysis().minimum_banks() == banks

    def test_denoise_minimum_buffer_is_2048(self):
        assert DENOISE.analysis().minimum_total_buffer() == 2048

    def test_denoise_fifo_sizes_match_table2(self):
        assert DENOISE.analysis().fifo_capacities() == [
            1023,
            1,
            1,
            1023,
        ]


class TestLookup:
    def test_get_benchmark_case_insensitive(self):
        assert get_benchmark("denoise") is DENOISE
        assert get_benchmark("SOBEL") is SOBEL

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("JACOBI")


class TestSkewedDenoise:
    def test_domain_is_skewed(self):
        spec = skewed_denoise(rows=6, cols=8)
        pts = list(spec.iteration_domain.iter_points())
        rows = {}
        for i, j in pts:
            rows.setdefault(i, []).append(j)
        # Each row starts one column later than the previous.
        starts = [min(v) for _, v in sorted(rows.items())]
        assert starts == sorted(starts)
        assert starts[1] - starts[0] == 1

    def test_window_is_denoise(self):
        spec = skewed_denoise()
        assert spec.n_points == 5

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            skewed_denoise(rows=1, cols=1)

    def test_grid_covers_all_accesses(self):
        spec = skewed_denoise(rows=5, cols=6)
        grid_rows, grid_cols = spec.grid
        for i in spec.iteration_domain.iter_points():
            for ref in spec.references():
                h = ref.access_index(i)
                assert 0 <= h[0] < grid_rows
                assert 0 <= h[1] < grid_cols
