"""Unit tests for the HLS-lite dataflow IR."""

import pytest

from repro.hls.ir import CONST, LOAD, DataflowGraph
from repro.stencil.expr import Ref, absolute
from repro.stencil.kernels import DENOISE, SOBEL


class TestConstruction:
    def test_from_simple_expression(self):
        g = DataflowGraph.from_expression(Ref((0, 0)) + Ref((0, 1)))
        assert g.n_operations == 3
        assert len(g.loads()) == 2
        assert g.opcode_histogram() == {"add": 1}

    def test_output_designated(self):
        g = DataflowGraph.from_expression(Ref((0, 0)) + 1.0)
        assert g.output == g.n_operations - 1

    def test_common_subexpression_shared(self):
        se = Ref((1, 1))
        expr = (se + Ref((0, 0))) + (se + Ref((0, 1)))
        g = DataflowGraph.from_expression(expr)
        # `se` appears twice in the tree but once in the DAG.
        assert len(g.loads()) == 3

    def test_identical_subtrees_value_numbered(self):
        a = Ref((0, 0)) + Ref((0, 1))
        expr = a * a
        g = DataflowGraph.from_expression(expr)
        assert g.opcode_histogram() == {"add": 1, "mul": 1}

    def test_unary_ops(self):
        g = DataflowGraph.from_expression(absolute(Ref((0, 0))))
        assert g.opcode_histogram() == {"abs": 1}

    def test_constants_interned(self):
        expr = 2.0 * Ref((0, 0)) + 2.0 * Ref((0, 1))
        g = DataflowGraph.from_expression(expr)
        consts = [o for o in g.operations if o.opcode == CONST]
        assert len(consts) == 1


class TestStructure:
    def test_topological_property(self):
        g = DataflowGraph.from_expression(DENOISE.expression)
        for op in g.topological_order():
            for operand in op.operands:
                assert operand < op.node_id

    def test_consumers(self):
        g = DataflowGraph.from_expression(Ref((0, 0)) + Ref((0, 1)))
        consumers = g.consumers()
        add_id = g.output
        for load in g.loads():
            assert add_id in consumers[load.node_id]
        assert consumers[add_id] == []

    def test_validate_ok_for_benchmarks(self):
        for spec in (DENOISE, SOBEL):
            g = DataflowGraph.from_expression(spec.expression)
            g.validate()  # must not raise

    def test_validate_rejects_dead_code(self):
        g = DataflowGraph()
        g.add_load("A", (0, 0))
        dead = g.add_load("A", (0, 1))
        g.output = g.add_op("abs", 0)
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_requires_output(self):
        g = DataflowGraph()
        g.add_load("A", (0, 0))
        with pytest.raises(ValueError):
            g.validate()

    def test_unknown_operand_rejected(self):
        g = DataflowGraph()
        with pytest.raises(ValueError):
            g.add_op("add", 0, 1)

    def test_denoise_loads_match_window(self):
        g = DataflowGraph.from_expression(DENOISE.expression)
        offsets = {op.payload[1] for op in g.loads()}
        assert offsets == set(DENOISE.window.offsets)

    def test_sobel_shares_corner_loads(self):
        """Sobel uses each corner pixel in both Gx and Gy: 8 loads,
        not 12."""
        g = DataflowGraph.from_expression(SOBEL.expression)
        assert len(g.loads()) == 8
