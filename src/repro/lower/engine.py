"""The compiled-execution engine: per-process kernel + input caches.

One :class:`CompiledEngine` lives in each executing process (the
thread-pool service holds one; every pool worker holds its own).  It
memoizes three things:

* **kernels** — one :class:`~repro.lower.convert.CompiledKernel` per
  plan fingerprint, built through bufferize → convert on first use and
  reused for every later request;
* **unsupported verdicts** — a plan the lowering refused
  (:class:`LoweringUnsupported`) is remembered by fingerprint so the
  fallback decision costs a dict lookup, not a re-lowering, on every
  subsequent request;
* **input grids** — service inputs are *content-addressed*: a request's
  grid is ``make_input(spec, seed)``, fully determined by
  ``(grid shape, seed)``, so warm traffic re-reading the same seeds
  skips the RNG entirely.  Grids are cached read-only in a
  byte-bounded LRU (the interpreted path deliberately stays the
  uncached paper-exact reference).

The engine records no metrics itself — it returns timings in
:class:`LowerResult` and the caller (thread executor, pool worker
relay) attributes them, because pool workers have no registry and ship
observations home in the job reply instead.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs.tracing import span
from ..stencil.golden import make_input
from ..stencil.spec import StencilSpec
from .bufferize import bufferize_plan
from .convert import CompiledKernel, convert
from .program import (
    LoweringUnsupported,
    ProgramMismatchError,
    program_from_json,
    program_to_json,
    validate_program,
)

__all__ = ["CompiledEngine", "LowerResult"]

#: Input-grid LRU budget (float64 bytes across all cached grids).
GRID_CACHE_BYTES = 64 * 1024 * 1024


@dataclass
class LowerResult:
    """One ``kernel_for`` outcome, with stage timings for the caller."""

    kernel: CompiledKernel
    #: Program JSON to persist as the plan's cache sidecar, or ``None``
    #: when the stored sidecar already matched.
    program_json: Optional[dict]
    bufferize_ms: float = 0.0
    convert_ms: float = 0.0
    #: False when the kernel came straight from the in-process cache.
    built: bool = False


class CompiledEngine:
    """Bufferize → convert → execute, memoized per fingerprint."""

    def __init__(
        self, grid_cache_bytes: int = GRID_CACHE_BYTES
    ) -> None:
        self._kernels: Dict[str, CompiledKernel] = {}
        self._unsupported: Dict[str, LoweringUnsupported] = {}
        self._lock = threading.Lock()
        self._grid_cache_bytes = grid_cache_bytes
        self._grids: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self._grids_bytes = 0
        self._grid_lock = threading.Lock()

    # -- lowering ------------------------------------------------------
    def kernel_for(
        self, plan, spec: Optional[StencilSpec] = None
    ) -> LowerResult:
        """The kernel for a cached plan, lowering on first use.

        Raises :class:`LoweringUnsupported` (fall back to the
        interpreted path) or :class:`ProgramMismatchError` (the stored
        sidecar is corrupt; fail the request and evict the plan).
        """
        fp = plan.fingerprint
        with self._lock:
            kernel = self._kernels.get(fp)
            if kernel is not None:
                return LowerResult(kernel=kernel, program_json=None)
            unsupported = self._unsupported.get(fp)
        if unsupported is not None:
            raise unsupported
        if spec is None:
            spec = StencilSpec.from_json(plan.spec)
        started = time.perf_counter()
        try:
            with span(
                "lower.bufferize", fingerprint=fp[:12],
                benchmark=spec.name,
            ):
                fresh = bufferize_plan(plan, spec=spec)
        except LoweringUnsupported as exc:
            with self._lock:
                self._unsupported[fp] = exc
            raise
        bufferize_ms = (time.perf_counter() - started) * 1e3
        fresh_json = program_to_json(fresh)
        stored = getattr(plan, "buffer_program", None)
        if stored is not None and not self._matches(
            stored, fresh_json
        ):
            raise ProgramMismatchError(
                f"stored buffer program for plan {fp[:12]} diverges "
                "from a fresh lowering of the cached spec"
            )
        started = time.perf_counter()
        try:
            with span(
                "lower.convert", fingerprint=fp[:12],
                benchmark=spec.name,
            ):
                kernel = convert(fresh)
        except LoweringUnsupported as exc:
            with self._lock:
                self._unsupported[fp] = exc
            raise
        convert_ms = (time.perf_counter() - started) * 1e3
        with self._lock:
            self._kernels[fp] = kernel
            if len(self._kernels) > 256:  # bound the per-process cache
                self._kernels.pop(next(iter(self._kernels)))
        return LowerResult(
            kernel=kernel,
            program_json=None if stored is not None else fresh_json,
            bufferize_ms=bufferize_ms,
            convert_ms=convert_ms,
            built=True,
        )

    @staticmethod
    def _matches(stored: dict, fresh_json: dict) -> bool:
        try:
            stored_program = program_from_json(stored)
            validate_program(stored_program)
        except Exception:
            return False
        return program_to_json(stored_program) == fresh_json

    def forget(self, fp: str) -> None:
        """Drop one fingerprint (mirrors a plan-cache invalidation)."""
        with self._lock:
            self._kernels.pop(fp, None)
            self._unsupported.pop(fp, None)

    # -- content-addressed input grids ---------------------------------
    def input_grid(self, spec: StencilSpec, seed: int) -> np.ndarray:
        """``make_input`` memoized by its full content address.

        The returned array is shared and marked read-only — kernels
        only ever take views of it.
        """
        key = (tuple(spec.grid), int(seed))
        with self._grid_lock:
            grid = self._grids.get(key)
            if grid is not None:
                self._grids.move_to_end(key)
                return grid
        grid = make_input(spec, seed=seed)
        grid.setflags(write=False)
        with self._grid_lock:
            self._grids[key] = grid
            self._grids_bytes += grid.nbytes
            while (
                len(self._grids) > 1
                and self._grids_bytes > self._grid_cache_bytes
            ):
                _, evicted = self._grids.popitem(last=False)
                self._grids_bytes -= evicted.nbytes
        return grid
