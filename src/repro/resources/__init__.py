"""FPGA device, resource and timing models (the Table 5 substrate)."""

from .estimate import (
    DATA_WIDTH,
    AcceleratorEstimate,
    estimate_address_transformer,
    estimate_baseline,
    estimate_crossbar,
    estimate_fifo,
    estimate_filter,
    estimate_kernel,
    estimate_memory_system,
    estimate_modulo_chain,
    estimate_ours,
    estimate_splitter,
    estimate_uniform_bank,
    estimate_uniform_controller,
    estimate_uniform_memory_system,
)
from .power import (
    PowerEstimate,
    estimate_power,
    power_saving_ratio,
)
from .fpga import (
    BRAM18_BITS,
    FpgaDevice,
    ResourceUsage,
    XC7VX485T,
    bram18_for_memory,
    slices_for_lut_ff,
)
from .timing import (
    TARGET_CLOCK_NS,
    TimingEstimate,
    estimate_timing_baseline,
    estimate_timing_ours,
)

__all__ = [
    "AcceleratorEstimate",
    "BRAM18_BITS",
    "DATA_WIDTH",
    "FpgaDevice",
    "PowerEstimate",
    "ResourceUsage",
    "TARGET_CLOCK_NS",
    "TimingEstimate",
    "XC7VX485T",
    "bram18_for_memory",
    "estimate_address_transformer",
    "estimate_baseline",
    "estimate_crossbar",
    "estimate_fifo",
    "estimate_filter",
    "estimate_kernel",
    "estimate_memory_system",
    "estimate_modulo_chain",
    "estimate_power",
    "estimate_ours",
    "estimate_splitter",
    "estimate_timing_baseline",
    "estimate_timing_ours",
    "estimate_uniform_bank",
    "estimate_uniform_controller",
    "estimate_uniform_memory_system",
    "power_saving_ratio",
    "slices_for_lut_ff",
]
