"""HLS-lite: the computation-kernel compilation substrate (scheduling,
binding, code generation) substituting for Vivado HLS in the Fig 11
flow."""

from .bind import Binding, BindingError, bind_units
from .codegen import (
    generate_kernel_source,
    generate_memory_system_rtl,
    generate_original_source,
)
from .ir import CONST, LOAD, DataflowGraph, Operation
from .primitives import (
    data_filter_verilog,
    data_path_splitter_verilog,
    generate_primitives_library,
    reuse_fifo_verilog,
)
from .schedule import (
    FIXED32_LIBRARY,
    FLOAT32_LIBRARY,
    OperatorSpec,
    Schedule,
    SchedulingError,
    asap_schedule,
    modulo_schedule,
    schedule_kernel,
)

__all__ = [
    "Binding",
    "BindingError",
    "CONST",
    "DataflowGraph",
    "FIXED32_LIBRARY",
    "FLOAT32_LIBRARY",
    "LOAD",
    "Operation",
    "OperatorSpec",
    "Schedule",
    "SchedulingError",
    "asap_schedule",
    "bind_units",
    "data_filter_verilog",
    "data_path_splitter_verilog",
    "generate_kernel_source",
    "generate_primitives_library",
    "generate_memory_system_rtl",
    "generate_original_source",
    "modulo_schedule",
    "reuse_fifo_verilog",
    "schedule_kernel",
]
