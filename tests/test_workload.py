"""First-class temporal and pipeline workloads (the proto:2 envelope).

The workload layer turns "run this kernel t times" and "run this DAG
of kernels" into typed, fingerprinted, plannable requests.  These
tests pin the whole stack:

* structural validation — every malformed shape (cyclic graph, steps
  < 1, dangling edge, duplicate ids, non-linear topology) raises
  :class:`WorkloadError` with a readable message;
* the JSON codec round-trips losslessly for every kind;
* the planner lowers workloads onto the chaining/fusion machinery:
  single-stage plans share the proto:1 cache identity, iterate steps
  get distinct per-step fingerprints (grids shrink), and the fuse
  policy trades stage count for identical final bits;
* **digest equivalence** (the headline acceptance check): a t-step
  iterate workload's per-stage digests are bit-identical to the
  locally-replayed sequential chain, and stage 0's checksum equals an
  actual ``proto: 1`` round trip of the same kernel — on the thread
  and process pools, interpreted and compiled backends alike;
* malformed workloads submitted on the wire resolve as ``invalid``
  with ``error.kind = "bad_workload"`` without touching a worker;
* the router fingerprints workload requests and routes them to
  subprocess nodes end to end (``slow``-marked).
"""

import hashlib
import json

import numpy as np
import pytest

from repro.integration.chaining import intermediate_grid_shape
from repro.service import ServiceConfig, StencilService
from repro.service.proto import Request
from repro.service.workload import (
    FUSE_POLICIES,
    WORKLOAD_KINDS,
    KernelRef,
    Workload,
    WorkloadError,
    plan_workload,
    request_fingerprint,
)
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE, get_benchmark

GRID = (12, 14)
SEED = 7


def _sequential_digests(spec, steps, seed):
    """Client-side replay of a t-step chain: the digests a perfectly
    honest iterate workload must reproduce bit for bit."""
    current_spec = spec
    current = make_input(spec, seed=seed)
    digests = []
    for _ in range(steps):
        outputs = golden_output_sequence(current_spec, current)
        arr = np.ascontiguousarray(
            np.asarray(outputs, dtype=np.float64)
        )
        digests.append(hashlib.sha256(arr.data).hexdigest()[:16])
        shape = intermediate_grid_shape(current_spec)
        current = arr.reshape(shape)
        current_spec = current_spec.with_grid(shape)
    return digests


# -- structural validation ---------------------------------------------


class TestValidation:
    def test_vocabularies_are_closed(self):
        assert WORKLOAD_KINDS == ("single", "iterate", "graph")
        assert FUSE_POLICIES == ("auto", "never", "always")
        with pytest.raises(WorkloadError):
            Workload.from_json({"kind": "loop", "benchmark": "DENOISE"})
        with pytest.raises(WorkloadError):
            Workload.iterate(benchmark="DENOISE", steps=2, fuse="maybe")

    def test_kernel_ref_exactly_one_of(self):
        with pytest.raises(WorkloadError):
            KernelRef()
        with pytest.raises(WorkloadError):
            KernelRef(benchmark="DENOISE", spec={"name": "x"})

    def test_steps_must_be_positive(self):
        for bad in (0, -1):
            with pytest.raises(WorkloadError):
                Workload.iterate(benchmark="DENOISE", steps=bad)

    def test_graph_rejects_cycles(self):
        with pytest.raises(WorkloadError):
            Workload.from_json({
                "kind": "graph",
                "nodes": [
                    {"id": "a", "benchmark": "DENOISE"},
                    {"id": "b", "benchmark": "RICIAN"},
                ],
                "edges": [["a", "b"], ["b", "a"]],
            })

    def test_graph_rejects_dangling_edge(self):
        with pytest.raises(WorkloadError) as excinfo:
            Workload.from_json({
                "kind": "graph",
                "nodes": [{"id": "a", "benchmark": "DENOISE"}],
                "edges": [["a", "ghost"]],
            })
        assert "ghost" in str(excinfo.value)

    def test_graph_rejects_duplicate_ids_and_self_edges(self):
        with pytest.raises(WorkloadError):
            Workload.from_json({
                "kind": "graph",
                "nodes": [
                    {"id": "a", "benchmark": "DENOISE"},
                    {"id": "a", "benchmark": "RICIAN"},
                ],
                "edges": [],
            })
        with pytest.raises(WorkloadError):
            Workload.from_json({
                "kind": "graph",
                "nodes": [{"id": "a", "benchmark": "DENOISE"}],
                "edges": [["a", "a"]],
            })

    def test_graph_must_be_a_linear_chain(self):
        # Fan-out (one producer, two consumers) is not plannable on
        # the single-stream Fig 13c hand-off; rejected up front.
        with pytest.raises(WorkloadError):
            Workload.from_json({
                "kind": "graph",
                "nodes": [
                    {"id": "a", "benchmark": "DENOISE"},
                    {"id": "b", "benchmark": "RICIAN"},
                    {"id": "c", "benchmark": "RICIAN"},
                ],
                "edges": [["a", "b"], ["a", "c"]],
            })

    def test_workload_error_is_a_value_error(self):
        # The CLI's rc-2 error contract catches ValueError.
        assert issubclass(WorkloadError, ValueError)


# -- codec --------------------------------------------------------------


class TestCodec:
    def test_round_trips(self):
        cases = (
            Workload.single(benchmark="DENOISE"),
            Workload.iterate(benchmark="RICIAN", steps=4),
            Workload.iterate(benchmark="DENOISE", steps=2, fuse="never"),
            Workload.from_json({
                "kind": "graph",
                "nodes": [
                    {"id": "den", "benchmark": "DENOISE"},
                    {"id": "ric", "benchmark": "RICIAN"},
                ],
                "edges": [["den", "ric"]],
                "fuse": "always",
            }),
        )
        for workload in cases:
            wire = json.loads(json.dumps(workload.to_json()))
            assert Workload.from_json(wire) == workload

    def test_inline_spec_kernels_round_trip(self):
        spec_json = DENOISE.with_grid(GRID).to_json()
        workload = Workload.iterate(spec=spec_json, steps=2)
        again = Workload.from_json(workload.to_json())
        assert again == workload
        # Inline specs are not memoizable (mutable dict payload).
        assert workload.memo_key() is None
        assert Workload.iterate(
            benchmark="DENOISE", steps=2
        ).memo_key() is not None


# -- planner ------------------------------------------------------------


class TestPlanner:
    def test_single_plan_shares_proto1_cache_identity(self):
        plan = plan_workload(
            Workload.single(benchmark="DENOISE"), grid=GRID
        )
        assert len(plan.stages) == 1
        assert plan.fingerprint == plan.stages[0].fingerprint
        req = Request.from_json(
            {"proto": 1, "benchmark": "DENOISE", "grid": list(GRID)}
        )
        assert request_fingerprint(req) == plan.fingerprint

    def test_iterate_steps_get_distinct_fingerprints(self):
        plan = plan_workload(
            Workload.iterate(benchmark="DENOISE", steps=3), grid=GRID
        )
        assert len(plan.stages) == 3
        fps = [stage.fingerprint for stage in plan.stages]
        assert len(set(fps)) == 3  # grids shrink every step
        assert plan.label == "DENOISE->DENOISE->DENOISE"
        # Step count is part of the workload identity.
        other = plan_workload(
            Workload.iterate(benchmark="DENOISE", steps=2), grid=GRID
        )
        assert other.fingerprint != plan.fingerprint

    def test_fuse_always_collapses_stages_same_bits(self):
        chained = plan_workload(
            Workload.iterate(benchmark="DENOISE", steps=2, fuse="never"),
            grid=GRID,
        )
        fused = plan_workload(
            Workload.iterate(benchmark="DENOISE", steps=2, fuse="always"),
            grid=GRID,
        )
        assert len(chained.stages) == 2
        assert len(fused.stages) == 1
        assert fused.fused_edges == 1
        # Fusion is exact expression inlining: final bits identical.
        grid = make_input(chained.stages[0].spec, seed=SEED)
        step1 = np.asarray(
            golden_output_sequence(chained.stages[0].spec, grid),
            dtype=np.float64,
        ).reshape(intermediate_grid_shape(chained.stages[0].spec))
        two_pass = golden_output_sequence(chained.stages[1].spec, step1)
        one_pass = golden_output_sequence(fused.stages[0].spec, grid)
        assert np.array_equal(
            np.asarray(one_pass), np.asarray(two_pass)
        )

    def test_workload_request_fingerprint_used_by_router(self):
        req = Request.from_json({
            "proto": 2,
            "workload": {
                "kind": "iterate", "benchmark": "DENOISE", "steps": 3,
            },
            "grid": list(GRID),
        })
        fp = request_fingerprint(req)
        assert fp == request_fingerprint(req)  # deterministic
        single = Request.from_json(
            {"proto": 1, "benchmark": "DENOISE", "grid": list(GRID)}
        )
        assert fp != request_fingerprint(single)


# -- service end to end -------------------------------------------------


def _iterate_wire(steps=3, **extra):
    wire = {
        "proto": 2,
        "workload": {
            "kind": "iterate",
            "benchmark": "DENOISE",
            "steps": steps,
        },
        "grid": list(GRID),
        "seed": SEED,
    }
    wire.update(extra)
    return wire


class TestServiceWorkloads:
    def _run(self, config, wire):
        service = StencilService(config).start()
        try:
            response = service.submit(wire).result(timeout=120)
        finally:
            service.shutdown()
        return response

    def test_iterate_digests_match_sequential_round_trips(self):
        """The acceptance check: iterate(t) == t sequential steps."""
        expected = _sequential_digests(
            DENOISE.with_grid(GRID), 3, SEED
        )
        service = StencilService(ServiceConfig(workers=2)).start()
        try:
            response = service.submit(_iterate_wire()).result(timeout=60)
            assert response.ok, response.error
            assert response.benchmark == "DENOISE->DENOISE->DENOISE"
            assert [
                stage["checksum"] for stage in response.stages
            ] == expected
            assert response.checksum == expected[-1]
            # Stage 0 is bit-identical to a real proto:1 round trip.
            single = service.submit({
                "proto": 1,
                "benchmark": "DENOISE",
                "grid": list(GRID),
                "seed": SEED,
            }).result(timeout=60)
            assert single.ok
            assert single.checksum == response.stages[0]["checksum"]
            counters = service.metrics.snapshot()["counters"]
            assert counters[
                'service_workload_requests_total{kind="iterate"}'
            ] == 1
            assert counters["service_workload_stages_total"] == 3
        finally:
            service.shutdown()

    def test_graph_workload_matches_hand_chain(self):
        wire = {
            "proto": 2,
            "workload": {
                "kind": "graph",
                "nodes": [
                    {"id": "den", "benchmark": "DENOISE"},
                    {"id": "ric", "benchmark": "RICIAN"},
                ],
                "edges": [["den", "ric"]],
            },
            "grid": list(GRID),
            "seed": 3,
        }
        response = self._run(ServiceConfig(workers=2), wire)
        assert response.ok, response.error
        assert response.benchmark == "DENOISE->RICIAN"
        # Hand-chain the same two kernels on the same seeded input.
        producer = DENOISE.with_grid(GRID)
        grid = make_input(producer, seed=3)
        step1 = np.ascontiguousarray(np.asarray(
            golden_output_sequence(producer, grid), dtype=np.float64
        ))
        consumer = get_benchmark("RICIAN").with_grid(
            intermediate_grid_shape(producer)
        )
        final = np.ascontiguousarray(np.asarray(
            golden_output_sequence(
                consumer,
                step1.reshape(intermediate_grid_shape(producer)),
            ),
            dtype=np.float64,
        ))
        assert response.checksum == (
            hashlib.sha256(final.data).hexdigest()[:16]
        )

    def test_compiled_backend_same_bits_and_counted(self):
        expected = _sequential_digests(
            DENOISE.with_grid(GRID), 3, SEED
        )
        service = StencilService(
            ServiceConfig(workers=2, backend="compiled")
        ).start()
        try:
            response = service.submit(_iterate_wire()).result(timeout=60)
            assert response.ok, response.error
            assert [
                stage["checksum"] for stage in response.stages
            ] == expected
            counters = service.metrics.snapshot()["counters"]
            assert counters.get(
                'service_lower_requests_total{path="compiled"}', 0
            ) >= 1
        finally:
            service.shutdown()

    def test_pipeline_canary_validates_every_stage(self):
        response = self._run(
            ServiceConfig(workers=1, validate_every=1), _iterate_wire()
        )
        assert response.ok and response.validated is True

    @pytest.mark.parametrize("backend", ["interpreted", "compiled"])
    def test_process_pool_same_bits(self, backend):
        expected = _sequential_digests(
            DENOISE.with_grid(GRID), 3, SEED
        )
        response = self._run(
            ServiceConfig(
                workers=2, worker_mode="process", backend=backend
            ),
            _iterate_wire(),
        )
        assert response.ok, response.error
        assert [
            stage["checksum"] for stage in response.stages
        ] == expected

    def test_bad_workloads_resolve_invalid_without_executing(self):
        service = StencilService(ServiceConfig(workers=1)).start()
        try:
            for wire in (
                _iterate_wire(steps=0),
                {
                    "proto": 2,
                    "workload": {
                        "kind": "graph",
                        "nodes": [
                            {"id": "a", "benchmark": "DENOISE"},
                            {"id": "b", "benchmark": "RICIAN"},
                        ],
                        "edges": [["a", "b"], ["b", "a"]],
                    },
                },
                {"proto": 2, "benchmark": "DENOISE"},
            ):
                response = service.submit(wire).result(timeout=10)
                assert response.status == "invalid"
                assert response.error.kind == "bad_workload"
            # Unknown benchmark inside a well-formed workload is an
            # ordinary bad_request (caught at resolve, not parse).
            response = service.submit(_iterate_wire()).result(timeout=60)
            assert response.ok
        finally:
            service.shutdown()


@pytest.mark.slow
class TestRoutedWorkloads:
    def test_router_routes_workloads_to_nodes(self, tmp_path):
        from repro.service.router import (
            NodeConfig,
            Router,
            RouterConfig,
        )

        expected = _sequential_digests(
            DENOISE.with_grid(GRID), 3, SEED
        )
        config = RouterConfig(
            nodes=2,
            node=NodeConfig(workers=2, cache_dir=str(tmp_path)),
        )
        router = Router(config).start()
        try:
            slots = [
                router.submit_json(json.dumps(_iterate_wire())),
                router.submit_json(json.dumps({
                    "proto": 2,
                    "workload": {
                        "kind": "graph",
                        "nodes": [
                            {"id": "a", "benchmark": "DENOISE"},
                            {"id": "b", "benchmark": "RICIAN"},
                        ],
                        "edges": [["a", "b"]],
                    },
                    "grid": list(GRID),
                    "seed": 3,
                })),
                router.submit_json(json.dumps(_iterate_wire(steps=0))),
            ]
            iterate, graph, bad = [
                slot.result(timeout=120) for slot in slots
            ]
            assert iterate.ok, iterate.error
            assert [
                stage["checksum"] for stage in iterate.stages
            ] == expected
            assert graph.ok, graph.error
            assert graph.benchmark == "DENOISE->RICIAN"
            assert bad.status == "invalid"
            assert bad.error.kind == "bad_workload"
        finally:
            router.close()
