"""Unit tests for repro.service: fingerprinting, cache, scheduler, API."""

import json
import os
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (
    CachedPlan,
    CompileOptions,
    PlanCache,
    QueueClosedError,
    Scheduler,
    ServiceConfig,
    StencilService,
    fingerprint,
)
from repro.service.executor import compile_plan
from repro.stencil import DENOISE, SOBEL
from repro.stencil.spec import StencilSpec

from conftest import small_spec


def make_plan(fp="f" * 64, pad=0):
    """A synthetic cache entry; ``pad`` inflates its encoded size."""
    return CachedPlan(
        fingerprint=fp,
        spec={"pad": "x" * pad},
        options={"offchip_streams": 1},
        fifo_capacities=[3, 1, 1, 3],
        filter_order=["w"],
        num_banks=4,
        total_buffer=8,
        summary={},
    )


class TestFingerprint:
    def test_deterministic(self):
        spec = small_spec(DENOISE)
        opts = CompileOptions()
        assert fingerprint(spec, opts) == fingerprint(spec, opts)

    def test_name_excluded(self):
        """Renamed copies of a spec share one cache entry."""
        spec = small_spec(DENOISE)
        renamed = StencilSpec(
            name="DENOISE_COPY",
            grid=spec.grid,
            window=spec.window,
            expression=spec.expression,
            iteration_domain=spec.iteration_domain,
            input_array=spec.input_array,
            output_array=spec.output_array,
        )
        opts = CompileOptions()
        assert fingerprint(spec, opts) == fingerprint(renamed, opts)

    def test_sensitive_to_grid_and_options(self):
        spec = small_spec(DENOISE)
        base = fingerprint(spec, CompileOptions())
        assert fingerprint(spec.with_grid((14, 18)), CompileOptions()) != base
        assert fingerprint(spec, CompileOptions(offchip_streams=2)) != base

    def test_distinct_benchmarks_distinct(self):
        opts = CompileOptions()
        fps = {
            fingerprint(small_spec(s), opts) for s in (DENOISE, SOBEL)
        }
        assert len(fps) == 2

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            CompileOptions(offchip_streams=0)


class TestPlanCache:
    def test_lru_entry_bound(self):
        cache = PlanCache(max_entries=2)
        for k in range(3):
            cache.put(make_plan(fp=f"{k:064d}"))
        assert cache.get("0" * 64) is None  # oldest evicted
        assert cache.get(f"{1:064d}") is not None
        assert cache.get(f"{2:064d}") is not None
        assert cache.stats.evictions == 1
        assert cache.stats.entries == 2

    def test_lru_promotion_on_get(self):
        cache = PlanCache(max_entries=2)
        cache.put(make_plan(fp="a" * 64))
        cache.put(make_plan(fp="b" * 64))
        cache.get("a" * 64)  # promote; "b" becomes the LRU victim
        cache.put(make_plan(fp="c" * 64))
        assert cache.get("a" * 64) is not None
        assert cache.get("b" * 64) is None

    def test_byte_bound(self):
        one = make_plan(fp="a" * 64, pad=512)
        cache = PlanCache(max_entries=10, max_bytes=one.encoded_size() + 8)
        cache.put(one)
        cache.put(make_plan(fp="b" * 64, pad=512))
        assert cache.stats.entries == 1  # no room for both
        assert cache.get("b" * 64) is not None

    def test_sole_oversized_entry_kept(self):
        cache = PlanCache(max_entries=4, max_bytes=16)
        cache.put(make_plan(pad=512))
        assert cache.stats.entries == 1

    def test_disk_persistence(self, tmp_path):
        first = PlanCache(disk_dir=str(tmp_path))
        first.put(make_plan())
        assert os.path.exists(tmp_path / ("f" * 64 + ".json"))
        fresh = PlanCache(disk_dir=str(tmp_path))
        plan = fresh.get("f" * 64)
        assert plan is not None and plan.num_banks == 4
        assert fresh.stats.disk_hits == 1

    def test_disk_rejects_stale_version(self, tmp_path):
        stale = make_plan()
        stale.version = -5
        path = tmp_path / ("f" * 64 + ".json")
        path.write_text(json.dumps(stale.to_json()))
        assert PlanCache(disk_dir=str(tmp_path)).get("f" * 64) is None

    def test_disk_rejects_misfiled_entry(self, tmp_path):
        path = tmp_path / ("a" * 64 + ".json")
        path.write_text(json.dumps(make_plan(fp="b" * 64).to_json()))
        assert PlanCache(disk_dir=str(tmp_path)).get("a" * 64) is None

    def test_torn_disk_file_is_miss_and_deleted(self, tmp_path):
        """Regression: a torn write used to raise on the request path
        and the damaged file survived to poison every later lookup."""
        from repro.service.chaos import corrupt_disk_file

        seeder = PlanCache(disk_dir=str(tmp_path))
        seeder.put(make_plan())
        path = tmp_path / ("f" * 64 + ".json")
        corrupt_disk_file(str(path), "torn_json")

        reg = MetricsRegistry()
        cache = PlanCache(disk_dir=str(tmp_path), registry=reg)
        assert cache.get("f" * 64) is None  # a miss, not an exception
        assert not path.exists()  # the wreck is gone
        assert cache.stats.corrupt_files == 1
        counters = reg.snapshot()["counters"]
        assert counters["service_cache_disk_corrupt_total"] == 1
        # And the slot is immediately reusable.
        cache.put(make_plan())
        fresh = PlanCache(disk_dir=str(tmp_path))
        assert fresh.get("f" * 64) is not None

    def test_eviction_and_occupancy_telemetry(self):
        reg = MetricsRegistry()
        cache = PlanCache(max_entries=2, registry=reg)
        for k in range(3):
            cache.put(make_plan(fp=f"{k:064d}"))
        snap = reg.snapshot()
        assert snap["counters"]["service_cache_evictions_total"] == 1
        assert snap["gauges"]["service_cache_entries"] == 2
        assert snap["gauges"]["service_cache_bytes"] == cache.stats.bytes
        assert cache.stats.bytes > 0

    def test_disk_tier_telemetry(self, tmp_path):
        seeder = PlanCache(disk_dir=str(tmp_path))
        seeder.put(make_plan(fp="a" * 64))
        reg = MetricsRegistry()
        cache = PlanCache(disk_dir=str(tmp_path), registry=reg)
        assert cache.get("a" * 64) is not None  # promoted from disk
        assert cache.get("b" * 64) is None  # disk miss
        counters = reg.snapshot()["counters"]
        assert (
            counters['service_cache_disk_lookups_total{outcome="hit"}']
            == 1
        )
        assert (
            counters['service_cache_disk_lookups_total{outcome="miss"}']
            == 1
        )
        assert counters["service_cache_disk_promotions_total"] == 1
        assert cache.stats.disk_lookups == 2
        assert cache.stats.disk_hit_rate() == 0.5

    def test_disk_hit_rate_none_without_disk_tier(self):
        cache = PlanCache()
        cache.get("a" * 64)
        assert cache.stats.disk_hit_rate() is None

    def test_invalidate_drops_both_tiers(self, tmp_path):
        cache = PlanCache(disk_dir=str(tmp_path))
        cache.put(make_plan())
        assert cache.invalidate("f" * 64)
        assert cache.get("f" * 64) is None
        assert not os.path.exists(tmp_path / ("f" * 64 + ".json"))

    def test_single_flight_compiles_once(self):
        cache = PlanCache()
        calls = []
        gate = threading.Event()

        def compile_fn():
            calls.append(1)
            gate.wait(2.0)
            return make_plan()

        outcomes = []

        def worker():
            _, outcome = cache.get_or_compile("f" * 64, compile_fn)
            outcomes.append(outcome)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.1)  # let followers pile onto the flight
        gate.set()
        for t in threads:
            t.join(5.0)
        assert len(calls) == 1
        assert outcomes.count("miss") == 1
        assert set(outcomes) <= {"miss", "coalesced", "hit"}

    def test_single_flight_shares_failure(self):
        cache = PlanCache()

        def boom():
            raise RuntimeError("synthesis exploded")

        with pytest.raises(RuntimeError):
            cache.get_or_compile("f" * 64, boom)
        # The failed flight is cleaned up: the next caller retries.
        plan, outcome = cache.get_or_compile("f" * 64, make_plan)
        assert outcome == "miss" and plan is not None

    def test_compile_plan_matches_memory_system(self):
        spec = small_spec(DENOISE)
        opts = CompileOptions()
        plan = compile_plan(spec, opts, fingerprint(spec, opts))
        assert plan.fifo_capacities == [15, 1, 1, 15]
        assert plan.num_banks == 4
        assert plan.summary["name"] == "DENOISE"


class TestScheduler:
    def test_rejects_when_closed(self):
        sched = Scheduler(max_queue=4)
        sched.close()
        with pytest.raises(QueueClosedError):
            sched.submit(object(), block=False)

    def test_bounded_nonblocking(self):
        sched = Scheduler(max_queue=1)
        assert sched.submit(object(), block=False)
        assert not sched.submit(object(), block=False)

    def test_drain_waits_for_slots(self):
        sched = Scheduler(max_queue=4)
        slot = sched.make_slot()
        sched.close()
        assert not sched.wait_drained(timeout=0.05)
        slot.resolve({"status": "ok"})
        assert sched.wait_drained(timeout=1.0)
        assert sched.idle()

    def test_slot_first_writer_wins(self):
        sched = Scheduler()
        slot = sched.make_slot()
        assert slot.resolve({"status": "ok"})
        assert not slot.resolve({"status": "error"})
        assert slot.result()["status"] == "ok"
        assert sched.unresolved == 0


class TestServiceApi:
    def _service(self, **overrides):
        defaults = dict(workers=2, max_queue=32, default_timeout_s=10.0)
        defaults.update(overrides)
        return StencilService(
            ServiceConfig(**defaults), registry=MetricsRegistry()
        )

    def test_spec_request_round_trip(self):
        spec = small_spec(SOBEL)
        with self._service() as svc:
            reply = svc.handle(
                {"spec": spec.to_json(), "validate": True},
                wait_timeout=30.0,
            )
        assert reply["status"] == "ok"
        assert reply["benchmark"] == "SOBEL"
        assert reply["validated"] is True

    def test_same_seed_same_checksum(self):
        with self._service() as svc:
            req = {"benchmark": "DENOISE", "grid": [12, 16], "seed": 7}
            first = svc.handle(req, wait_timeout=30.0)
            second = svc.handle(req, wait_timeout=30.0)
        assert first["status"] == second["status"] == "ok"
        assert first["checksum"] == second["checksum"]
        assert first["fingerprint"] == second["fingerprint"]
        assert second["cache"] == "hit"

    def test_invalid_requests_get_responses(self):
        with self._service() as svc:
            bad = [
                {},  # neither benchmark nor spec
                {"benchmark": "DENOISE", "spec": {}},  # both
                {"benchmark": "NOPE"},
                {"benchmark": "DENOISE", "grid": "12xbanana"},
                {"benchmark": "DENOISE", "grid": [0, 5]},
                {"benchmark": "DENOISE", "timeout_s": -1},
            ]
            replies = [svc.handle(r, wait_timeout=10.0) for r in bad]
        assert [r["status"] for r in replies] == ["invalid"] * len(bad)
        assert all("error" in r for r in replies)

    def test_bad_json_line(self):
        with self._service() as svc:
            reply = svc.submit_json("{not json").result(5.0)
        assert reply["status"] == "invalid"

    def test_metrics_control_request(self):
        """A ``{"control": "metrics"}`` document on the request
        channel answers with this node's full registry snapshot."""
        with self._service() as svc:
            assert (
                svc.handle(
                    {"benchmark": "DENOISE", "grid": [12, 16]},
                    wait_timeout=30.0,
                )["status"]
                == "ok"
            )
            reply = svc.submit(
                {"proto": 1, "id": "ctl-1", "control": "metrics"}
            ).result(10.0)
        assert reply.ok and reply.id == "ctl-1"
        snap = reply.summary
        assert set(snap) >= {"counters", "gauges", "histograms"}
        assert (
            snap["counters"]['service_requests_total{status="ok"}']
            == 1  # the control itself is not counted as a request
        )
        assert any(
            k.startswith("service_stage_ms") for k in snap["histograms"]
        )

    def test_unknown_control_verb_rejected(self):
        with self._service() as svc:
            reply = svc.submit(
                {"proto": 1, "id": "ctl-2", "control": "reboot"}
            ).result(10.0)
        assert not reply.ok
        assert reply.status == "invalid"
        assert reply.error.kind == "bad_request"

    def test_retry_then_succeed(self):
        failures = {"count": 0}

        def flaky(item):
            if failures["count"] < 2:
                failures["count"] += 1
                raise RuntimeError("transient fault")

        svc = StencilService(
            ServiceConfig(workers=1, max_retries=2, retry_backoff_s=0.01),
            registry=MetricsRegistry(),
            fault_hook=flaky,
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16]},
                wait_timeout=30.0,
            )
        assert reply["status"] == "ok"
        assert reply["attempts"] == 3
        snap = svc.metrics.snapshot()
        assert snap["counters"]["service_retries_total"] == 2

    def test_retries_exhausted(self):
        def always(item):
            raise RuntimeError("permanent fault")

        svc = StencilService(
            ServiceConfig(workers=1, max_retries=1, retry_backoff_s=0.01),
            registry=MetricsRegistry(),
            fault_hook=always,
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16]},
                wait_timeout=30.0,
            )
        assert reply["status"] == "error"
        assert "permanent fault" in reply["error"]["detail"]

    def test_queued_deadline_times_out(self):
        gate = threading.Event()

        def slow(item):
            if item.raw.get("slow"):
                gate.wait(2.0)

        svc = StencilService(
            ServiceConfig(workers=1, max_batch=1),
            registry=MetricsRegistry(),
            fault_hook=slow,
        )
        svc.start()
        blocker = svc.submit(
            {"benchmark": "DENOISE", "grid": [12, 16], "slow": True}
        )
        victim = svc.submit(
            {"benchmark": "DENOISE", "grid": [12, 16], "timeout_s": 0.05}
        )
        time.sleep(0.3)  # victim's deadline passes while queued
        gate.set()
        assert victim.result(10.0)["status"] == "timeout"
        assert blocker.result(10.0)["status"] == "ok"
        svc.shutdown()

    def test_nondrain_shutdown_cancels_queued(self):
        gate = threading.Event()

        def slow(item):
            gate.wait(2.0)

        svc = StencilService(
            ServiceConfig(workers=1, max_batch=1),
            registry=MetricsRegistry(),
            fault_hook=slow,
        )
        svc.start()
        slots = [
            svc.submit({"benchmark": "DENOISE", "grid": [12, 16]})
            for _ in range(4)
        ]
        time.sleep(0.2)  # worker picks up the first, rest stay queued
        threading.Timer(0.5, gate.set).start()  # unblock mid-drain
        svc.shutdown(drain=False, timeout=10.0)
        statuses = [s.result(5.0)["status"] for s in slots]
        assert statuses.count("cancelled") >= 1
        assert all(s in ("ok", "cancelled") for s in statuses)

    def test_submit_after_close_is_rejected(self):
        svc = self._service()
        svc.start()
        svc.scheduler.close()
        reply = svc.submit(
            {"benchmark": "DENOISE", "grid": [12, 16]}
        ).result(5.0)
        assert reply["status"] == "rejected"
        assert "draining" in reply["error"]["detail"]
        svc.shutdown()
