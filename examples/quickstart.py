"""Quickstart: compile, inspect and simulate a stencil accelerator.

Runs the full design-automation flow (Fig 11 of the paper) on the
DENOISE kernel, prints the generated memory system (the paper's Table 2
structure), the transformed computation kernel (Fig 4), and then
executes the accelerator cycle by cycle on a small grid, checking the
output against a direct NumPy computation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DENOISE, ChainSimulator, compile_accelerator, make_input
from repro.stencil.golden import golden_output_sequence


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Compile the paper-scale benchmark (768x1024 grid).
    # ------------------------------------------------------------------
    design = compile_accelerator(DENOISE)
    print("=" * 68)
    print(f"Compiled {design.spec}")
    print("=" * 68)
    print(design.memory_system.describe())
    print()
    print("Table 2 — reuse FIFOs:")
    for row in design.memory_system.table2_rows():
        print(
            f"  {row['fifo_id']}: {row['precedent']} -> "
            f"{row['successive']}, size {row['size']}, "
            f"impl {row['physical_impl']}"
        )
    print()
    print(
        f"kernel: latency {design.kernel_schedule.latency} cycles, "
        f"II={design.kernel_schedule.ii}"
    )
    print(
        f"resources: {design.resources.total.bram_18k} BRAM18, "
        f"{design.resources.total.slices} slices, "
        f"{design.resources.total.dsp} DSP"
    )
    print(
        f"timing: {design.timing.critical_path_ns:.2f} ns critical "
        f"path ({design.timing.slack_ns:.2f} ns slack at 200 MHz)"
    )

    # ------------------------------------------------------------------
    # 2. The transformed kernel the HLS tool would compile (Fig 4).
    # ------------------------------------------------------------------
    print()
    print("Transformed kernel source (Fig 4):")
    print(design.transformed.kernel_source)

    # ------------------------------------------------------------------
    # 3. Simulate at reduced scale and verify against NumPy.
    # ------------------------------------------------------------------
    small = DENOISE.with_grid((24, 32))
    grid = make_input(small)
    small_design = compile_accelerator(small)
    sim = ChainSimulator(
        small,
        small_design.memory_system,
        grid,
        kernel_latency=small_design.kernel_schedule.latency,
    )
    result = sim.run()
    golden = golden_output_sequence(small, grid)
    assert np.allclose(result.output_values(), golden)
    print()
    print(
        f"simulated {small}: {result.stats.total_cycles} cycles for "
        f"{result.stats.outputs_produced} outputs "
        f"(stream length {small_design.memory_system.stream_domain.count()}), "
        "output matches NumPy golden reference ✓"
    )


if __name__ == "__main__":
    main()
