"""Bounded admission queue with deadlines, retries and graceful drain.

The scheduler is the service's front door.  It enforces three
invariants the load test leans on:

* **bounded memory** — at most ``max_queue`` requests wait at any time;
  over-admission either blocks the submitter (backpressure) or is
  rejected *with a response*, never silently dropped;
* **every admitted request resolves** — each :class:`WorkItem` carries
  a :class:`ResultSlot` that is set exactly once (first writer wins) on
  success, error, timeout, rejection or cancellation;
* **clean drain** — :meth:`close` stops admission, after which workers
  keep pulling until the queue is empty and every popped item has
  resolved; :meth:`flush_cancelled` resolves any stragglers on a
  non-draining shutdown.

Per-request deadlines are stamped at admission (``monotonic + timeout``)
and checked by the executor before each expensive stage; expired items
get a ``timeout`` response instead of burning a worker.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..stencil.spec import StencilSpec
from .fingerprint import CompileOptions
from .proto import Response

__all__ = ["QueueClosedError", "ResultSlot", "Scheduler", "WorkItem"]


class QueueClosedError(RuntimeError):
    """Submission after :meth:`Scheduler.close` (drain in progress)."""


class ResultSlot:
    """A write-once response cell the submitter blocks on.

    Resolutions are typed :class:`repro.service.proto.Response`
    objects (which still support legacy mapping access).
    """

    __slots__ = ("_event", "_response", "_on_resolve")

    def __init__(self, on_resolve=None) -> None:
        self._event = threading.Event()
        self._response: Optional[Response] = None
        self._on_resolve = on_resolve

    def resolve(self, response: Response) -> bool:
        """Set the response; returns False if already resolved."""
        if self._event.is_set():
            return False
        self._response = response
        self._event.set()
        if self._on_resolve is not None:
            self._on_resolve()
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Response:
        if not self._event.wait(timeout):
            raise TimeoutError("no response within the wait timeout")
        assert self._response is not None
        return self._response


@dataclass
class WorkItem:
    """One admitted request travelling through the pipeline."""

    request_id: str
    spec: StencilSpec
    options: CompileOptions
    fingerprint: str
    seed: int
    deadline: float  # time.monotonic() deadline
    slot: ResultSlot
    #: Multi-stage pipeline plan (a tuple of
    #: :class:`repro.service.workload.PlannedStage`) when this item is
    #: a lowered workload of more than one stage; ``spec``/``options``
    #: then mirror stage 0 and ``fingerprint`` is the workload
    #: fingerprint.  ``None`` for ordinary single-kernel items.
    stages: Optional[tuple] = None
    #: Display name for multi-stage items (e.g. ``DENOISE->RICIAN``);
    #: responses fall back to ``spec.name`` when unset.
    label: Optional[str] = None
    validate: Optional[bool] = None  # None = sampled by the executor
    retries_left: int = 0
    attempts: int = 0
    #: Shard-routing offset, bumped when a retry must land on a
    #: *sibling* shard (e.g. after a worker crash killed the home
    #: shard's process mid-request).  Ignored by the thread executor.
    shard_hops: int = 0
    admitted_at: float = field(default_factory=time.monotonic)
    #: perf_counter_ns at admission, for span timestamps (the float
    #: ``admitted_at`` stays for deadline math).
    admitted_ns: int = field(default_factory=time.perf_counter_ns)
    #: Distributed-trace context inherited from the wire request: the
    #: trace every stage span of this item joins, and the caller's
    #: span id the node-side root span hangs off.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    #: The typed wire request this item was parsed from (None for
    #: synthetic items built directly in tests).
    request: Optional[Any] = None  # proto.Request
    raw: Dict[str, Any] = field(default_factory=dict)

    def expired(self, now: Optional[float] = None) -> bool:
        return (now or time.monotonic()) > self.deadline


class Scheduler:
    """Bounded FIFO of :class:`WorkItem` with drain accounting."""

    def __init__(
        self,
        max_queue: int = 256,
        registry=None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = max_queue
        self._queue: "queue.Queue[WorkItem]" = queue.Queue(
            maxsize=max_queue
        )
        self._closed = threading.Event()
        self._unresolved = 0
        self._unresolved_lock = threading.Lock()
        self._all_resolved = threading.Condition(self._unresolved_lock)
        self._registry = registry
        self._depth_gauge = (
            registry.gauge("service_queue_depth") if registry else None
        )

    # -- bookkeeping ---------------------------------------------------
    def _track(self) -> None:
        with self._unresolved_lock:
            self._unresolved += 1

    def _untrack(self) -> None:
        with self._all_resolved:
            self._unresolved -= 1
            if self._unresolved <= 0:
                self._all_resolved.notify_all()

    def _update_depth(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(self._queue.qsize())

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def unresolved(self) -> int:
        """Admitted requests whose response has not been set yet."""
        with self._unresolved_lock:
            return self._unresolved

    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- admission -----------------------------------------------------
    def make_slot(self) -> ResultSlot:
        """A slot wired into the drain accounting.

        Callers must eventually :meth:`ResultSlot.resolve` it — either
        by admitting the item or by resolving a rejection directly.
        """
        self._track()
        return ResultSlot(on_resolve=self._untrack)

    def submit(
        self,
        item: WorkItem,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> bool:
        """Admit one item.  Returns False when the bounded queue is
        full (non-blocking or timed-out admission); the caller then
        resolves the slot with a rejection response.  Raises
        :class:`QueueClosedError` once draining has begun."""
        if self._closed.is_set():
            raise QueueClosedError("service is draining")
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            return False
        self._update_depth()
        return True

    def requeue(self, item: WorkItem) -> bool:
        """Re-admit a retried item even while draining (it was already
        admitted once, so the drain must still resolve it).  Only fails
        when the queue is physically full."""
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            return False
        self._update_depth()
        return True

    # -- consumption ---------------------------------------------------
    def next_batch(
        self, max_batch: int, wait_s: float = 0.05
    ) -> List[WorkItem]:
        """Up to ``max_batch`` items; blocks ``wait_s`` for the first."""
        items: List[WorkItem] = []
        try:
            items.append(self._queue.get(timeout=wait_s))
        except queue.Empty:
            return items
        while len(items) < max_batch:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                break
        self._update_depth()
        return items

    def idle(self) -> bool:
        """True when draining is finished: closed, empty, all resolved."""
        return (
            self._closed.is_set()
            and self._queue.empty()
            and self.unresolved == 0
        )

    # -- shutdown ------------------------------------------------------
    def close(self) -> None:
        """Stop admitting new work (drain begins)."""
        self._closed.set()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has resolved."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._all_resolved:
            while self._unresolved > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._all_resolved.wait(remaining)
        return True

    def flush_cancelled(self, make_response) -> int:
        """Resolve everything still queued with a cancellation response
        (``make_response(item) -> dict``).  Used by non-drain shutdown
        so nothing is ever dropped without a response."""
        flushed = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item.slot.resolve(make_response(item)):
                flushed += 1
        self._update_depth()
        return flushed
