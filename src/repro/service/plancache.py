"""Two-tier plan cache with single-flight stampede protection.

Tier 1 is an in-memory LRU bounded by entry count *and* total encoded
bytes; tier 2 is an optional on-disk directory of ``<fingerprint>.json``
files that survives process restarts.  A memory miss falls through to
disk and re-promotes the entry; a disk miss compiles.

Concurrent misses for the same fingerprint are collapsed by
:meth:`PlanCache.get_or_compile`: the first caller becomes the *leader*
and runs the compile function exactly once while followers block on the
flight and share the leader's result (or its exception).  This is the
classic single-flight pattern — without it, a cold popular spec would
stampede every worker into the same expensive polyhedral analysis.

The cache never re-validates plan *content* on read (that is the
executor's sampled cycle-sim canary); it only checks the format version
and that the file matches its fingerprint key.
"""

from __future__ import annotations

import copy
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.tracing import span
from .fingerprint import FINGERPRINT_VERSION
from .lease import FileLease

__all__ = ["CachedPlan", "CacheStats", "PlanCache"]


@dataclass
class CachedPlan:
    """A compiled, serialization-ready stencil plan.

    Everything the service needs to *execute* a request without
    re-running the compile pipeline: the spec (for the golden path),
    the FIFO depths and filter order (for the cycle-sim canary), and
    the design summary (for the response payload).
    """

    fingerprint: str
    spec: dict  # StencilSpec.to_json()
    options: dict  # CompileOptions.to_json()
    fifo_capacities: List[int]
    filter_order: List[str]
    num_banks: int
    total_buffer: int
    summary: dict
    version: int = FINGERPRINT_VERSION
    #: Lowered ``BufferProgram`` JSON (see :mod:`repro.lower.program`),
    #: attached by the compiled backend on first lowering.  ``None``
    #: for plans that have not been lowered yet — including every plan
    #: cached before the lowering existed, which re-lowers once on
    #: first compiled use.
    buffer_program: Optional[dict] = None

    def to_json(self, include_program: bool = True) -> dict:
        data = {
            "fingerprint": self.fingerprint,
            "version": self.version,
            "spec": self.spec,
            "options": self.options,
            "fifo_capacities": list(self.fifo_capacities),
            "filter_order": list(self.filter_order),
            "num_banks": self.num_banks,
            "total_buffer": self.total_buffer,
            "summary": self.summary,
        }
        if include_program and self.buffer_program is not None:
            # Deep-copied: callers mutate to_json() output (the chaos
            # fuzzer does) and must never reach back into this plan.
            data["buffer_program"] = copy.deepcopy(
                self.buffer_program
            )
        return data

    @classmethod
    def from_json(cls, data: dict) -> "CachedPlan":
        return cls(
            fingerprint=data["fingerprint"],
            spec=data["spec"],
            options=data["options"],
            fifo_capacities=[int(c) for c in data["fifo_capacities"]],
            filter_order=list(data["filter_order"]),
            num_banks=int(data["num_banks"]),
            total_buffer=int(data["total_buffer"]),
            summary=data["summary"],
            version=int(data.get("version", -1)),
            buffer_program=data.get("buffer_program"),
        )

    def encoded_size(self) -> int:
        """Bytes of the canonical encoding (the LRU's size unit)."""
        return len(
            json.dumps(self.to_json(), sort_keys=True).encode("utf-8")
        )


@dataclass
class CacheStats:
    """Point-in-time cache counters (also mirrored to obs metrics)."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    disk_hits: int = 0
    disk_lookups: int = 0
    corrupt_files: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    def disk_hit_rate(self) -> Optional[float]:
        """Disk-tier hit rate over memory-miss lookups (None if unused)."""
        if not self.disk_lookups:
            return None
        return self.disk_hits / self.disk_lookups


class _Flight:
    """One in-progress compile that followers can wait on."""

    __slots__ = ("event", "plan", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.plan: Optional[CachedPlan] = None
        self.error: Optional[BaseException] = None

    def resolve(self, plan: CachedPlan) -> None:
        self.plan = plan
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def wait(self, timeout: Optional[float] = None) -> CachedPlan:
        if not self.event.wait(timeout):
            raise TimeoutError("timed out waiting for in-flight compile")
        if self.error is not None:
            raise self.error
        assert self.plan is not None
        return self.plan


class PlanCache:
    """Bounded in-memory LRU over an optional on-disk JSON tier."""

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: int = 16 * 1024 * 1024,
        disk_dir: Optional[str] = None,
        registry=None,
        use_leases: bool = True,
        lease_ttl_s: float = 120.0,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.disk_dir = disk_dir
        #: Cross-process single-flight via lease files in ``disk_dir``
        #: (see :mod:`repro.service.lease`).  Memory-only caches never
        #: lease — there is no shared medium to be coherent over.
        self.use_leases = use_leases and disk_dir is not None
        self.lease_ttl_s = lease_ttl_s
        self._lock = threading.RLock()
        self._lru: "OrderedDict[str, Tuple[CachedPlan, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._flights: Dict[str, _Flight] = {}
        self._flight_lock = threading.Lock()
        self.stats = CacheStats()
        self._registry = registry
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    # -- telemetry -----------------------------------------------------
    def _count(self, name: str, labels=None) -> None:
        if self._registry is not None:
            self._registry.counter(name, labels).inc()

    def _sync_gauges(self) -> None:
        """Mirror LRU occupancy into obs gauges (caller holds lock)."""
        self.stats.entries = len(self._lru)
        self.stats.bytes = self._bytes
        if self._registry is not None:
            self._registry.gauge("service_cache_entries").set(
                len(self._lru)
            )
            self._registry.gauge("service_cache_bytes").set(self._bytes)

    # -- tier plumbing -------------------------------------------------
    def _disk_path(self, fp: str) -> Optional[str]:
        if not self.disk_dir:
            return None
        return os.path.join(self.disk_dir, f"{fp}.json")

    def _sidecar_path(self, fp: str) -> Optional[str]:
        """The lowered ``BufferProgram`` sidecar next to the plan.

        The program lives in its own ``<fp>.lower.json`` file so the
        plan file keeps its pre-lowering byte format: old cache
        directories load unchanged (program ``None`` → one-time
        re-lowering) and the plan-file corruption detector never sees
        the sidecar.
        """
        if not self.disk_dir:
            return None
        return os.path.join(self.disk_dir, f"{fp}.lower.json")

    def _remove_sidecar(self, fp: str) -> None:
        """Drop the program sidecar and any built converter artifacts.

        The C converter persists ``<fp>.c.so`` / ``<fp>.c.json`` next
        to the plan; an invalidated plan must take its compiled
        library with it, or a stale artifact could outlive the plan
        that generated it (the artifact meta's source digest would
        refuse it anyway — this just keeps the directory honest).
        """
        candidates = [self._sidecar_path(fp)]
        if self.disk_dir:
            candidates.append(
                os.path.join(self.disk_dir, f"{fp}.c.so")
            )
            candidates.append(
                os.path.join(self.disk_dir, f"{fp}.c.json")
            )
        for path in candidates:
            if path is not None and os.path.exists(path):
                try:
                    os.remove(path)
                except OSError:
                    pass

    def _load_sidecar(self, fp: str) -> Optional[dict]:
        """Best-effort sidecar read: any damage degrades to ``None``.

        A corrupt sidecar is counted and deleted but never fails the
        plan lookup — the compiled backend simply re-lowers (and its
        converter independently re-checks whatever loads here against
        a fresh bufferize, so a *valid-looking but wrong* sidecar
        still cannot produce a wrong answer).
        """
        path = self._sidecar_path(fp)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                program = json.load(fh)
            if (
                not isinstance(program, dict)
                or program.get("fingerprint") != fp
            ):
                raise ValueError("sidecar does not match its plan")
        except OSError:
            return None
        except (ValueError, KeyError, TypeError):
            self._count("service_cache_sidecar_corrupt_total")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return program

    def _insert(self, plan: CachedPlan) -> None:
        """Insert into the LRU (caller holds the lock) and evict."""
        size = plan.encoded_size()
        old = self._lru.pop(plan.fingerprint, None)
        if old is not None:
            self._bytes -= old[1]
        self._lru[plan.fingerprint] = (plan, size)
        self._bytes += size
        while self._lru and (
            len(self._lru) > self.max_entries
            or self._bytes > self.max_bytes
        ):
            if len(self._lru) == 1:
                break  # never evict the sole (possibly oversized) entry
            _, (_, evicted_size) = self._lru.popitem(last=False)
            self._bytes -= evicted_size
            self.stats.evictions += 1
            self._count("service_cache_evictions_total")
        self._sync_gauges()

    def _load_disk(self, fp: str) -> Optional[CachedPlan]:
        path = self._disk_path(fp)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                plan = CachedPlan.from_json(json.load(fh))
        except OSError:
            return None  # transient read failure: treat as a miss
        except (ValueError, KeyError, TypeError):
            # Truncated, garbage or partially written JSON: a torn
            # write must read as a *miss*, never an exception on the
            # request path, and the damaged file must not survive to
            # poison future lookups.
            self.stats.corrupt_files += 1
            self._count("service_cache_disk_corrupt_total")
            try:
                os.remove(path)
            except OSError:
                pass
            self._remove_sidecar(fp)  # no orphaned programs
            return None
        if (
            plan.version != FINGERPRINT_VERSION
            or plan.fingerprint != fp
        ):
            return None  # stale format or misfiled entry
        plan.buffer_program = self._load_sidecar(fp)
        return plan

    def _store_disk(self, plan: CachedPlan) -> None:
        path = self._disk_path(plan.fingerprint)
        if path is None:
            return
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            # The plan file stays program-free (pre-lowering byte
            # format); the program goes in the sidecar.
            json.dump(plan.to_json(include_program=False), fh,
                      sort_keys=True)
        os.replace(tmp, path)  # atomic against concurrent readers
        side = self._sidecar_path(plan.fingerprint)
        if side is None:
            return
        if plan.buffer_program is None:
            self._remove_sidecar(plan.fingerprint)
            return
        tmp = side + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(plan.buffer_program, fh, sort_keys=True)
        os.replace(tmp, side)

    # -- public API ----------------------------------------------------
    def get(self, fp: str) -> Optional[CachedPlan]:
        """Look up both tiers; promotes on hit, counts the outcome."""
        return self.lookup(fp)[0]

    def lookup(
        self, fp: str, count: bool = True
    ) -> Tuple[Optional[CachedPlan], str]:
        """Both-tier lookup returning ``(plan, tier)``.

        ``tier`` is ``"memory"``, ``"disk"`` (found on disk and
        promoted into the LRU) or ``"miss"``.
        """
        with self._lock:
            entry = self._lru.get(fp)
            if entry is not None:
                self._lru.move_to_end(fp)
                if count:
                    self.stats.hits += 1
                return entry[0], "memory"
        had_disk = self.disk_dir is not None
        plan = self._load_disk(fp)
        if count and had_disk:
            with self._lock:
                self.stats.disk_lookups += 1
            self._count(
                "service_cache_disk_lookups_total",
                {"outcome": "hit" if plan is not None else "miss"},
            )
        if plan is not None:
            with span(
                "service.cache_promote", fingerprint=fp[:12]
            ):
                with self._lock:
                    if count:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                    self._insert(plan)
            if count:
                self._count("service_cache_disk_promotions_total")
            return plan, "disk"
        if count:
            with self._lock:
                self.stats.misses += 1
        return None, "miss"

    def put(self, plan: CachedPlan) -> None:
        """Insert into both tiers."""
        with self._lock:
            self._insert(plan)
        self._store_disk(plan)

    def invalidate(self, fp: str) -> bool:
        """Drop an entry from both tiers (the canary's eviction path)."""
        dropped = False
        with self._lock:
            entry = self._lru.pop(fp, None)
            if entry is not None:
                self._bytes -= entry[1]
                self._sync_gauges()
                dropped = True
        path = self._disk_path(fp)
        if path is not None and os.path.exists(path):
            try:
                os.remove(path)
                dropped = True
            except OSError:
                pass
        self._remove_sidecar(fp)
        return dropped

    def get_or_compile(
        self,
        fp: str,
        compile_fn: Callable[[], CachedPlan],
        timeout: Optional[float] = None,
    ) -> Tuple[CachedPlan, str]:
        """Single-flight lookup: returns ``(plan, outcome)``.

        ``outcome`` is ``"hit"`` (memory tier), ``"disk"`` (disk tier,
        promoted), ``"miss"`` (this caller ran ``compile_fn``),
        ``"coalesced"`` (another caller's in-flight compile was
        shared) or ``"lease"`` (another *process* compiled it; the
        plan arrived through the shared disk tier while this caller
        waited on its lease file).  ``compile_fn`` runs exactly once
        per fingerprint no matter how many callers race — and, with a
        disk tier, exactly once across every process sharing it.
        """
        plan, tier = self.lookup(fp)
        if plan is not None:
            return plan, "hit" if tier == "memory" else "disk"
        with self._flight_lock:
            flight = self._flights.get(fp)
            if flight is None:
                flight = _Flight()
                self._flights[fp] = flight
                leader = True
            else:
                leader = False
        if not leader:
            plan = flight.wait(timeout)
            with self._lock:
                self.stats.coalesced += 1
            return plan, "coalesced"
        try:
            # Re-check under flight leadership: a racing leader may have
            # finished between our miss and acquiring the flight.  The
            # stats already counted this caller's miss, so don't again.
            plan, tier = self.lookup(fp, count=False)
            outcome = "hit" if tier == "memory" else "disk"
            if plan is None:
                plan, outcome = self._compile_under_lease(
                    fp, compile_fn, timeout
                )
            flight.resolve(plan)
            return plan, outcome
        except BaseException as exc:
            flight.fail(exc)
            raise
        finally:
            with self._flight_lock:
                self._flights.pop(fp, None)

    def _run_compile(
        self, fp: str, compile_fn: Callable[[], CachedPlan]
    ) -> CachedPlan:
        with span("service.cache_compile", fingerprint=fp[:12]):
            plan = compile_fn()
        self.put(plan)
        # One real compile ran (followers coalesce): the exact count
        # global single-flight assertions lean on.
        self._count("service_plan_compiles_total")
        return plan

    def _compile_under_lease(
        self,
        fp: str,
        compile_fn: Callable[[], CachedPlan],
        timeout: Optional[float],
    ) -> Tuple[CachedPlan, str]:
        """The in-process flight leader's cross-process arbitration.

        Without a disk tier this is just the compile.  With one, the
        leader must first win the fingerprint's *lease file* — another
        router sharing the cache directory may already be compiling.
        A losing leader polls (lease + disk) with growing pauses: when
        the remote holder publishes, the plan arrives via the normal
        disk-promotion path (outcome ``"lease"``); when the holder
        *crashes*, its lease goes stale by pid-liveness and the next
        ``try_acquire`` steals it — within one poll interval, not a
        wall-clock TTL.  A holder that fails the compile releases, and
        the next waiter retries rather than inheriting the exception.
        """
        if not self.use_leases:
            return self._run_compile(fp, compile_fn), "miss"
        lease = FileLease(
            self.disk_dir,
            fp,
            ttl_s=self.lease_ttl_s,
            registry=self._registry,
        )
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        waited = False
        attempt = 0
        while True:
            if lease.try_acquire():
                try:
                    # The remote holder may have published while this
                    # process waited in line.
                    plan, _tier = self.lookup(fp, count=False)
                    if plan is not None:
                        return plan, "lease"
                    return self._run_compile(fp, compile_fn), "miss"
                finally:
                    lease.release()
            if not waited:
                waited = True
                self._count("service_lease_waits_total")
            plan, _tier = self.lookup(fp, count=False)
            if plan is not None:
                return plan, "lease"
            now = time.monotonic()
            if deadline is not None and now > deadline:
                raise TimeoutError(
                    "timed out waiting for the cross-process compile "
                    f"lease on {fp[:12]}"
                )
            pause = min(0.25, 0.01 * (2 ** min(attempt, 6)))
            if deadline is not None:
                pause = min(pause, max(0.0, deadline - now))
            time.sleep(pause)
            attempt += 1
