"""Convert: turn a :class:`BufferProgram` into a NumPy batch kernel.

The second half of the value-lowering split.  One
:class:`CompiledKernel` is built per plan fingerprint and then reused
for every request: executing a grid is a handful of ndarray ops instead
of a per-request walk of the spec tree and a per-point Python loop.
Same-fingerprint batches stack their input grids on a leading axis and
run through the *same* ops in one call.

Bit-exactness contract
----------------------
The kernel must reproduce :func:`repro.stencil.golden.golden_output_sequence`
*bit for bit* (the service digests outputs with SHA-256, so "close" is
not enough).  Two properties make that hold:

* the op list replays :func:`repro.stencil.expr.evaluate`'s exact
  post-order and operator semantics (``+ - * /`` operators,
  ``np.minimum``/``np.maximum``, ``abs``, ``math.sqrt``-or-``np.sqrt``)
  — all IEEE-754 double ops with one correctly rounded result, so
  scalar and array evaluation agree element for element;
* reads are strided views for box domains (exactly the shifted slices
  ``run_golden`` takes) and flat gather tables for skewed polyhedra
  (exactly the per-point loads of ``iter_outputs_pointwise``).

Every converter call re-derives the program from the plan
(:func:`repro.lower.bufferize.bufferize_plan` is cheap and
deterministic) and refuses a stored sidecar that disagrees
(:class:`ProgramMismatchError`) — a corrupted cache entry can make the
service *fail*, never answer wrong.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..polyhedral.domain import domain_from_json
from ..stencil.spec import StencilSpec
from .bufferize import (
    GATHER_HARD_LIMIT,
    GATHER_POINT_LIMIT,
    bufferize_plan,
)
from .gather import GATHER_CHUNK_POINTS, gather_base
from .program import (
    BufferProgram,
    LoweringError,
    LoweringUnsupported,
    ProgramMismatchError,
    program_from_json,
    program_to_json,
    validate_program,
)

__all__ = [
    "CompiledKernel",
    "ConverterUnavailable",
    "convert",
    "converter_names",
    "get_converter",
    "kernel_from_plan",
    "register_converter",
]


class ConverterUnavailable(LoweringError):
    """The selected converter cannot run in this environment.

    Raised at *build* time (never mid-execution) — e.g. the C converter
    with no C toolchain on the box.  The engine degrades to the NumPy
    converter and counts the reason; it never fails the request.
    """


#: name -> builder ``(program, gather_limit=...) -> kernel``.  Every
#: converter target consumes the same :class:`BufferProgram` and must
#: honor the same bit-exactness contract; ``numpy`` is always present,
#: others (``c``) register on import and may raise
#: :class:`ConverterUnavailable` from their builder.
_CONVERTERS: Dict[str, Callable] = {}


def register_converter(name: str) -> Callable:
    """Class/function decorator adding a converter target by name."""

    def decorate(builder: Callable) -> Callable:
        _CONVERTERS[name] = builder
        return builder

    return decorate


def _probe_optional_converters() -> None:
    """Import-register optional targets; absence is not an error.

    The C converter registers on import; pulling it in lazily keeps
    ``repro.lower.convert`` importable on boxes without cffi (its
    builder still raises :class:`ConverterUnavailable` there, which is
    the per-build degradation signal).
    """
    if "c" not in _CONVERTERS:
        try:
            from . import convert_c  # noqa: F401
        except Exception:
            pass


def get_converter(name: str) -> Callable:
    """The registered builder for ``name``."""
    _probe_optional_converters()
    try:
        return _CONVERTERS[name]
    except KeyError:
        raise LoweringError(
            f"unknown converter {name!r} "
            f"(registered: {sorted(_CONVERTERS)})"
        ) from None


def converter_names() -> List[str]:
    """Registered converter names (after the lazy probes)."""
    _probe_optional_converters()
    return sorted(_CONVERTERS)


#: Working-set budget for one batched replay, in bytes.  A batch of B
#: grids materializes ``reads x B x n_outputs`` float64 intermediates;
#: past a few MB those spill out of cache and the batched kernel runs
#: *slower* than B single runs.  ``run_batch`` therefore splits large
#: batches into sub-chunks sized to this budget — pure partitioning of
#: the leading axis, so every row's arithmetic is unchanged and bit
#: identity is preserved.
BATCH_WORKING_SET_BYTES = 4 * 1024 * 1024

#: Per-grid value-array footprint below which a same-fingerprint batch
#: is fused into one stacked ``run_batch`` call.  Fusing amortizes the
#: per-op ndarray dispatch cost and wins big on small grids (5x at
#: 16x20); past ~32KB per grid the stack copy plus the fatter working
#: set cost more than the dispatch they save, and per-grid strided
#: views win (measured crossover ~1-3k outputs).
FUSE_BATCH_ITEM_BYTES = 32 * 1024


class CompiledKernel:
    """An executable lowering of one fingerprint's plan.

    ``run`` executes one grid; ``run_batch`` executes a stack of grids
    (leading batch axis) through the same ndarray ops.  Outputs come
    back as contiguous float64 rows in the accelerator's lexicographic
    emission order — ready to digest.
    """

    def __init__(
        self,
        program: BufferProgram,
        gather_limit: int = GATHER_POINT_LIMIT,
    ) -> None:
        validate_program(program)
        self.program = program
        self.n_outputs = program.n_outputs
        self._grid = tuple(program.grid)
        # Read slots materialize per stream part in emission order
        # (the software analogue of each off-chip stream delivering
        # its segment's data), then any non-window reads.  Values stay
        # indexed by slot, so the op tape is part-agnostic.
        if program.parts:
            self._slot_order: List[int] = [
                slot for part in program.parts for slot in part.reads
            ]
            covered = set(self._slot_order)
            self._slot_order.extend(
                s for s in range(len(program.reads))
                if s not in covered
            )
        else:
            self._slot_order = list(range(len(program.reads)))
        self._gather: Optional[np.ndarray] = None
        self._gather_base: Optional[np.ndarray] = None
        if program.mode == "box":
            lows, shape = program.lows, program.shape
            self._slices: List[Tuple[slice, ...]] = [
                tuple(
                    slice(lo + d, lo + d + extent)
                    for lo, extent, d in zip(lows, shape, read.offset)
                )
                for read in program.reads
            ]
        else:
            self._slices = []
            domain = domain_from_json(program.domain)
            lows, highs = domain.bounding_box()
            volume = 1
            for lo, hi in zip(lows, highs):
                volume *= max(hi - lo + 1, 0)
            if volume > gather_limit:
                # Chunked regime: keep one output row's worth of flat
                # indices; per-read tables are rebuilt per chunk at
                # execution time, never the full ``reads x points``
                # table.
                self._gather_base = gather_base(
                    domain, self._grid, program.reads,
                    program.n_outputs,
                )
                return
            points = list(domain.iter_points())
            if len(points) != program.n_outputs:
                raise LoweringError(
                    f"gather domain yields {len(points)} points but "
                    f"the program claims {program.n_outputs}"
                )
            dim = len(self._grid)
            pts = np.asarray(points, dtype=np.int64).reshape(-1, dim)
            strides = np.ones(dim, dtype=np.int64)
            for j in range(dim - 2, -1, -1):
                strides[j] = strides[j + 1] * self._grid[j + 1]
            for read in program.reads:
                shifted = pts + np.asarray(read.offset, dtype=np.int64)
                if pts.size and (
                    (shifted < 0).any()
                    or (shifted >= np.asarray(self._grid)).any()
                ):
                    raise LoweringUnsupported(
                        "out_of_bounds",
                        f"read {read.array}{list(read.offset)} leaves "
                        "the grid over the gathered domain",
                    )
            base = pts @ strides if pts.size else np.zeros(
                0, dtype=np.int64
            )
            self._gather = np.stack(
                [base + read.flat for read in program.reads]
            ) if program.reads else np.zeros((0, 0), dtype=np.int64)

    # -- execution -----------------------------------------------------
    def run(self, grid: np.ndarray) -> np.ndarray:
        """One grid in, one flat float64 output row out."""
        return self.run_batch(grid[np.newaxis, ...])[0]

    def run_many(self, grids: List[np.ndarray]) -> List[np.ndarray]:
        """One output row per input grid, choosing the cheaper shape.

        Small grids fuse into a single stacked :meth:`run_batch` call;
        large grids run one at a time over strided views of the caller's
        (cached) arrays, skipping the stack copy entirely.  Row values
        are bit-identical either way — only the execution shape differs.
        """
        if len(grids) == 1:
            return [self.run(grids[0])]
        per_item = len(self.program.reads) * self.n_outputs * 8
        if per_item <= FUSE_BATCH_ITEM_BYTES:
            rows = self.run_batch(np.stack(grids))
            return [rows[i] for i in range(rows.shape[0])]
        return [self.run(g) for g in grids]

    def run_batch(self, grids: np.ndarray) -> np.ndarray:
        """``(batch,) + grid`` in, ``(batch, n_outputs)`` out."""
        if tuple(grids.shape[1:]) != self._grid:
            raise ValueError(
                f"input batch shaped {grids.shape} does not match grid "
                f"{self._grid}"
            )
        batch = grids.shape[0]
        per_row = max(
            1, len(self.program.reads) * self.n_outputs * 8
        )
        chunk = max(1, BATCH_WORKING_SET_BYTES // per_row)
        if batch <= chunk:
            return self._run_chunk(grids)
        out = np.empty((batch, self.n_outputs), dtype=np.float64)
        for start in range(0, batch, chunk):
            piece = grids[start:start + chunk]
            out[start:start + piece.shape[0]] = self._run_chunk(piece)
        return out

    def _run_chunk(self, grids: np.ndarray) -> np.ndarray:
        batch = grids.shape[0]
        if self.program.mode == "box":
            values: List = [None] * len(self.program.reads)
            for slot in self._slot_order:
                values[slot] = grids[
                    (slice(None),) + self._slices[slot]
                ]
        elif self._gather is not None:
            flat = grids.reshape(batch, -1)
            values = [None] * len(self.program.reads)
            for slot in self._slot_order:
                values[slot] = flat[:, self._gather[slot]]
        else:
            return self._run_gather_chunked(grids)
        out = np.asarray(self._replay(values), dtype=np.float64)
        if out.ndim == 0:  # constant-folded result (defensive)
            out = np.broadcast_to(out, (batch, self.n_outputs))
        return np.ascontiguousarray(
            out.reshape(batch, -1), dtype=np.float64
        )

    def _run_gather_chunked(self, grids: np.ndarray) -> np.ndarray:
        """Replay fixed-size point chunks against the flat base row.

        Each chunk rebuilds its per-read index tables from one slice
        of ``_gather_base`` — the working set is ``reads x chunk``
        instead of ``reads x points``.  Every output element sees the
        same ufunc ops on the same operands as the eager table, so
        chunking cannot change a bit.
        """
        batch = grids.shape[0]
        flat = grids.reshape(batch, -1)
        reads = self.program.reads
        out = np.empty((batch, self.n_outputs), dtype=np.float64)
        for start in range(0, self.n_outputs, GATHER_CHUNK_POINTS):
            stop = min(start + GATHER_CHUNK_POINTS, self.n_outputs)
            base = self._gather_base[start:stop]
            values: List = [None] * len(reads)
            for slot in self._slot_order:
                values[slot] = flat[:, base + reads[slot].flat]
            piece = np.asarray(
                self._replay(values), dtype=np.float64
            )
            if piece.ndim == 0:  # constant-folded (defensive)
                piece = np.broadcast_to(
                    piece, (batch, stop - start)
                )
            out[:, start:stop] = piece.reshape(batch, -1)
        return out

    #: opcode -> ufunc for the binary stack ops.  Each is the exact
    #: ufunc the plain operator dispatches to (``a + b`` IS
    #: ``np.add(a, b)``), so writing through ``out=`` cannot change a
    #: single bit of the result — it only changes where it lands.
    _BINARY_UFUNCS = {
        "add": np.add,
        "sub": np.subtract,
        "mul": np.multiply,
        "div": np.true_divide,
        "min": np.minimum,
        "max": np.maximum,
    }

    def _replay(self, values: List[np.ndarray]):
        """Run the stack program with ``evaluate``'s exact op set.

        Array temporaries are recycled in place: a binary op whose
        operand is already a scratch buffer owned by this call writes
        its result over that operand (``out=``) instead of allocating
        a fresh output-sized array per op.  On cache-sized grids this
        keeps one hot buffer resident instead of streaming a new
        allocation through memory for every op (~3x on the RICIAN
        chain).  Scratch buffers are per call, never pooled across
        calls, so returned rows are always freshly owned memory.
        Scalar-only arithmetic stays in plain Python, exactly like
        :func:`repro.stencil.expr.evaluate`.
        """
        stack: List = []
        owned: List[bool] = []  # parallel: is stack[i] our scratch?
        ufuncs = self._BINARY_UFUNCS
        for op in self.program.ops:
            kind = op["op"]
            if kind == "read":
                stack.append(values[op["ref"]])
                owned.append(False)
            elif kind == "const":
                stack.append(op["value"])
                owned.append(False)
            elif kind in ufuncs:
                r = stack.pop()
                r_owned = owned.pop()
                left = stack[-1]
                if not (
                    isinstance(left, np.ndarray)
                    or isinstance(r, np.ndarray)
                ):
                    # scalar op scalar: Python float semantics, as in
                    # the interpreted evaluator.
                    if kind == "add":
                        stack[-1] = left + r
                    elif kind == "sub":
                        stack[-1] = left - r
                    elif kind == "mul":
                        stack[-1] = left * r
                    elif kind == "div":
                        stack[-1] = left / r
                    else:
                        # np.minimum/np.maximum even on scalars — the
                        # interpreted evaluator's NaN propagation.
                        stack[-1] = ufuncs[kind](left, r)
                    continue
                out = left if owned[-1] else (r if r_owned else None)
                if out is None:
                    stack[-1] = ufuncs[kind](left, r)
                else:
                    stack[-1] = ufuncs[kind](left, r, out=out)
                owned[-1] = True
            elif kind == "neg":
                v = stack[-1]
                if isinstance(v, np.ndarray):
                    stack[-1] = (
                        np.negative(v, out=v) if owned[-1]
                        else np.negative(v)
                    )
                    owned[-1] = True
                else:
                    stack[-1] = -v
            elif kind == "abs":
                v = stack[-1]
                if isinstance(v, np.ndarray):
                    stack[-1] = (
                        np.absolute(v, out=v) if owned[-1]
                        else np.absolute(v)
                    )
                    owned[-1] = True
                else:
                    stack[-1] = abs(v)
            elif kind == "sqrt":
                v = stack[-1]
                if isinstance(v, np.ndarray):
                    stack[-1] = (
                        np.sqrt(v, out=v) if owned[-1]
                        else np.sqrt(v)
                    )
                    owned[-1] = True
                else:
                    stack[-1] = math.sqrt(v)
            else:  # pragma: no cover - validate_program rejects these
                raise LoweringError(f"unknown opcode {kind!r}")
        return stack[-1]


@register_converter("numpy")
def convert(
    program: BufferProgram,
    gather_limit: int = GATHER_POINT_LIMIT,
    artifact_dir: Optional[str] = None,
) -> CompiledKernel:
    """Build the NumPy kernel for a (validated) buffer program.

    ``artifact_dir`` is part of the uniform converter-builder
    signature; the NumPy target has nothing to persist.
    """
    del artifact_dir
    return CompiledKernel(program, gather_limit=gather_limit)


def kernel_from_plan(
    plan,
    spec: Optional[StencilSpec] = None,
    gather_limit: int = GATHER_POINT_LIMIT,
    gather_hard_limit: int = GATHER_HARD_LIMIT,
) -> Tuple[CompiledKernel, dict]:
    """Lower a cached plan end to end: ``(kernel, program_json)``.

    Re-runs bufferize unconditionally; when the plan carries a stored
    sidecar program the fresh lowering must match it exactly, otherwise
    the sidecar is corrupt and :class:`ProgramMismatchError` is raised
    (the caller evicts the plan and fails the request cleanly).
    """
    fresh = bufferize_plan(
        plan, spec=spec, gather_limit=gather_limit,
        gather_hard_limit=gather_hard_limit,
    )
    fresh_json = program_to_json(fresh)
    stored = getattr(plan, "buffer_program", None)
    if stored is not None:
        try:
            stored_program = program_from_json(stored)
            validate_program(stored_program)
            matches = program_to_json(stored_program) == fresh_json
        except (LoweringError, KeyError, TypeError, ValueError):
            matches = False
        if not matches:
            raise ProgramMismatchError(
                f"stored buffer program for plan "
                f"{plan.fingerprint[:12]} diverges from a fresh "
                "lowering of the cached spec"
            )
    return convert(fresh, gather_limit=gather_limit), fresh_json
