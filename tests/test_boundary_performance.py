"""Tests for boundary handling and the analytic performance model."""

import numpy as np
import pytest

from repro.flow.performance import predict, validate_model
from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.stencil.boundary import (
    pad_grid,
    pad_spec,
    padding_amounts,
    run_with_boundary,
    simulate_with_boundary,
)
from repro.stencil.golden import make_input, run_golden
from repro.stencil.kernels import BICUBIC, DENOISE, PAPER_BENCHMARKS

from conftest import SMALL_GRIDS, small_spec


class TestPadding:
    def test_padding_amounts_symmetric_window(self):
        assert padding_amounts(DENOISE) == ((1, 1), (1, 1))

    def test_padding_amounts_forward_window(self):
        # BICUBIC reaches only forward: no leading padding needed.
        assert padding_amounts(BICUBIC) == ((0, 2), (0, 2))

    def test_pad_spec_covers_grid(self):
        spec = small_spec(DENOISE)
        padded = pad_spec(spec)
        assert padded.iteration_domain.count() == (
            spec.grid[0] * spec.grid[1]
        )

    def test_pad_grid_edge_mode(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        padded = pad_grid(spec, grid, mode="edge")
        assert padded.shape == (
            spec.grid[0] + 2,
            spec.grid[1] + 2,
        )
        assert padded[0, 1] == grid[0, 0]
        assert padded[1, 1] == grid[0, 0]

    def test_pad_grid_constant_mode(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        padded = pad_grid(
            spec, grid, mode="constant", constant_value=7.0
        )
        assert padded[0, 0] == 7.0

    def test_invalid_mode(self):
        spec = small_spec(DENOISE)
        with pytest.raises(ValueError):
            pad_grid(spec, make_input(spec), mode="wrap")

    def test_wrong_shape(self):
        spec = small_spec(DENOISE)
        with pytest.raises(ValueError):
            pad_grid(spec, np.zeros((2, 2)))


class TestFullSizeOutput:
    def test_output_has_input_shape(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        out = run_with_boundary(spec, grid, mode="edge")
        assert out.shape == grid.shape

    def test_interior_matches_unpadded(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        full = run_with_boundary(spec, grid, mode="edge")
        interior = run_golden(spec, grid)
        lo = spec.iteration_domain.lows
        hi = spec.iteration_domain.highs
        assert np.allclose(
            full[lo[0] : hi[0] + 1, lo[1] : hi[1] + 1], interior
        )

    def test_simulated_full_size_matches_golden(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        golden = run_with_boundary(spec, grid, mode="reflect")
        simulated, stats = simulate_with_boundary(
            spec, grid, mode="reflect"
        )
        assert np.allclose(simulated, golden)
        assert stats.outputs_produced == grid.size


class TestPerformanceModel:
    @pytest.mark.parametrize(
        "bench", PAPER_BENCHMARKS, ids=lambda s: s.name
    )
    def test_model_exact_on_all_benchmarks(self, bench):
        spec = bench.with_grid(SMALL_GRIDS[bench.name])
        v = validate_model(spec)
        assert v.cycles_exact, (
            v.predicted.total_cycles,
            v.measured_total_cycles,
        )
        assert v.fill_exact

    def test_efficiency_below_one(self):
        spec = small_spec(DENOISE)
        p = predict(spec)
        assert 0 < p.outputs_per_stream_word < 1.0

    def test_prediction_row(self):
        row = predict(small_spec(DENOISE)).as_row()
        assert set(row) == {
            "stream_words",
            "iterations",
            "fill_cycles",
            "total_cycles",
            "efficiency",
        }

    def test_multi_segment_rejected(self):
        spec = small_spec(DENOISE)
        system = with_offchip_streams(
            build_memory_system(spec.analysis()), 2
        )
        with pytest.raises(ValueError):
            predict(spec, system)
