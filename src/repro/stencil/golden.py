"""Golden reference executor for stencil kernels.

Evaluates a :class:`~repro.stencil.spec.StencilSpec` directly with NumPy —
no buffering, no streaming — to produce the ground-truth output that the
cycle-level simulator must match (function correctness, Section 3.3.1).

Two paths:

* :func:`run_golden` — vectorized shifted-view evaluation for the default
  box iteration domains (fast; used on large grids).
* :func:`run_golden_pointwise` — per-iteration scalar evaluation for
  arbitrary polyhedral iteration domains (skewed grids); also used to
  cross-check the vectorized path in tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..polyhedral.domain import BoxDomain
from ..polyhedral.lexorder import Vector
from .expr import collect_refs, evaluate
from .spec import StencilSpec


def make_input(
    spec: StencilSpec, seed: int = 2014, dtype=np.float64
) -> np.ndarray:
    """Deterministic pseudo-random input grid for a spec."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 255.0, size=spec.grid).astype(dtype)


def run_golden(spec: StencilSpec, grid: np.ndarray) -> np.ndarray:
    """Vectorized golden output over a box iteration domain.

    Returns an array shaped like the iteration domain box; entry ``[0, 0]``
    corresponds to the lexicographically first iteration.
    """
    if tuple(grid.shape) != tuple(spec.grid):
        raise ValueError(
            f"input grid shape {grid.shape} does not match spec grid "
            f"{spec.grid}"
        )
    domain = spec.iteration_domain
    if not isinstance(domain, BoxDomain):
        raise TypeError(
            "vectorized golden execution needs a box iteration domain; "
            "use run_golden_pointwise for general polyhedra"
        )
    lows, highs = domain.lows, domain.highs
    env: Dict[Tuple[str, Vector], np.ndarray] = {}
    for ref in collect_refs(spec.expression):
        slices = tuple(
            slice(lo + d, hi + d + 1)
            for lo, hi, d in zip(lows, highs, ref.offset)
        )
        env[(ref.array, ref.offset)] = grid[slices]
    result = evaluate(spec.expression, env)
    return np.asarray(result)


def iter_outputs_pointwise(
    spec: StencilSpec, grid: np.ndarray
) -> Iterator[Tuple[Vector, float]]:
    """Yield ``(iteration_vector, output_value)`` in lexicographic order
    for an arbitrary polyhedral iteration domain."""
    refs = collect_refs(spec.expression)
    for i in spec.iteration_domain.iter_points():
        env = {}
        for ref in refs:
            h = tuple(a + b for a, b in zip(i, ref.offset))
            env[(ref.array, ref.offset)] = float(grid[h])
        yield i, float(evaluate(spec.expression, env))


def run_golden_pointwise(
    spec: StencilSpec, grid: np.ndarray
) -> List[Tuple[Vector, float]]:
    """Materialized pointwise golden output (small domains only)."""
    return list(iter_outputs_pointwise(spec, grid))


def golden_output_sequence(
    spec: StencilSpec, grid: np.ndarray
) -> List[float]:
    """Golden outputs as the flat lexicographic sequence the accelerator
    emits — the exact stream the simulator is compared against."""
    domain = spec.iteration_domain
    if isinstance(domain, BoxDomain):
        return [float(v) for v in run_golden(spec, grid).ravel()]
    return [v for _, v in iter_outputs_pointwise(spec, grid)]
