"""Round-trip property tests for the StencilSpec JSON wire format."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral.domain import (
    BoxDomain,
    DomainUnion,
    IntegerPolyhedron,
    domain_from_json,
    domain_to_json,
)
from repro.stencil.expr import expr_from_json, expr_to_json
from repro.stencil.golden import make_input, run_golden
from repro.stencil.kernels import skewed_denoise
from repro.stencil.spec import StencilSpec, StencilWindow


class TestPaperBenchmarkRoundTrip:
    def test_round_trip_identity(self, paper_spec):
        data = paper_spec.to_json()
        back = StencilSpec.from_json(json.loads(json.dumps(data)))
        assert back.name == paper_spec.name
        assert tuple(back.grid) == tuple(paper_spec.grid)
        assert back.window.offsets == paper_spec.window.offsets
        assert back.expression == paper_spec.expression
        assert back.input_array == paper_spec.input_array
        assert back.output_array == paper_spec.output_array
        # A second encode is byte-identical (canonical form).
        assert back.to_json() == data

    def test_round_trip_preserves_golden_output(self, small_benchmark):
        back = StencilSpec.from_json(small_benchmark.to_json())
        grid = make_input(small_benchmark)
        assert np.allclose(
            run_golden(back, grid), run_golden(small_benchmark, grid)
        )

    def test_default_domain_serializes_null(self, paper_spec):
        assert paper_spec.to_json()["iteration_domain"] is None

    def test_skewed_domain_round_trip(self):
        spec = skewed_denoise(rows=8, cols=10)
        data = spec.to_json()
        assert data["iteration_domain"]["kind"] == "polyhedron"
        back = StencilSpec.from_json(data)
        assert list(back.iteration_domain.iter_points()) == list(
            spec.iteration_domain.iter_points()
        )


class TestDomainJson:
    def test_box(self):
        box = BoxDomain((1, 2), (5, 7))
        back = domain_from_json(domain_to_json(box))
        assert isinstance(back, BoxDomain)
        assert back.lows == box.lows and back.highs == box.highs

    def test_polyhedron(self):
        tri = IntegerPolyhedron(
            coefficients=[(-1, 0), (0, -1), (1, 1)], bounds=[0, 0, 4]
        )
        back = domain_from_json(domain_to_json(tri))
        assert set(back.iter_points()) == set(tri.iter_points())

    def test_union(self):
        union = DomainUnion(
            [BoxDomain((0, 0), (1, 1)), BoxDomain((3, 3), (4, 4))]
        )
        back = domain_from_json(domain_to_json(union))
        assert isinstance(back, DomainUnion)
        assert list(back.iter_points()) == list(union.iter_points())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            domain_from_json({"kind": "moebius"})


class TestExprJson:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            expr_from_json({"kind": "quantum"})


@st.composite
def random_specs(draw):
    """Small random stencil specs: window, weights, grid."""
    dim = draw(st.integers(min_value=1, max_value=3))
    n_offsets = draw(st.integers(min_value=1, max_value=6))
    offsets = draw(
        st.lists(
            st.tuples(
                *[st.integers(min_value=-2, max_value=2)] * dim
            ),
            min_size=n_offsets,
            max_size=n_offsets,
            unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(
                min_value=-4.0,
                max_value=4.0,
                allow_nan=False,
                allow_infinity=False,
            ).filter(lambda w: w != 0.0),
            min_size=len(offsets),
            max_size=len(offsets),
        )
    )
    window = StencilWindow.from_offsets(offsets)
    mins, maxs = window.span()
    grid = tuple(
        (maxs[j] - mins[j] + 1) + draw(st.integers(2, 6))
        for j in range(dim)
    )
    from repro.stencil.expr import weighted_sum

    return StencilSpec(
        name="RANDOM",
        grid=grid,
        window=window,
        expression=weighted_sum(list(zip(offsets, weights))),
    )


@settings(max_examples=40, deadline=None)
@given(spec=random_specs())
def test_random_spec_round_trip(spec):
    text = json.dumps(spec.to_json(), sort_keys=True)
    back = StencilSpec.from_json(json.loads(text))
    assert back.window.offsets == spec.window.offsets
    assert back.expression == spec.expression
    assert tuple(back.grid) == tuple(spec.grid)
    assert json.dumps(back.to_json(), sort_keys=True) == text
