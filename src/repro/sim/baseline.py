"""Behavioural simulator of the *uniform* cyclic-partitioned baseline.

Models the conventional centralized design of [5]-[8] that the paper
contrasts against (Section 3.4): a reuse buffer split into ``N`` uniform
banks addressed by ``bank(h) = linear(h) mod N``, a centralized controller
that (a) fills the buffer from the off-chip stream — one element per
cycle through the single write port — and (b) issues the ``n`` window
reads of each iteration, serializing reads that collide on the same
bank's single remaining read port.

With a conflict-free plan the achieved II is 1 and outputs match the
golden reference; with fewer banks than the conflict-free minimum the II
degrades — the ablation measured by ``benchmarks/bench_ablation_ii.py``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..partitioning.base import UniformBankMapping, UniformPlan
from ..polyhedral.lexorder import Vector
from ..stencil.expr import evaluate
from ..stencil.spec import StencilSpec


@dataclass
class BaselineStats:
    """Timing statistics of a uniform-banked baseline run."""

    total_cycles: int
    outputs_produced: int
    conflict_iterations: int
    achieved_ii: float
    worst_iteration_cycles: int
    buffer_capacity_used: int


@dataclass
class BaselineResult:
    outputs: List[Tuple[Vector, float]]
    stats: BaselineStats

    def output_values(self) -> List[float]:
        return [v for _, v in self.outputs]


class UniformBankedSimulator:
    """Cycle-counting simulator of the centralized uniform design."""

    def __init__(
        self,
        spec: StencilSpec,
        mapping: UniformBankMapping,
        grid: np.ndarray,
        buffer_capacity: Optional[int] = None,
    ) -> None:
        if tuple(grid.shape) != tuple(spec.grid):
            raise ValueError("grid shape does not match spec")
        self.spec = spec
        self.mapping = mapping
        self.grid = grid
        analysis = spec.analysis()
        self._references = analysis.references
        self._stream_domain = analysis.stream_domain()
        # Default capacity: the live window (max reuse distance) plus the
        # element being produced — the minimum a correct centralized
        # controller must retain.
        self.buffer_capacity = (
            buffer_capacity
            if buffer_capacity is not None
            else analysis.minimum_total_buffer() + 1
        )

    def run(self) -> BaselineResult:
        stream = self._stream_domain.iter_points()
        live: Dict[Vector, float] = {}
        arrival: Dict[Vector, int] = {}
        order: List[Vector] = []  # insertion (lex) order for eviction
        evict_at = 0
        cycles = 0
        stream_done = False
        outputs: List[Tuple[Vector, float]] = []
        conflicts = 0
        worst = 1
        used = 0

        def fetch_one() -> bool:
            nonlocal stream_done, evict_at
            if stream_done:
                return False
            try:
                point = next(stream)
            except StopIteration:
                stream_done = True
                return False
            live[point] = float(self.grid[point])
            order.append(point)
            # Evict elements that fell out of the reuse window (the
            # expired-data half of the controller's job).
            while len(live) > self.buffer_capacity:
                victim = order[evict_at]
                evict_at += 1
                del live[victim]
            return True

        refs = self._references
        for i in self.spec.iteration_domain.iter_points():
            needed = [ref.access_index(i) for ref in refs]
            # Fill until every needed element has arrived (1 elem/cycle
            # through the write port).
            while any(h not in live for h in needed):
                if not fetch_one():
                    raise RuntimeError(
                        f"stream exhausted before iteration {i} was "
                        "satisfiable"
                    )
                cycles += 1
                used = max(used, len(live))
            # Issue the n reads; same-bank reads serialize.
            banks = Counter(
                self.mapping.bank_of(h) for h in needed
            )
            iteration_cycles = max(banks.values())
            worst = max(worst, iteration_cycles)
            if iteration_cycles > 1:
                conflicts += 1
            cycles += iteration_cycles
            # Read the banks for this iteration...
            env = {}
            for ref, h in zip(refs, needed):
                env[(ref.array, ref.offset)] = live[h]
            outputs.append(
                (i, float(evaluate(self.spec.expression, env)))
            )
            # ... then replace one expired element through the write
            # port (steady-state fill).
            if fetch_one():
                used = max(used, len(live))

        n_out = len(outputs)
        stats = BaselineStats(
            total_cycles=cycles,
            outputs_produced=n_out,
            conflict_iterations=conflicts,
            achieved_ii=cycles / n_out if n_out else 0.0,
            worst_iteration_cycles=worst,
            buffer_capacity_used=used,
        )
        return BaselineResult(outputs=outputs, stats=stats)


def run_uniform_plan(
    spec: StencilSpec, plan: UniformPlan, grid: np.ndarray
) -> BaselineResult:
    """Convenience wrapper: simulate a uniform partitioning plan."""
    return UniformBankedSimulator(spec, plan.mapping, grid).run()


def run_forced_bank_count(
    spec: StencilSpec, num_banks: int, grid: np.ndarray
) -> BaselineResult:
    """Ablation: run the baseline with a *forced* uniform bank count
    (possibly below the conflict-free minimum) and watch the II."""
    from ..partitioning.cyclic import _row_major_strides

    extents = spec.analysis().stream_domain().shape
    mapping = UniformBankMapping(
        num_banks=num_banks,
        weights=_row_major_strides(extents),
        padded_extents=extents,
        original_extents=extents,
    )
    return UniformBankedSimulator(spec, mapping, grid).run()
