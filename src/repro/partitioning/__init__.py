"""Memory-partitioning schemes: the paper's non-uniform chain plus the
uniform cyclic baselines it is evaluated against."""

from .base import (
    BankSpec,
    PartitioningInfeasibleError,
    PartitionPlan,
    UniformBankMapping,
    UniformPlan,
)
from .cyclic import (
    bank_count_vs_row_size,
    is_conflict_free,
    linear_offsets,
    minimum_banks_linear,
    pairwise_differences,
    plan_cyclic,
)
from .gmp import GmpCandidate, padding_candidates, plan_gmp, search_gmp
from .nonuniform import (
    DeadlockConditionError,
    NonUniformPlan,
    OptimalityError,
    ReuseFifoSpec,
    check_deadlock_conditions,
    check_optimality,
    pairwise_deadlock_analysis,
    plan_nonuniform,
    table2_rows,
    validate_plan,
)
from .proof import (
    PairProofResult,
    check_all_pairs,
    check_ordered_offsets,
    check_pair,
    is_deadlock_free,
)
from .verify import (
    ConflictReport,
    measure_ii_for_bank_count,
    scan_conflicts,
    verify_uniform_plan,
)

__all__ = [
    "BankSpec",
    "ConflictReport",
    "DeadlockConditionError",
    "GmpCandidate",
    "NonUniformPlan",
    "OptimalityError",
    "PairProofResult",
    "PartitionPlan",
    "PartitioningInfeasibleError",
    "ReuseFifoSpec",
    "UniformBankMapping",
    "UniformPlan",
    "bank_count_vs_row_size",
    "check_all_pairs",
    "check_deadlock_conditions",
    "check_ordered_offsets",
    "check_pair",
    "check_optimality",
    "is_conflict_free",
    "is_deadlock_free",
    "linear_offsets",
    "measure_ii_for_bank_count",
    "minimum_banks_linear",
    "padding_candidates",
    "pairwise_deadlock_analysis",
    "pairwise_differences",
    "plan_cyclic",
    "plan_gmp",
    "plan_nonuniform",
    "scan_conflicts",
    "table2_rows",
    "validate_plan",
    "verify_uniform_plan",
]
