"""Unit tests for the weighted canary sampler and its executor policy.

The sampler is deterministic (a credit accumulator, no RNG), so the
weighting distribution is asserted *exactly*: hot fingerprints —
freshly compiled or freshly disk-promoted — are validated
``hot_weight`` times as often per request as cold ones.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (
    CanarySampler,
    CompileOptions,
    PlanCache,
    Scheduler,
    fingerprint,
)
from repro.service.executor import ExecutorBase
from repro.service.scheduler import WorkItem
from repro.stencil import DENOISE

from conftest import small_spec


def fire_count(sampler, fp, n):
    return sum(sampler.should_validate(fp) for _ in range(n))


class TestCanarySampler:
    def test_cold_traffic_samples_at_floor(self):
        sampler = CanarySampler(every=4)
        assert fire_count(sampler, "cold", 100) == 25

    def test_hot_traffic_samples_hot_weight_times_as_often(self):
        """Exactly hot_weight x the cold rate over the hot window."""
        cold = CanarySampler(every=4, hot_weight=4.0, hot_window=100)
        hot = CanarySampler(every=4, hot_weight=4.0, hot_window=100)
        hot.note_fresh("fp", "compiled")
        cold_fires = fire_count(cold, "fp", 100)
        hot_fires = fire_count(hot, "fp", 100)
        assert cold_fires == 25
        assert hot_fires == 100  # +4 credit per call, fires every call
        assert hot_fires == 4 * cold_fires

    def test_hot_status_decays_after_window(self):
        sampler = CanarySampler(every=8, hot_weight=4.0, hot_window=4)
        sampler.note_fresh("fp", "compiled")
        # 4 hot executions contribute 16 credit -> exactly 2 fires.
        assert fire_count(sampler, "fp", 4) == 2
        # Decayed: back to the 1-in-8 floor.
        assert fire_count(sampler, "fp", 80) == 10

    def test_hot_weight_applies_per_fingerprint(self):
        sampler = CanarySampler(every=4, hot_weight=4.0, hot_window=50)
        sampler.note_fresh("hot", "promoted")
        assert sampler.should_validate("hot")  # 4 credit -> fires
        # A different, cold fingerprint accrues only 1 per call.
        assert fire_count(sampler, "cold", 3) == 0

    def test_carry_is_capped_to_one_pending_fire(self):
        """A single hot burst may bank at most one future validation."""
        sampler = CanarySampler(every=2, hot_weight=10.0, hot_window=8)
        sampler.note_fresh("fp", "compiled")
        assert sampler.should_validate("fp")  # +10, fires, carry <= 2
        sampler._hot.clear()  # go cold immediately
        # 4 cold calls fire twice at the 1-in-2 floor; the burst may
        # bank at most one extra (uncapped credit would make all 4
        # fire).
        assert fire_count(sampler, "fp", 4) == 3

    def test_disabled_when_every_is_zero(self):
        sampler = CanarySampler(every=0)
        sampler.note_fresh("fp", "compiled")
        assert not any(
            sampler.should_validate("fp") for _ in range(50)
        )

    def test_note_fresh_counts_reasons(self):
        registry = MetricsRegistry()
        sampler = CanarySampler(every=4, registry=registry)
        sampler.note_fresh("a", "compiled")
        sampler.note_fresh("b", "compiled")
        sampler.note_fresh("c", "promoted")
        counters = registry.snapshot()["counters"]
        assert (
            counters['service_canary_fresh_total{reason="compiled"}']
            == 2
        )
        assert (
            counters['service_canary_fresh_total{reason="promoted"}']
            == 1
        )

    def test_hot_weight_validated(self):
        with pytest.raises(ValueError):
            CanarySampler(every=4, hot_weight=0.5)


class TestExecutorCanaryPolicy:
    def _executor(self, **kwargs):
        registry = MetricsRegistry()
        return (
            ExecutorBase(
                cache=PlanCache(),
                scheduler=Scheduler(registry=registry),
                registry=registry,
                validate_every=kwargs.pop("validate_every", 2),
                **kwargs,
            ),
            registry,
        )

    def _item(self, validate=None):
        spec = small_spec(DENOISE)
        options = CompileOptions()
        return WorkItem(
            request_id="r1",
            spec=spec,
            options=options,
            fingerprint=fingerprint(spec, options),
            seed=1,
            deadline=time.monotonic() + 30.0,
            slot=None,
            validate=validate,
        )

    def test_explicit_validate_overrides_sampling(self):
        executor, _ = self._executor(validate_every=0)
        assert executor._should_validate(self._item(validate=True))
        executor, _ = self._executor(validate_every=1)
        assert not executor._should_validate(self._item(validate=False))

    def test_cell_limit_skips_and_counts(self):
        executor, registry = self._executor(canary_cell_limit=10)
        assert not executor._should_validate(self._item())  # 192 cells
        counters = registry.snapshot()["counters"]
        assert counters["service_validation_skipped_total"] == 1

    def test_fresh_compile_biases_sampling(self):
        executor, _ = self._executor(
            validate_every=4, canary_hot_weight=4.0
        )
        item = self._item()
        executor._note_cache_outcome(item.fingerprint, "miss")
        assert executor._should_validate(item)  # hot: fires first call

    def test_disk_promotion_biases_sampling(self):
        executor, registry = self._executor(
            validate_every=4, canary_hot_weight=4.0
        )
        item = self._item()
        executor._note_cache_outcome(item.fingerprint, "disk")
        assert executor._should_validate(item)
        counters = registry.snapshot()["counters"]
        assert (
            counters['service_canary_fresh_total{reason="promoted"}']
            == 1
        )

    def test_memory_hit_stays_cold(self):
        executor, _ = self._executor(validate_every=4)
        item = self._item()
        executor._note_cache_outcome(item.fingerprint, "hit")
        fires = sum(
            executor._should_validate(self._item()) for _ in range(8)
        )
        assert fires == 2  # the plain 1-in-4 floor
