"""Extension — bandwidth sensitivity of the broken chain.

Appendix 9.4's trade-off presumes the extra off-chip accesses per cycle
exist.  This bench runs the 3-segment DENOISE chain against a shared
off-chip bus of varying width (with a DRAM row-activation model) and
shows throughput degrading gracefully when the bus is narrower than the
segment count — and matching the ideal when it is wide enough.
"""

import numpy as np

from conftest import emit

from repro.flow.report import format_table
from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.sim.engine import ChainSimulator
from repro.sim.offchip import DramTimingModel, OffchipBus
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE

GRID = (20, 26)
SEGMENTS = 3


def bench_bus_width_sweep(benchmark):
    spec = DENOISE.with_grid(GRID)
    grid = make_input(spec)
    golden = golden_output_sequence(spec, grid)

    def sweep():
        rows = []
        for width in (1, 2, 3, 4):
            bus = OffchipBus(words_per_cycle=width)
            system = with_offchip_streams(
                build_memory_system(spec.analysis()), SEGMENTS
            )
            result = ChainSimulator(
                spec,
                system,
                grid,
                bus=bus,
                dram=DramTimingModel(row_miss_penalty=0),
            ).run()
            assert np.allclose(result.output_values(), golden)
            rows.append(
                {
                    "bus_words_per_cycle": width,
                    "segments": SEGMENTS,
                    "cycles": result.stats.total_cycles,
                    "bus_words_total": bus.total_words,
                }
            )
        return rows

    rows = benchmark(sweep)
    cycles = [r["cycles"] for r in rows]
    assert cycles == sorted(cycles, reverse=True)
    # Enough bandwidth -> no further speedup.
    assert cycles[3] >= cycles[2] - 2
    emit(
        f"Bandwidth sensitivity — {SEGMENTS}-segment DENOISE chain on "
        "a shared off-chip bus",
        format_table(rows),
    )


def bench_dram_row_stalls(benchmark):
    """Row-activation stalls stretch the run by the expected factor."""
    spec = DENOISE.with_grid(GRID)
    grid = make_input(spec)

    def run():
        dram = DramTimingModel(
            row_words=64, row_miss_penalty=8, initial_latency=20
        )
        return ChainSimulator(
            spec,
            build_memory_system(spec.analysis()),
            grid,
            dram=dram,
        ).run()

    result = benchmark(run)
    ideal_cycles = 20 * 26  # stream length at 1 word/cycle
    assert result.stats.total_cycles > ideal_cycles
    assert np.allclose(
        result.output_values(), golden_output_sequence(spec, grid)
    )
