"""Unit tests for the individual simulation modules."""

import pytest

from repro.polyhedral.access import ArrayReference
from repro.polyhedral.domain import BoxDomain
from repro.sim.modules import SimFifo, SimFilter, SimKernel
from repro.sim.stream import DataStream
from repro.stencil.expr import Ref


class TestSimFifo:
    def test_push_pop_fifo_order(self):
        f = SimFifo(0, 3)
        f.push(((0, 0), 1.0))
        f.push(((0, 1), 2.0))
        assert f.pop() == ((0, 0), 1.0)
        assert f.pop() == ((0, 1), 2.0)

    def test_capacity_enforced(self):
        f = SimFifo(0, 1)
        f.push(((0, 0), 1.0))
        assert f.full
        with pytest.raises(OverflowError):
            f.push(((0, 1), 2.0))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            SimFifo(0, 1).pop()

    def test_peek(self):
        f = SimFifo(0, 2)
        f.push(((0, 0), 5.0))
        assert f.peek() == ((0, 0), 5.0)
        assert len(f) == 1  # peek does not consume
        with pytest.raises(IndexError):
            SimFifo(1, 1).peek()

    def test_statistics(self):
        f = SimFifo(0, 4)
        for k in range(3):
            f.push(((0, k), float(k)))
        f.pop()
        assert f.max_occupancy == 3
        assert f.total_pushes == 3

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimFifo(0, 0)


class TestSimFilter:
    def _filter(self):
        ref = ArrayReference("A", (0, 0))
        domain = BoxDomain((1, 1), (2, 2))  # 4 points
        return SimFilter(0, ref, domain)

    def test_forwards_domain_points(self):
        flt = self._filter()
        flt.accept(((1, 1), 7.0))
        assert flt.status == SimFilter.FORWARDING
        assert flt.pending == ((1, 1), 7.0)
        assert flt.forwarded == 1

    def test_discards_non_domain_points(self):
        flt = self._filter()
        flt.accept(((0, 0), 7.0))
        assert flt.status == SimFilter.DISCARDING
        assert flt.pending is None
        assert flt.discarded == 1

    def test_not_ready_while_pending(self):
        flt = self._filter()
        flt.accept(((1, 1), 7.0))
        assert not flt.ready
        with pytest.raises(RuntimeError):
            flt.accept(((1, 2), 8.0))

    def test_stall_accounting(self):
        flt = self._filter()
        flt.accept(((1, 1), 7.0))
        flt.mark_no_input()
        assert flt.status == SimFilter.STALLED
        assert flt.stalled_cycles == 1

    def test_idle_when_empty_and_no_input(self):
        flt = self._filter()
        flt.mark_no_input()
        assert flt.status == SimFilter.IDLE

    def test_take_pending(self):
        flt = self._filter()
        flt.accept(((1, 1), 7.0))
        assert flt.take_pending() == ((1, 1), 7.0)
        assert flt.ready
        with pytest.raises(RuntimeError):
            flt.take_pending()

    def test_done_after_full_domain(self):
        flt = self._filter()
        for p in [(1, 1), (1, 2), (2, 1), (2, 2)]:
            flt.accept((p, 0.0))
            flt.take_pending()
        assert flt.done


class TestSimKernel:
    def _kernel(self, latency=2):
        refs = [
            ArrayReference("A", (0, 0)),
            ArrayReference("A", (0, 1)),
        ]
        expr = Ref((0, 0)) + Ref((0, 1))
        return refs, SimKernel(refs, expr, latency=latency)

    def _loaded_filters(self, refs, iteration=(3, 3), values=(1.0, 2.0)):
        filters = []
        for ref, v in zip(refs, values):
            flt = SimFilter(
                ref.offset[1], ref, BoxDomain((0, 0), (9, 9))
            )
            # Load the pending slot directly: these tests exercise the
            # kernel, not the filter's counter sequence.
            flt.pending = (ref.access_index(iteration), v)
            filters.append(flt)
        return filters

    def test_fires_when_all_ports_valid(self):
        refs, kernel = self._kernel()
        filters = self._loaded_filters(refs)
        assert kernel.try_fire(filters, cycle=10)
        out = kernel.outputs[0]
        assert out.iteration == (3, 3)
        assert out.value == 3.0
        assert out.issue_cycle == 10
        assert out.ready_cycle == 12

    def test_does_not_fire_with_missing_port(self):
        refs, kernel = self._kernel()
        filters = self._loaded_filters(refs)
        filters[1].take_pending()
        assert not kernel.try_fire(filters, cycle=1)
        assert kernel.outputs == []

    def test_inconsistent_ports_detected(self):
        refs, kernel = self._kernel()
        flt0 = SimFilter(0, refs[0], BoxDomain((0, 0), (9, 9)))
        flt1 = SimFilter(1, refs[1], BoxDomain((0, 0), (9, 9)))
        flt0.pending = ((3, 3), 1.0)  # iteration (3, 3)
        flt1.pending = ((9, 9), 2.0)  # iteration (9, 8) — mismatch
        with pytest.raises(AssertionError):
            kernel.try_fire([flt0, flt1], cycle=1)

    def test_negative_latency_rejected(self):
        refs, _ = self._kernel()
        with pytest.raises(ValueError):
            SimKernel(refs, Ref((0, 0)) + Ref((0, 1)), latency=-1)


class TestDataStream:
    def _stream(self, latency=0):
        import numpy as np

        grid = np.arange(12.0).reshape(3, 4)
        return DataStream(
            BoxDomain((0, 0), (2, 3)), grid, initial_latency=latency
        )

    def test_lexicographic_order(self):
        s = self._stream()
        points = []
        while not s.exhausted:
            points.append(s.pop()[0])
        assert points == sorted(points)
        assert len(points) == 12

    def test_values_from_grid(self):
        s = self._stream()
        point, value = s.pop()
        assert point == (0, 0)
        assert value == 0.0
        point, value = s.pop()
        assert value == 1.0

    def test_latency_blocks_availability(self):
        s = self._stream(latency=2)
        assert not s.available
        assert s.waiting
        s.tick()
        assert not s.available
        s.tick()
        assert s.available
        assert not s.waiting

    def test_pop_unavailable_raises(self):
        s = self._stream(latency=1)
        with pytest.raises(RuntimeError):
            s.pop()

    def test_elements_streamed_counter(self):
        s = self._stream()
        s.pop()
        s.pop()
        assert s.elements_streamed == 2

    def test_negative_latency_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            DataStream(
                BoxDomain((0,), (3,)),
                np.zeros(4),
                initial_latency=-1,
            )
