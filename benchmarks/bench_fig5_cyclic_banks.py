"""Fig 5 — the number of banks required by linear cyclic partitioning
[5] as the grid row size changes, for the constant 5-point DENOISE
window.

Paper shape: the count oscillates between 5 and 8 over the swept row
sizes even though the window never changes — the motivating weakness of
uniform partitioning.  Our non-uniform chain needs 4 banks at every row
size.
"""

from conftest import emit

from repro.flow.report import fig5_report, format_table
from repro.partitioning.nonuniform import plan_nonuniform
from repro.stencil.kernels import DENOISE

ROW_SIZES = range(1016, 1033)


def bench_fig5_row_size_sweep(benchmark):
    """Benchmark the sweep and verify the paper's 5..8 oscillation."""
    rows = benchmark(fig5_report, DENOISE, ROW_SIZES)

    banks = [r["banks"] for r in rows]
    assert min(banks) == 5
    assert max(banks) == 8
    assert len(set(banks)) >= 3  # genuinely oscillates

    ours = plan_nonuniform(
        DENOISE.with_grid((768, 1024)).analysis()
    ).num_banks
    emit(
        "Fig 5 — banks vs grid row size under linear cyclic "
        "partitioning [5] (constant 5-point window)",
        format_table(rows)
        + f"\nour non-uniform chain at any row size: {ours} banks",
    )


def bench_fig5_ours_insensitive_to_row_size(benchmark):
    """Our bank count never changes with the grid shape."""

    def plan_all():
        return [
            plan_nonuniform(
                DENOISE.with_grid((768, w)).analysis()
            ).num_banks
            for w in ROW_SIZES
        ]

    counts = benchmark(plan_all)
    assert set(counts) == {4}
