"""RTL-level simulation core.

The behavioural simulator (:mod:`repro.sim`) tags every data element
with its grid point — convenient, but not what the hardware does.  At
RTL, data is *raw values* and all control comes from the Fig 10
counters.  This package elaborates the generated memory system into
register-level modules (domain counters with carry chains, equality
comparators, occupancy-counted FIFOs) and simulates them cycle by
cycle, reproducing the paper's "insights gained from RTL simulation"
(Section 3.4) with the real control mechanism.

The execution model is synchronous with combinational ready/valid
resolved by a fixed downstream-to-upstream evaluation order (the
levelization an RTL simulator would derive from the handshake chain),
then a commit phase for registers.  A VCD-style waveform of every
declared signal can be dumped for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Signal:
    """A named scalar signal with current and staged next value."""

    def __init__(self, name: str, init: float = 0) -> None:
        self.name = name
        self.value = init
        self._next: Optional[float] = None

    def stage(self, value: float) -> None:
        """Stage a registered update (applied at commit)."""
        self._next = value

    def commit(self) -> None:
        if self._next is not None:
            self.value = self._next
            self._next = None

    def __repr__(self) -> str:
        return f"Signal({self.name}={self.value})"


class RtlModule:
    """Base class: evaluate combinationally, then commit registers."""

    name: str = "module"

    def evaluate(self) -> None:
        """One combinational evaluation this cycle (may fire)."""

    def commit(self) -> None:
        """Apply registered updates."""

    def signals(self) -> Iterable[Signal]:
        """Signals this module exposes for tracing."""
        return ()


@dataclass
class WaveformDump:
    """A tiny VCD-style value-change dump (text, one file)."""

    signals: List[Signal] = field(default_factory=list)
    changes: List[Tuple[int, str, float]] = field(default_factory=list)
    _last: Dict[str, float] = field(default_factory=dict)

    def watch(self, *signals: Signal) -> None:
        self.signals.extend(signals)

    def sample(self, cycle: int) -> None:
        for sig in self.signals:
            previous = self._last.get(sig.name)
            if previous != sig.value:
                self.changes.append((cycle, sig.name, sig.value))
                self._last[sig.name] = sig.value

    def render(self) -> str:
        """A VCD-flavoured dump: declarations then value changes."""
        ids = {
            sig.name: f"s{k}" for k, sig in enumerate(self.signals)
        }
        lines = ["$timescale 1ns $end", "$scope module chain $end"]
        for sig in self.signals:
            lines.append(
                f"$var wire 32 {ids[sig.name]} {sig.name} $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        current = None
        for cycle, name, value in self.changes:
            if cycle != current:
                lines.append(f"#{cycle}")
                current = cycle
            lines.append(f"{value} {ids[name]}")
        return "\n".join(lines)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())


class RtlSimulator:
    """Runs a list of modules in fixed evaluation order."""

    def __init__(
        self,
        modules: List[RtlModule],
        dump: Optional[WaveformDump] = None,
    ) -> None:
        self.modules = modules
        self.dump = dump
        self.cycle = 0
        if dump is not None:
            for module in modules:
                dump.watch(*module.signals())

    def step(self) -> None:
        self.cycle += 1
        for module in self.modules:
            module.evaluate()
        for module in self.modules:
            module.commit()
        if self.dump is not None:
            self.dump.sample(self.cycle)

    def run_until(self, done, max_cycles: int) -> int:
        """Step until ``done()`` returns True; returns cycle count."""
        while not done():
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"RTL simulation exceeded {max_cycles} cycles"
                )
            self.step()
        return self.cycle


class DomainCounter:
    """A hardware counter iterating a box domain in lex order.

    This is the register + carry-chain structure a synthesized Fig 10
    counter has: one register per dimension, incremented innermost
    first with carries outward, wrapping each dimension at its bound.
    General polyhedral domains additionally gate values through a
    membership predicate (the polyhedron's inequality comparators).
    """

    def __init__(self, domain, name: str) -> None:
        from ..polyhedral.domain import BoxDomain

        self.name = name
        self._domain = domain
        lo, hi = domain.bounding_box()
        self._lo = lo
        self._hi = hi
        self._is_box = isinstance(domain, BoxDomain)
        self.regs = [
            Signal(f"{name}_d{k}", lo[k]) for k in range(len(lo))
        ]
        self.done = Signal(f"{name}_done", 0)
        if not self._is_box and not domain.contains(self.current()):
            self._advance_to_member()

    def current(self) -> Tuple[int, ...]:
        return tuple(int(r.value) for r in self.regs)

    def _increment_once(self) -> bool:
        """One +1 step over the bounding box; True on overflow."""
        for k in range(len(self.regs) - 1, -1, -1):
            if self.regs[k].value < self._hi[k]:
                self.regs[k].value += 1
                return False
            self.regs[k].value = self._lo[k]
        return True

    def _advance_to_member(self) -> None:
        """Skip non-member bounding-box points (the membership
        comparator gating of general polyhedra)."""
        guard = 0
        while not self._domain.contains(self.current()):
            if self._increment_once():
                self.done.value = 1
                return
            guard += 1
            if guard > 10_000_000:
                raise RuntimeError("domain counter failed to advance")

    def advance(self) -> None:
        """Move to the next domain point (combinational + commit in
        one, as the counter only advances once per cycle)."""
        if self.done.value:
            return
        if self._increment_once():
            self.done.value = 1
            return
        if not self._is_box:
            self._advance_to_member()

    def signals(self) -> List[Signal]:
        return list(self.regs) + [self.done]
