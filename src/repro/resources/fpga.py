"""FPGA device models (the paper targets a Virtex-7 XC7VX485T).

Capacities follow the Xilinx Virtex-7 data sheet; BRAM is counted in
18 Kb units (one RAMB36 = two RAMB18).  The model also encodes the block
RAM aspect-ratio table used to cost memories of a given depth x width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

#: Usable bits in one 18 Kb block RAM (data bits; parity excluded for a
#: conservative estimate at 32-bit data).
BRAM18_BITS = 18 * 1024
#: Maximum depth of one RAMB18 at 18-bit width (1024 x 18); wider data
#: cascades horizontally.
BRAM18_MAX_WIDTH = 18


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity envelope of one FPGA part."""

    name: str
    luts: int
    flip_flops: int
    slices: int
    bram_18k: int
    dsp48: int

    def utilization(self, usage: "ResourceUsage") -> Dict[str, float]:
        """Fractional utilization per resource class."""
        return {
            "bram_18k": usage.bram_18k / self.bram_18k,
            "slices": usage.slices / self.slices,
            "dsp": usage.dsp / self.dsp48,
        }

    def fits(self, usage: "ResourceUsage") -> bool:
        return all(v <= 1.0 for v in self.utilization(usage).values())


#: The paper's target device (Virtex-7 XC7VX485T, speed grade -2).
XC7VX485T = FpgaDevice(
    name="XC7VX485T",
    luts=303_600,
    flip_flops=607_200,
    slices=75_900,
    bram_18k=2_060,
    dsp48=2_800,
)


@dataclass(frozen=True)
class ResourceUsage:
    """One design's resource vector (Table 5 columns)."""

    bram_18k: int = 0
    slices: int = 0
    dsp: int = 0
    lut: int = 0
    ff: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            bram_18k=self.bram_18k + other.bram_18k,
            slices=self.slices + other.slices,
            dsp=self.dsp + other.dsp,
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
        )

    def scaled(self, factor: int) -> "ResourceUsage":
        return ResourceUsage(
            bram_18k=self.bram_18k * factor,
            slices=self.slices * factor,
            dsp=self.dsp * factor,
            lut=self.lut * factor,
            ff=self.ff * factor,
        )


def bram18_for_memory(depth: int, width_bits: int) -> int:
    """Number of RAMB18 primitives for a ``depth x width`` memory.

    Models the Xilinx aspect-ratio table: each RAMB18 provides 18 Kb with
    a maximum configured width of 18 bits (wider words cascade several
    RAMB18 side by side, each covering up to 1024-deep x 18-bit).
    """
    if depth <= 0 or width_bits <= 0:
        raise ValueError("depth and width must be positive")
    columns = math.ceil(width_bits / BRAM18_MAX_WIDTH)
    depth_per_column = BRAM18_BITS // min(width_bits, BRAM18_MAX_WIDTH)
    # A column of RAMB18s covers depth in units of its configured depth.
    rows = math.ceil(depth / max(1, depth_per_column))
    return columns * rows


def slices_for_lut_ff(lut: int, ff: int) -> int:
    """Slice estimate from LUT/FF counts (4 LUTs + 8 FFs per 7-series
    slice, at a typical 70 % packing efficiency)."""
    if lut < 0 or ff < 0:
        raise ValueError("negative resource count")
    packed = max(math.ceil(lut / 4), math.ceil(ff / 8))
    return math.ceil(packed / 0.7)
