"""Cycle-level behavioural models of the Fig 7 chain modules.

Every module is autonomous, exactly as in the paper: a *data filter*
holds at most one pending output for the computation kernel and only
pulls a new element when that slot is free; a *reuse FIFO* applies
backpressure through its capacity; a *data-path splitter* fires only when
its upstream has data and **both** downstream sinks (next FIFO + its
filter) can accept.  The kernel consumes all ``n`` filter outputs in one
cycle when they are simultaneously valid.

There is no centralized controller — buffer filling (Table 3) and the
skewed-grid reuse adaptation (Fig 9) emerge from these local rules, which
is precisely the paper's Section 3.4 observation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from ..polyhedral.access import ArrayReference
from ..polyhedral.domain import IntegerPolyhedron
from ..polyhedral.lexorder import Vector

#: One in-flight data element: its grid point and its value.
Element = Tuple[Vector, float]


class SimFifo:
    """A reuse FIFO with finite capacity and occupancy statistics."""

    def __init__(self, fifo_id: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("FIFO capacity must be >= 1")
        self.fifo_id = fifo_id
        self.capacity = capacity
        self._queue: Deque[Element] = deque()
        self.max_occupancy = 0
        self.total_pushes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, element: Element) -> None:
        if self.full:
            raise OverflowError(
                f"push to full FIFO {self.fifo_id} "
                f"(capacity {self.capacity})"
            )
        self._queue.append(element)
        self.total_pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def pop(self) -> Element:
        if self.empty:
            raise IndexError(f"pop from empty FIFO {self.fifo_id}")
        return self._queue.popleft()

    def peek(self) -> Element:
        if self.empty:
            raise IndexError(f"peek at empty FIFO {self.fifo_id}")
        return self._queue[0]


class SimFilter:
    """A data filter (Fig 10): input counter + output counter + switch.

    The input counter is implicit in the arriving element's grid point
    (elements arrive in the stream's lexicographic order); the output
    counter is an iterator over the reference's data domain ``D_Ax``.
    When the arriving point matches the output counter, the element is
    forwarded to the kernel port (the single-entry ``pending`` slot);
    otherwise it is discarded.  A filter whose pending slot is occupied
    is *stalled* and pulls nothing.
    """

    #: Per-cycle status codes (Table 3): forwarding / discarding /
    #: stalled / idle (no input available).
    FORWARDING = "f"
    DISCARDING = "d"
    STALLED = "s"
    IDLE = "."

    def __init__(
        self,
        filter_id: int,
        reference: ArrayReference,
        output_domain: IntegerPolyhedron,
    ) -> None:
        self.filter_id = filter_id
        self.reference = reference
        self._output_iter: Iterator[Vector] = output_domain.iter_points()
        self._next_output: Optional[Vector] = next(
            self._output_iter, None
        )
        self.pending: Optional[Element] = None
        self.status = self.IDLE
        self.forwarded = 0
        self.discarded = 0
        self.stalled_cycles = 0

    @property
    def ready(self) -> bool:
        """Can accept one element this cycle."""
        return self.pending is None

    @property
    def done(self) -> bool:
        """All elements of the output domain have been forwarded."""
        return self._next_output is None and self.pending is None

    def accept(self, element: Element) -> None:
        """Consume one upstream element (switch of Fig 10)."""
        if not self.ready:
            raise RuntimeError(
                f"filter {self.filter_id} accepted an element while "
                "stalled"
            )
        point, _ = element
        if self._next_output is not None and point == self._next_output:
            self.pending = element
            self._next_output = next(self._output_iter, None)
            self.forwarded += 1
            self.status = self.FORWARDING
        else:
            self.discarded += 1
            self.status = self.DISCARDING

    def mark_no_input(self) -> None:
        if self.pending is not None:
            self.status = self.STALLED
            self.stalled_cycles += 1
        else:
            self.status = self.IDLE

    def take_pending(self) -> Element:
        """Kernel-side consumption of the pending element."""
        if self.pending is None:
            raise RuntimeError(
                f"kernel consumed from filter {self.filter_id} with no "
                "pending data"
            )
        element = self.pending
        self.pending = None
        return element


@dataclass
class KernelOutput:
    """One produced output with its timing."""

    iteration: Vector
    value: float
    issue_cycle: int  # cycle the inputs were consumed
    ready_cycle: int  # issue + pipeline latency


class SimKernel:
    """The fully pipelined computation kernel (Fig 4 after transform).

    Consumes one element from every filter port in a single cycle when
    all are valid, checks that the ports are mutually consistent (all
    correspond to the same loop iteration — the function-correctness
    property of Section 3.3.1), evaluates the kernel expression, and
    emits the result ``latency`` cycles later.
    """

    def __init__(
        self,
        references: List[ArrayReference],
        expression,
        latency: int = 4,
    ) -> None:
        from ..stencil.expr import evaluate  # local to avoid cycles

        if latency < 0:
            raise ValueError("kernel latency must be >= 0")
        self._references = references
        self._expression = expression
        self._evaluate = evaluate
        self.latency = latency
        self.outputs: List[KernelOutput] = []
        self.consumed_iterations = 0

    def try_fire(self, filters: List[SimFilter], cycle: int) -> bool:
        """Fire if every port has valid data; returns True on fire."""
        if any(f.pending is None for f in filters):
            return False
        env: Dict[Tuple[str, Vector], float] = {}
        iteration: Optional[Vector] = None
        for ref, flt in zip(self._references, filters):
            point, value = flt.take_pending()
            derived = tuple(
                p - o for p, o in zip(point, ref.offset)
            )
            if iteration is None:
                iteration = derived
            elif iteration != derived:
                raise AssertionError(
                    "filter ports disagree on the loop iteration: "
                    f"{iteration} vs {derived} at port {flt.filter_id} "
                    f"({ref.label})"
                )
            env[(ref.array, ref.offset)] = value
        assert iteration is not None
        value = float(self._evaluate(self._expression, env))
        self.outputs.append(
            KernelOutput(
                iteration=iteration,
                value=value,
                issue_cycle=cycle,
                ready_cycle=cycle + self.latency,
            )
        )
        self.consumed_iterations += 1
        return True
