"""Boundary handling for full-size stencil outputs.

The paper's kernels iterate the grid *interior* (Fig 1's loop bounds),
so outputs shrink by the window span.  Real imaging pipelines usually
want same-size outputs; the standard technique is to pad the input so
the original grid becomes the interior of a larger one.  This module
provides the padding modes (edge clamp, mirror, constant) and the spec
transformation, keeping everything inside the existing polyhedral
machinery — the padded spec is an ordinary spec whose iteration domain
covers exactly one output per original grid point.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .spec import StencilSpec

#: Supported padding modes (NumPy pad-mode names).
PAD_MODES = ("edge", "reflect", "constant")


def padding_amounts(spec: StencilSpec) -> Tuple[Tuple[int, int], ...]:
    """Per-dimension (before, after) padding that turns the original
    grid into the interior of the padded one."""
    mins, maxs = spec.window.span()
    return tuple(
        (max(0, -lo), max(0, hi)) for lo, hi in zip(mins, maxs)
    )


def pad_spec(spec: StencilSpec) -> StencilSpec:
    """The same stencil on the padded grid; its iteration domain has
    exactly one point per original grid point.

    The iteration domain is pinned explicitly to the original grid's
    image inside the padded grid (one-sided windows would otherwise
    make the default interior over- or under-cover it).
    """
    from .spec import StencilSpec as _Spec

    pads = padding_amounts(spec)
    padded_grid = tuple(
        g + before + after
        for g, (before, after) in zip(spec.grid, pads)
    )
    from ..polyhedral.domain import BoxDomain

    domain = BoxDomain(
        tuple(before for before, _ in pads),
        tuple(
            before + g - 1
            for g, (before, _) in zip(spec.grid, pads)
        ),
    )
    padded = _Spec(
        name=spec.name,
        grid=padded_grid,
        window=spec.window,
        expression=spec.expression,
        input_array=spec.input_array,
        output_array=spec.output_array,
        iteration_domain=domain,
    )
    expected = 1
    for g in spec.grid:
        expected *= g
    assert padded.iteration_domain.count() == expected
    return padded


def pad_grid(
    spec: StencilSpec,
    grid: np.ndarray,
    mode: str = "edge",
    constant_value: float = 0.0,
) -> np.ndarray:
    """Pad an input grid for full-size output computation."""
    if mode not in PAD_MODES:
        raise ValueError(
            f"mode must be one of {PAD_MODES}, got {mode!r}"
        )
    if tuple(grid.shape) != tuple(spec.grid):
        raise ValueError("grid shape does not match spec")
    pads = padding_amounts(spec)
    if mode == "constant":
        return np.pad(
            grid, pads, mode="constant", constant_values=constant_value
        )
    return np.pad(grid, pads, mode=mode)


def run_with_boundary(
    spec: StencilSpec,
    grid: np.ndarray,
    mode: str = "edge",
    constant_value: float = 0.0,
) -> np.ndarray:
    """Golden full-size output: pad, run, result has the input shape."""
    from .golden import run_golden

    padded_spec = pad_spec(spec)
    padded_grid = pad_grid(spec, grid, mode, constant_value)
    out = run_golden(padded_spec, padded_grid)
    assert out.shape == tuple(spec.grid)
    return out


def simulate_with_boundary(
    spec: StencilSpec,
    grid: np.ndarray,
    mode: str = "edge",
    constant_value: float = 0.0,
    kernel_latency: int = 4,
):
    """Full-size output through the actual accelerator simulator."""
    from ..microarch.memory_system import build_memory_system
    from ..sim.engine import ChainSimulator

    padded_spec = pad_spec(spec)
    padded_grid = pad_grid(spec, grid, mode, constant_value)
    system = build_memory_system(padded_spec.analysis())
    result = ChainSimulator(
        padded_spec, system, padded_grid, kernel_latency=kernel_latency
    ).run()
    values = np.array(result.output_values()).reshape(spec.grid)
    return values, result.stats
