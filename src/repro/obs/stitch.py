"""Stitch per-process JSONL traces into one cross-process timeline.

Each process of the router fabric — the router itself and every
``repro serve`` node — exports its own JSONL span file whose
timestamps are *monotonic* microseconds since that process's tracer
epoch (pool-worker spans ride home inside node replies and land in the
node's file with the worker's pid).  Monotonic clocks are incomparable
across processes, but every file's ``trace_meta`` header carries the
wall-clock anchor captured at the same instant as the epoch
(:attr:`repro.obs.tracing.Tracer.epoch_unix_us`), so:

    absolute_us = epoch_unix_us + ts_us

places every span on one absolute axis.  :func:`stitch_traces` merges
any number of files that way, rebases everything to the earliest span
(timestamps in the output are strictly non-negative) and emits a
Chrome ``trace_event`` document loadable in ``chrome://tracing`` or
https://ui.perfetto.dev, with one pid row per process (router, each
node, each pool worker) named via metadata events.

On top of the stitched events, :func:`critical_path` walks the
``span_id``/``parent_span_id`` tree of one trace to the leaf chain
that dominated the request's wall-clock, and :func:`stage_coverage`
measures how much of the root span's duration is attributed to named
child stages — the honesty check behind "≥90 % of the request's
wall-clock is accounted for".
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "critical_path",
    "events_for_trace",
    "format_timeline",
    "load_jsonl_trace",
    "stage_coverage",
    "stitch_traces",
    "trace_ids",
]


def load_jsonl_trace(
    path: str,
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse one JSONL trace export into ``(meta, span_records)``.

    ``meta`` is the ``trace_meta`` header (None for pre-header files).
    Raises ``ValueError`` naming the offending line on truncated or
    non-JSONL content, so callers can fail with one clean message.
    """
    meta: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSONL ({exc})"
                ) from exc
            if not isinstance(data, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object per line"
                )
            if data.get("kind") == "trace_meta":
                meta = data
            elif "name" in data and "ts_us" in data:
                records.append(data)
            else:
                raise ValueError(
                    f"{path}:{lineno}: not a span record "
                    "(missing 'name'/'ts_us')"
                )
    return meta, records


def _process_label(
    meta: Optional[Dict[str, Any]], pid: int, record_pid: int
) -> str:
    if meta is not None and record_pid in (0, int(meta.get("pid", 0))):
        return str(meta.get("process", f"pid-{pid}"))
    # A span recorded on behalf of another process (a pool worker's
    # foreign span): the worker has no meta line of its own.
    return f"pool-worker-{pid}"


def stitch_traces(paths: Sequence[str]) -> Dict[str, Any]:
    """Merge JSONL trace files into one Chrome trace_event document.

    Files without a ``trace_meta`` header cannot be placed on the
    shared wall-clock axis and are rejected (``ValueError``) — a
    half-aligned trace silently lies about ordering.  The returned
    document's ``traceEvents`` hold one complete ("X") event per span
    with absolute, min-rebased (hence non-negative) timestamps plus
    one ``process_name`` metadata ("M") event per pid row.
    """
    loaded = []
    for path in paths:
        meta, records = load_jsonl_trace(path)
        if meta is None:
            raise ValueError(
                f"{path}: no trace_meta header — cannot align its "
                "monotonic timestamps with the other processes"
            )
        loaded.append((path, meta, records))

    events: List[Dict[str, Any]] = []
    names: Dict[int, str] = {}
    for path, meta, records in loaded:
        epoch_us = float(meta["epoch_unix_us"])
        meta_pid = int(meta.get("pid", 0))
        for rec in records:
            pid = int(rec.get("pid", 0)) or meta_pid
            args = dict(rec.get("args", {}))
            for key in ("trace_id", "span_id", "parent_span_id"):
                if rec.get(key) is not None:
                    args[key] = rec[key]
            events.append(
                {
                    "name": rec["name"],
                    "ph": "X",
                    "ts": epoch_us + float(rec["ts_us"]),
                    "dur": float(rec.get("dur_us", 0.0)),
                    "pid": pid,
                    "tid": int(rec.get("tid", 0)),
                    "args": args,
                }
            )
            names.setdefault(
                pid, _process_label(meta, pid, int(rec.get("pid", 0)))
            )
    if events:
        base = min(e["ts"] for e in events)
        for e in events:
            e["ts"] = round(e["ts"] - base, 3)
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    meta_events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(names.items())
    ]
    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
    }


def _complete_events(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [
        e
        for e in document.get("traceEvents", [])
        if e.get("ph", "X") == "X"
    ]


def trace_ids(document: Dict[str, Any]) -> Dict[str, int]:
    """``trace_id -> span count`` over a stitched document."""
    counts: Dict[str, int] = {}
    for event in _complete_events(document):
        tid = event.get("args", {}).get("trace_id")
        if tid:
            counts[tid] = counts.get(tid, 0) + 1
    return counts


def events_for_trace(
    document: Dict[str, Any], trace_id: str
) -> List[Dict[str, Any]]:
    """All complete events of one trace, sorted by start time."""
    out = [
        e
        for e in _complete_events(document)
        if e.get("args", {}).get("trace_id") == trace_id
    ]
    out.sort(key=lambda e: (e["ts"], -e["dur"]))
    return out


def _find_root(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The trace's root: no parent within the set; longest wins ties."""
    span_ids = {
        e["args"].get("span_id")
        for e in events
        if e["args"].get("span_id")
    }
    roots = [
        e
        for e in events
        if e["args"].get("parent_span_id") not in span_ids
    ]
    if not roots:
        return None
    return max(roots, key=lambda e: e["dur"])


def critical_path(
    document: Dict[str, Any], trace_id: str
) -> List[Dict[str, Any]]:
    """The root-to-leaf chain of dominant spans for one trace.

    Starting at the root span, repeatedly descend into the
    longest-duration child (by ``parent_span_id`` linkage) — the chain
    a latency optimisation has to shorten.  Returns the events on the
    chain, root first; empty when the trace has no spans.
    """
    events = events_for_trace(document, trace_id)
    root = _find_root(events)
    if root is None:
        return []
    children: Dict[str, List[Dict[str, Any]]] = {}
    for event in events:
        parent = event["args"].get("parent_span_id")
        if parent:
            children.setdefault(parent, []).append(event)
    path = [root]
    seen = {id(root)}
    node = root
    while True:
        span_id = node["args"].get("span_id")
        candidates = [
            c
            for c in children.get(span_id or "", [])
            if id(c) not in seen
        ]
        if not candidates:
            break
        node = max(candidates, key=lambda e: e["dur"])
        seen.add(id(node))
        path.append(node)
    return path


def stage_coverage(
    document: Dict[str, Any], trace_id: str
) -> Optional[float]:
    """Fraction of the root span's wall-clock covered by child stages.

    The union of all non-root span intervals, clipped to the root's
    interval, over the root's duration.  Overlapping children (a node
    span inside the router's ``node_wait``) count once — this measures
    *attribution*, not double-booked time.  None when the trace has no
    root or a zero-length root.
    """
    events = events_for_trace(document, trace_id)
    root = _find_root(events)
    if root is None or root["dur"] <= 0:
        return None
    lo, hi = root["ts"], root["ts"] + root["dur"]
    intervals = []
    for event in events:
        if event is root:
            continue
        start = max(event["ts"], lo)
        end = min(event["ts"] + event["dur"], hi)
        if end > start:
            intervals.append((start, end))
    intervals.sort()
    covered = 0.0
    cursor = lo
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered / root["dur"]


def format_timeline(
    events: List[Dict[str, Any]],
    names: Optional[Dict[int, str]] = None,
) -> str:
    """An aligned, indented text rendering of one trace's events."""
    if not events:
        return "(no spans)"
    by_span = {
        e["args"].get("span_id"): e
        for e in events
        if e["args"].get("span_id")
    }

    def depth(event: Dict[str, Any]) -> int:
        d, seen = 0, set()
        node = event
        while True:
            parent = node["args"].get("parent_span_id")
            if not parent or parent in seen or parent not in by_span:
                return d
            seen.add(parent)
            node = by_span[parent]
            d += 1

    lines = []
    for event in events:
        pid = event.get("pid", 0)
        process = (names or {}).get(pid, f"pid-{pid}")
        indent = "  " * depth(event)
        lines.append(
            f"{event['ts'] / 1e3:10.3f} ms  "
            f"{event['dur'] / 1e3:9.3f} ms  "
            f"{process:<16} {indent}{event['name']}"
        )
    return "\n".join(lines)
