"""End-to-end tests of the compiled backend behind the service.

Covers the ``backend="compiled"`` axis through every execution path —
thread pool, crash-isolated process pool, the CLI and the router node
spawner — plus the plan-cache sidecar compatibility story: pre-PR
cache directories (plan JSON, no ``.lower.json`` sidecar) must load,
re-lower once, and never be counted corrupt.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import format_fabric_summary, format_service_metrics
from repro.service import ServiceConfig, StencilService
from repro.service.chaos import ChaosConfig, ChaosInjector, PlanFuzzer
from repro.service.executor import compile_plan, execute_stencil
from repro.service.fingerprint import CompileOptions, fingerprint
from repro.stencil import DENOISE, SOBEL

from conftest import small_spec


def golden_checksum(spec, seed):
    _, _, digest = execute_stencil(spec, seed)
    return digest[:16]


def counter(snapshot, key):
    return snapshot["counters"].get(key, 0)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestThreadCompiledBackend:
    def test_checksums_match_interpreted(self, registry):
        spec = small_spec(DENOISE)
        expected = {s: golden_checksum(spec, s) for s in range(4)}
        svc = StencilService(
            ServiceConfig(backend="compiled"), registry=registry
        )
        with svc:
            for seed in range(4):
                reply = svc.handle(
                    {
                        "benchmark": "DENOISE",
                        "grid": list(spec.grid),
                        "seed": seed,
                    }
                )
                assert reply["status"] == "ok"
                assert reply["checksum"] == expected[seed]
        snap = registry.snapshot()
        assert (
            counter(
                snap,
                'service_lower_requests_total{path="compiled"}',
            )
            == 4
        )
        assert (
            counter(snap, 'service_lower_total{outcome="lowered"}') == 1
        )

    def test_multi_stream_compiles_bit_identical(self, registry):
        """Multi-stream plans no longer fall back: the per-stream
        sub-programs execute compiled and reproduce the interpreted
        checksum exactly."""
        spec = SOBEL.with_grid((10, 12))
        svc = StencilService(
            ServiceConfig(backend="compiled"), registry=registry
        )
        with svc:
            reply = svc.handle(
                {
                    "benchmark": "SOBEL",
                    "grid": [10, 12],
                    "streams": 2,
                    "seed": 1,
                }
            )
        assert reply["status"] == "ok"
        assert reply["checksum"] == golden_checksum(spec, 1)
        snap = registry.snapshot()
        assert (
            counter(
                snap,
                'service_lower_fallback_total{reason="multi_stream"}',
            )
            == 0
        )
        assert (
            counter(
                snap,
                'service_lower_requests_total{path="compiled"}',
            )
            >= 1
        )

    def test_canary_validates_compiled_results(self, registry):
        svc = StencilService(
            ServiceConfig(backend="compiled", validate_every=1),
            registry=registry,
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16], "seed": 0}
            )
        assert reply["status"] == "ok"
        assert reply["validated"] is True


class TestProcessCompiledBackend:
    def test_checksums_match_interpreted(self, registry):
        spec = small_spec(DENOISE)
        expected = {s: golden_checksum(spec, s) for s in range(3)}
        svc = StencilService(
            ServiceConfig(
                backend="compiled", worker_mode="process", workers=2
            ),
            registry=registry,
        )
        with svc:
            for seed in range(3):
                reply = svc.handle(
                    {
                        "benchmark": "DENOISE",
                        "grid": list(spec.grid),
                        "seed": seed,
                    },
                    wait_timeout=60.0,
                )
                assert reply["status"] == "ok"
                assert reply["checksum"] == expected[seed]
        snap = registry.snapshot()
        assert (
            counter(
                snap,
                'service_lower_requests_total{path="compiled"}',
            )
            == 3
        )

    def test_multi_stream_compiles_in_workers(self, registry):
        spec = SOBEL.with_grid((10, 12))
        svc = StencilService(
            ServiceConfig(
                backend="compiled", worker_mode="process", workers=1
            ),
            registry=registry,
        )
        with svc:
            reply = svc.handle(
                {
                    "benchmark": "SOBEL",
                    "grid": [10, 12],
                    "streams": 2,
                    "seed": 0,
                },
                wait_timeout=60.0,
            )
        assert reply["status"] == "ok"
        assert reply["checksum"] == golden_checksum(spec, 0)
        snap = registry.snapshot()
        assert (
            counter(
                snap,
                'service_lower_fallback_total{reason="multi_stream"}',
            )
            == 0
        )
        assert (
            counter(
                snap,
                'service_lower_requests_total{path="compiled"}',
            )
            >= 1
        )

    def test_worker_lowering_persists_parent_sidecar(
        self, registry, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        svc = StencilService(
            ServiceConfig(
                backend="compiled",
                worker_mode="process",
                workers=1,
                cache_dir=cache_dir,
            ),
            registry=registry,
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16], "seed": 0},
                wait_timeout=60.0,
            )
        assert reply["status"] == "ok"
        sidecars = [
            f for f in os.listdir(cache_dir) if f.endswith(".lower.json")
        ]
        assert len(sidecars) == 1


class TestSidecarCacheCompat:
    def warm_interpreted(self, cache_dir):
        """A pre-PR cache directory: plan JSON files, no sidecars."""
        svc = StencilService(
            ServiceConfig(backend="interpreted", cache_dir=cache_dir),
            registry=MetricsRegistry(),
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16], "seed": 0}
            )
        assert reply["status"] == "ok"
        assert not any(
            f.endswith(".lower.json") for f in os.listdir(cache_dir)
        )
        return reply["fingerprint"], reply["checksum"]

    def test_pre_pr_plan_json_triggers_one_relowering(
        self, registry, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        fp, checksum = self.warm_interpreted(cache_dir)
        svc = StencilService(
            ServiceConfig(backend="compiled", cache_dir=cache_dir),
            registry=registry,
        )
        with svc:
            for seed in (0, 1):
                reply = svc.handle(
                    {
                        "benchmark": "DENOISE",
                        "grid": [12, 16],
                        "seed": seed,
                    }
                )
                assert reply["status"] == "ok"
            assert reply["fingerprint"] == fp
        snap = registry.snapshot()
        # Loaded from disk, lowered exactly once, never counted corrupt.
        assert (
            counter(snap, 'service_lower_total{outcome="lowered"}') == 1
        )
        assert counter(snap, "service_cache_disk_corrupt_total") == 0
        assert counter(snap, "service_cache_sidecar_corrupt_total") == 0
        assert os.path.exists(
            os.path.join(cache_dir, f"{fp}.lower.json")
        )
        # The plan file itself keeps the pre-PR byte format: the
        # program lives in the sidecar, never inline.
        with open(os.path.join(cache_dir, f"{fp}.json")) as fh:
            assert "buffer_program" not in json.load(fh)

    def test_corrupt_sidecar_degrades_to_relowering(
        self, registry, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        fp, checksum = self.warm_interpreted(cache_dir)
        sidecar = os.path.join(cache_dir, f"{fp}.lower.json")
        with open(sidecar, "w") as fh:
            fh.write("{not json")
        svc = StencilService(
            ServiceConfig(backend="compiled", cache_dir=cache_dir),
            registry=registry,
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16], "seed": 0}
            )
        assert reply["status"] == "ok"
        assert reply["checksum"] == checksum
        snap = registry.snapshot()
        assert counter(snap, "service_cache_sidecar_corrupt_total") == 1
        # Sidecar corruption is tracked separately from plan-file
        # corruption and the plan itself still loaded from disk.
        assert counter(snap, "service_cache_disk_corrupt_total") == 0
        with open(sidecar) as fh:  # re-lowered and re-persisted
            assert json.load(fh)["fingerprint"] == fp

    def test_invalidate_removes_sidecar(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        svc = StencilService(
            ServiceConfig(backend="compiled", cache_dir=cache_dir),
            registry=MetricsRegistry(),
        )
        with svc:
            reply = svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16], "seed": 0}
            )
            fp = reply["fingerprint"]
            assert os.path.exists(
                os.path.join(cache_dir, f"{fp}.lower.json")
            )
            svc.cache.invalidate(fp)
            assert not os.path.exists(
                os.path.join(cache_dir, f"{fp}.lower.json")
            )


PROGRAM_MUTATIONS = (
    "corrupt_program_offset",
    "drop_program_read",
    "corrupt_program_bounds",
)


def lowered_plan(spec):
    """A compiled plan carrying its lowered program (as cached)."""
    from repro.lower import CompiledEngine

    opts = CompileOptions()
    fp = fingerprint(spec, opts)
    plan = compile_plan(spec, opts, fp)
    plan.buffer_program = CompiledEngine().kernel_for(plan).program_json
    assert plan.buffer_program is not None
    return spec, plan


class TestProgramMutationCampaign:
    @pytest.mark.parametrize("kind", PROGRAM_MUTATIONS)
    def test_mutations_caught_then_healed_thread(self, kind, registry):
        spec, plan = lowered_plan(small_spec(DENOISE))
        fuzzer = PlanFuzzer()
        assert kind in fuzzer.mutations(plan)
        mutated = fuzzer.mutate(plan, kind)
        assert mutated.to_json() != plan.to_json()
        svc = StencilService(
            ServiceConfig(backend="compiled"), registry=registry
        )
        with svc:
            svc.cache.put(mutated)
            poisoned = svc.handle(
                {"spec": spec.to_json()}, wait_timeout=60.0
            )
            healed = svc.handle(
                {"spec": spec.to_json()}, wait_timeout=60.0
            )
        assert poisoned["status"] == "validation_failed"
        assert healed["status"] == "ok"
        assert healed["checksum"] == golden_checksum(spec, 2014)

    @pytest.mark.parametrize("kind", PROGRAM_MUTATIONS)
    def test_mutations_caught_under_process_pool(self, kind, registry):
        spec, plan = lowered_plan(small_spec(DENOISE))
        mutated = PlanFuzzer().mutate(plan, kind)
        svc = StencilService(
            ServiceConfig(
                backend="compiled", worker_mode="process", workers=1
            ),
            registry=registry,
        )
        with svc:
            svc.cache.put(mutated)
            poisoned = svc.handle(
                {"spec": spec.to_json()}, wait_timeout=60.0
            )
            healed = svc.handle(
                {"spec": spec.to_json()}, wait_timeout=60.0
            )
        assert poisoned["status"] == "validation_failed"
        assert healed["status"] == "ok"
        assert healed["checksum"] == golden_checksum(spec, 2014)


class TestCompiledChaosCampaign:
    def test_kill_campaign_never_wrong_never_dropped(self):
        """Chaos worker kills with the compiled backend: every reply
        is a bit-correct result or a clean structured error."""
        chaos = ChaosConfig(seed=2014, kill_rate=0.12)
        inj = ChaosInjector(chaos)
        ids = [f"chaos-{k}" for k in range(12)]
        assert any(inj.decision(i, attempt=1) == "kill" for i in ids)
        spec = small_spec(DENOISE)
        golden = {
            k: golden_checksum(spec, seed=k) for k in range(len(ids))
        }
        svc = StencilService(
            ServiceConfig(
                workers=2,
                max_queue=64,
                max_batch=4,
                default_timeout_s=60.0,
                max_retries=8,
                retry_backoff_s=0.01,
                worker_mode="process",
                backend="compiled",
                breaker_threshold=50,
                chaos=chaos,
            ),
            registry=MetricsRegistry(),
        )
        with svc:
            slots = [
                svc.submit(
                    {
                        "id": rid,
                        "benchmark": "DENOISE",
                        "grid": [12, 16],
                        "seed": k,
                    }
                )
                for k, rid in enumerate(ids)
            ]
            replies = [s.result(90.0) for s in slots]
            snap = svc.metrics.snapshot()
        assert len(replies) == len(ids)
        for k, reply in enumerate(replies):
            assert reply["status"] in ("ok", "error")
            if reply["status"] == "ok":
                assert reply["checksum"] == golden[k]
        assert sum(r["status"] == "ok" for r in replies) >= 10
        assert (
            counter(
                snap, 'service_worker_restarts_total{reason="death"}'
            )
            >= 1
        )


class TestBackendCli:
    def test_unknown_backend_is_one_line_error(self, capsys):
        rc = main(["submit", "DENOISE", "--backend", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error: ")
        assert "\n" not in err
        assert "bogus" in err

    def test_route_validates_backend_before_spawning(self, capsys):
        rc = main(["route", "--backend", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error: ")

    def test_submit_compiled_matches_interpreted(self, capsys):
        rc = main(
            ["submit", "DENOISE", "--grid", "12x16",
             "--backend", "compiled"]
        )
        assert rc == 0
        compiled = json.loads(
            capsys.readouterr().out.strip().splitlines()[-1]
        )
        rc = main(["submit", "DENOISE", "--grid", "12x16"])
        assert rc == 0
        interpreted = json.loads(
            capsys.readouterr().out.strip().splitlines()[-1]
        )
        assert compiled["status"] == "ok"
        assert compiled["checksum"] == interpreted["checksum"]

    def test_node_config_forwards_backend(self):
        from repro.service.router import NodeConfig

        argv = NodeConfig(backend="compiled").argv()
        assert "--backend" in argv
        assert argv[argv.index("--backend") + 1] == "compiled"
        assert "--backend" not in NodeConfig().argv()

    def test_node_config_forwards_converter(self):
        from repro.service.router import NodeConfig

        argv = NodeConfig(backend="compiled", converter="c").argv()
        lowering = json.loads(argv[argv.index("--lowering") + 1])
        assert lowering["converter"] == "c"
        assert "--lowering" not in NodeConfig().argv()


class TestLoweringReport:
    def snapshot(self):
        from repro.stencil import skewed_denoise

        registry = MetricsRegistry()
        # A tiny hard limit turns the (small) skewed spec into a
        # lowering refusal served interpreted — the report must show
        # both sides of the split.
        svc = StencilService(
            ServiceConfig(backend="compiled", gather_hard_limit=4),
            registry=registry,
        )
        with svc:
            for seed in range(3):
                svc.handle(
                    {
                        "benchmark": "DENOISE",
                        "grid": [12, 16],
                        "seed": seed,
                    }
                )
            svc.handle(
                {"spec": skewed_denoise(8, 10).to_json(), "seed": 0}
            )
        return registry.snapshot()

    def test_service_report_has_lowering_section(self):
        text = format_service_metrics(self.snapshot())
        assert "lowering (compiled backend)" in text
        assert "requests_compiled: 3" in text
        assert "fallback_gather_limit: 1" in text
        assert "compiled_share: 0.75" in text
        assert "converter_numpy: 1" in text

    def test_fabric_summary_surfaces_backend_split(self):
        snap = self.snapshot()
        text = format_fabric_summary([("node-0", snap)])
        assert "compiled backend (merged)" in text
        assert "compiled=3" in text
        assert "converters: numpy=1" in text
        assert "fallbacks: gather_limit=1" in text
        # Lowering stage timings ride the existing stage table.
        assert "node.lower_execute" in text

    def test_interpreted_snapshot_has_no_lowering_section(self):
        registry = MetricsRegistry()
        svc = StencilService(ServiceConfig(), registry=registry)
        with svc:
            svc.handle(
                {"benchmark": "DENOISE", "grid": [12, 16], "seed": 0}
            )
        text = format_service_metrics(registry.snapshot())
        assert "lowering (compiled backend)" not in text
