"""Tests for the off-chip DRAM/bus substrate."""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.polyhedral.domain import BoxDomain
from repro.sim.engine import ChainSimulator
from repro.sim.offchip import (
    DramTimingModel,
    OffchipBus,
    ThrottledDataStream,
)
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE

from conftest import small_spec


class TestDramTimingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DramTimingModel(words_per_cycle=0)
        with pytest.raises(ValueError):
            DramTimingModel(row_words=0)
        with pytest.raises(ValueError):
            DramTimingModel(row_miss_penalty=-1)

    def test_effective_rate(self):
        ideal = DramTimingModel(row_miss_penalty=0)
        assert ideal.effective_rate() == pytest.approx(1.0)
        lossy = DramTimingModel(row_words=64, row_miss_penalty=16)
        assert lossy.effective_rate() == pytest.approx(
            64 / (64 + 16)
        )

    def test_throttled_stream_order_preserved(self):
        grid = np.arange(12.0).reshape(3, 4)
        stream = ThrottledDataStream(
            BoxDomain((0, 0), (2, 3)),
            grid,
            dram=DramTimingModel(row_words=4, row_miss_penalty=2),
        )
        points = []
        guard = 0
        while points.__len__() < 12:
            stream.tick()
            if stream.available:
                points.append(stream.pop()[0])
            guard += 1
            assert guard < 200
        assert points == sorted(points)

    def test_row_stall_gates_supply(self):
        grid = np.arange(8.0)
        stream = ThrottledDataStream(
            BoxDomain((0,), (7,)),
            grid,
            dram=DramTimingModel(row_words=2, row_miss_penalty=3),
        )
        served_at = []
        for cycle in range(1, 40):
            stream.tick()
            if stream.available:
                stream.pop()
                served_at.append(cycle)
            if len(served_at) == 8:
                break
        # After every 2 words there is a >= 3 cycle gap.
        assert served_at[2] - served_at[1] >= 4


class TestSimulationWithDram:
    def test_full_rate_dram_only_adds_stalls(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        base = ChainSimulator(
            spec, build_memory_system(spec.analysis()), grid
        ).run()
        dram = DramTimingModel(
            row_words=32, row_miss_penalty=4, initial_latency=8
        )
        slow = ChainSimulator(
            spec,
            build_memory_system(spec.analysis()),
            grid,
            dram=dram,
        ).run()
        assert np.allclose(
            slow.output_values(), golden_output_sequence(spec, grid)
        )
        assert slow.stats.total_cycles > base.stats.total_cycles

    def test_half_rate_doubles_cycles(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        base = ChainSimulator(
            spec, build_memory_system(spec.analysis()), grid
        ).run()
        slow = ChainSimulator(
            spec,
            build_memory_system(spec.analysis()),
            grid,
            dram=DramTimingModel(
                words_per_cycle=0.5, row_miss_penalty=0
            ),
        ).run()
        assert slow.stats.total_cycles == pytest.approx(
            2 * base.stats.total_cycles, rel=0.05
        )


class TestOffchipBus:
    def test_validation(self):
        with pytest.raises(ValueError):
            OffchipBus(words_per_cycle=0)

    def _run_segments_on_bus(self, streams, width):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        system = with_offchip_streams(
            build_memory_system(spec.analysis()), streams
        )
        bus = OffchipBus(words_per_cycle=width)
        result = ChainSimulator(
            spec,
            system,
            grid,
            bus=bus,
            dram=DramTimingModel(row_miss_penalty=0),
        ).run()
        golden = golden_output_sequence(spec, grid)
        assert np.allclose(result.output_values(), golden)
        return result

    def test_wide_bus_matches_ideal(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        ideal = ChainSimulator(
            spec,
            with_offchip_streams(
                build_memory_system(spec.analysis()), 3
            ),
            grid,
        ).run()
        on_bus = self._run_segments_on_bus(streams=3, width=3)
        assert (
            on_bus.stats.total_cycles
            <= ideal.stats.total_cycles + 2
        )

    def test_narrow_bus_degrades_gracefully(self):
        wide = self._run_segments_on_bus(streams=3, width=3)
        narrow = self._run_segments_on_bus(streams=3, width=1)
        assert (
            narrow.stats.total_cycles > wide.stats.total_cycles
        )

    def test_bus_counts_total_words(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        system = with_offchip_streams(
            build_memory_system(spec.analysis()), 2
        )
        bus = OffchipBus(words_per_cycle=2)
        result = ChainSimulator(
            spec,
            system,
            grid,
            bus=bus,
            dram=DramTimingModel(row_miss_penalty=0),
        ).run()
        assert bus.total_words == sum(
            result.stats.elements_streamed_per_segment
        )

    def test_monotone_in_bus_width(self):
        cycles = [
            self._run_segments_on_bus(3, w).stats.total_cycles
            for w in (1, 2, 3)
        ]
        assert cycles == sorted(cycles, reverse=True)
