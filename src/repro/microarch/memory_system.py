"""Memory-system construction (the Fig 7 netlist builder).

:func:`build_memory_system` turns a non-uniform partition plan into the
structural chain of splitters, reuse FIFOs and data filters that the
simulator executes and the resource model costs.  The default build is a
single chain segment (one off-chip access per cycle); the
bandwidth/memory trade-off of Fig 14 re-segments it via
:mod:`repro.microarch.tradeoff`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..polyhedral.analysis import StencilAnalysis
from ..polyhedral.domain import BoxDomain
from ..partitioning.nonuniform import NonUniformPlan, plan_nonuniform
from .components import (
    ChainSegment,
    DataFilter,
    DataPathSplitter,
    ReuseFifo,
)
from .mapping import DEFAULT_POLICY, MappingPolicy, map_fifo


@dataclass(frozen=True)
class MemorySystem:
    """The complete memory system for one data array's stencil accesses.

    Attributes
    ----------
    array:
        Array name.
    stream_domain:
        The lexicographically streamed input domain (hull box of all
        reference data domains).
    filters:
        One :class:`DataFilter` per array reference, in chain order
        (filter 0 serves the lexicographically earliest reference).
    fifos:
        All reuse FIFOs still present (chain-breaking removes some).
    splitters:
        One splitter per filter.
    segments:
        Chain segments; each consumes one off-chip stream per cycle.
    """

    array: str
    stream_domain: BoxDomain
    filters: Tuple[DataFilter, ...]
    fifos: Tuple[ReuseFifo, ...]
    splitters: Tuple[DataPathSplitter, ...]
    segments: Tuple[ChainSegment, ...]
    plan: NonUniformPlan

    @property
    def n_references(self) -> int:
        return len(self.filters)

    @property
    def num_banks(self) -> int:
        """Number of reuse buffer banks (FIFOs) currently instantiated."""
        return len(self.fifos)

    @property
    def total_buffer_size(self) -> int:
        return sum(f.capacity for f in self.fifos)

    @property
    def offchip_accesses_per_cycle(self) -> int:
        """Off-chip stream words consumed per cycle in steady state."""
        return len(self.segments)

    def fifo_capacities(self) -> List[int]:
        return [f.capacity for f in self.fifos]

    def table2_rows(self) -> List[dict]:
        """The paper's Table 2: FIFO sizes and physical mapping."""
        return [f.table2_row() for f in self.fifos]

    def segment_of_filter(self, filter_id: int) -> ChainSegment:
        for seg in self.segments:
            if seg.first_filter <= filter_id <= seg.last_filter:
                return seg
        raise KeyError(f"no segment covers filter {filter_id}")

    def describe(self) -> str:
        """Human-readable structure dump (used by examples/reports)."""
        lines = [
            f"Memory system for array {self.array!r}: "
            f"{self.n_references} references, {self.num_banks} reuse "
            f"FIFOs, total {self.total_buffer_size} elements, "
            f"{self.offchip_accesses_per_cycle} off-chip access(es) "
            f"per cycle",
        ]
        for seg in self.segments:
            lines.append(
                f"  segment {seg.segment_id}: filters "
                f"{seg.first_filter}..{seg.last_filter}"
            )
            for k in range(seg.first_filter, seg.last_filter + 1):
                f = self.filters[k]
                lines.append(f"    filter {k}: {f.label}")
                if k < seg.last_filter:
                    fifo = seg.fifos[k - seg.first_filter]
                    lines.append(
                        f"    FIFO {fifo.fifo_id}: capacity "
                        f"{fifo.capacity} ({fifo.impl.value})"
                    )
        return "\n".join(lines)


def build_memory_system(
    analysis: StencilAnalysis,
    plan: Optional[NonUniformPlan] = None,
    policy: MappingPolicy = DEFAULT_POLICY,
) -> MemorySystem:
    """Build the single-segment Fig 7 memory system for one array."""
    if plan is None:
        plan = plan_nonuniform(analysis)
    stream = analysis.stream_domain()
    filters = tuple(
        DataFilter(
            filter_id=k,
            reference=ref,
            output_domain=analysis.data_domain(ref),
        )
        for k, ref in enumerate(plan.references)
    )
    fifos = tuple(
        ReuseFifo(
            fifo_id=spec.fifo_id,
            capacity=spec.capacity,
            precedent_label=spec.precedent.label,
            successive_label=spec.successive.label,
            impl=map_fifo(spec.capacity, policy),
        )
        for spec in plan.fifos
    )
    splitters = tuple(
        DataPathSplitter(splitter_id=k, feeds_fifo=k < len(filters) - 1)
        for k in range(len(filters))
    )
    segment = ChainSegment(
        segment_id=0,
        first_filter=0,
        last_filter=len(filters) - 1,
        fifos=fifos,
    )
    return MemorySystem(
        array=analysis.array,
        stream_domain=stream,
        filters=filters,
        fifos=fifos,
        splitters=splitters,
        segments=(segment,),
        plan=plan,
    )
