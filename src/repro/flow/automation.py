"""The end-to-end design-automation flow (Fig 11).

:func:`compile_accelerator` runs both branches of the paper's flow:

* left branch — polyhedral analysis of the stencil accesses, non-uniform
  partition planning, microarchitecture (memory system) generation;
* right branch — kernel extraction (source-to-source transform) and
  HLS-lite scheduling of the computation kernel;

then integrates them into a complete :class:`Accelerator` and bundles
resource/timing estimates plus the generated sources into a
:class:`CompiledDesign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hls.codegen import generate_memory_system_rtl
from ..hls.ir import DataflowGraph
from ..hls.schedule import FIXED32_LIBRARY, Schedule, schedule_kernel
from ..microarch.accelerator import Accelerator, KernelInfo
from ..microarch.mapping import DEFAULT_POLICY, MappingPolicy
from ..microarch.memory_system import (
    MemorySystem,
    build_memory_system,
)
from ..microarch.tradeoff import with_offchip_streams
from ..partitioning.nonuniform import plan_nonuniform
from ..resources.estimate import AcceleratorEstimate, estimate_ours
from ..resources.timing import TimingEstimate, estimate_timing_ours
from ..stencil.spec import StencilSpec
from .transform import TransformedKernel, transform_kernel


@dataclass(frozen=True)
class CompiledDesign:
    """Everything the flow produces for one stencil application."""

    accelerator: Accelerator
    kernel_schedule: Schedule
    transformed: TransformedKernel
    rtl: str
    resources: AcceleratorEstimate
    timing: TimingEstimate

    @property
    def spec(self) -> StencilSpec:
        return self.accelerator.spec

    @property
    def memory_system(self) -> MemorySystem:
        return self.accelerator.primary

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "n_references": self.spec.n_points,
            "banks": self.memory_system.num_banks,
            "total_buffer": self.memory_system.total_buffer_size,
            "offchip_accesses_per_cycle": (
                self.memory_system.offchip_accesses_per_cycle
            ),
            "kernel_latency": self.kernel_schedule.latency,
            "kernel_ii": self.kernel_schedule.ii,
            "bram_18k": self.resources.total.bram_18k,
            "slices": self.resources.total.slices,
            "dsp": self.resources.total.dsp,
            "critical_path_ns": self.timing.critical_path_ns,
        }


def compile_multi_accelerator(
    spec,
    mapping_policy: MappingPolicy = DEFAULT_POLICY,
    operator_library=None,
) -> Accelerator:
    """Compile a multi-array kernel (Fig 3): one memory system per
    input array, one shared pipelined kernel.

    Takes a :class:`~repro.stencil.multi.MultiArraySpec`; returns the
    assembled :class:`~repro.microarch.accelerator.Accelerator` with
    ``memory_systems`` ordered like ``spec.input_arrays``.
    """
    from ..stencil.multi import MultiArraySpec

    if not isinstance(spec, MultiArraySpec):
        raise TypeError(
            "compile_multi_accelerator expects a MultiArraySpec; use "
            "compile_accelerator for single-array kernels"
        )
    library = operator_library or FIXED32_LIBRARY
    systems = tuple(
        build_memory_system(
            spec.analysis(array), policy=mapping_policy
        )
        for array in spec.input_arrays
    )
    graph = DataflowGraph.from_expression(spec.expression)
    schedule = schedule_kernel(graph, ii=1, library=library)
    return Accelerator(
        spec=spec,  # type: ignore[arg-type]
        memory_systems=systems,
        kernel=KernelInfo(
            latency=schedule.latency,
            ii=schedule.ii,
            operation_counts=graph.opcode_histogram(),
        ),
    )


def compile_accelerator(
    spec: StencilSpec,
    offchip_streams: int = 1,
    mapping_policy: MappingPolicy = DEFAULT_POLICY,
    operator_library=None,
) -> CompiledDesign:
    """Run the complete Fig 11 flow on one stencil spec."""
    library = operator_library or FIXED32_LIBRARY

    # Left branch: polyhedral analysis -> microarchitecture instance.
    analysis = spec.analysis()
    plan = plan_nonuniform(analysis)
    system = build_memory_system(analysis, plan, mapping_policy)
    if offchip_streams > 1:
        system = with_offchip_streams(system, offchip_streams)

    # Right branch: kernel transformation -> HLS.
    transformed = transform_kernel(spec, system)
    graph = DataflowGraph.from_expression(spec.expression)
    schedule = schedule_kernel(graph, ii=1, library=library)

    # Integration.
    accelerator = Accelerator(
        spec=spec,
        memory_systems=(system,),
        kernel=KernelInfo(
            latency=schedule.latency,
            ii=schedule.ii,
            operation_counts=graph.opcode_histogram(),
        ),
    )
    return CompiledDesign(
        accelerator=accelerator,
        kernel_schedule=schedule,
        transformed=transformed,
        rtl=generate_memory_system_rtl(system),
        resources=estimate_ours(spec, system, library=library),
        timing=estimate_timing_ours(system),
    )
