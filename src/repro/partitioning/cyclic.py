"""Linear (flattened-address) cyclic partitioning — baseline [5, 6].

The classic memory-partitioning scheme of Cong et al. (ICCAD'09):
linearize the multidimensional data index row-major and assign
``bank(h) = linear(h) mod N``.  The scheme is conflict-free iff every pair
of simultaneous accesses lands in different banks, i.e. iff all pairwise
differences of the references' linear offsets are non-zero modulo ``N``.

Because the row size of the grid enters the linear offsets, the minimum
conflict-free ``N`` *changes with the grid's row size* even for a fixed
stencil window — the effect plotted in the paper's Fig 5 (5 to 8 banks
for the constant 5-point DENOISE window).  :func:`bank_count_vs_row_size`
regenerates that curve.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..obs.tracing import traced
from ..polyhedral.analysis import StencilAnalysis
from ..polyhedral.lexorder import Vector, as_vector
from ..stencil.spec import StencilWindow
from .base import (
    BankSpec,
    PartitioningInfeasibleError,
    UniformBankMapping,
    UniformPlan,
)

#: Upper bound on the bank-count search.
DEFAULT_MAX_BANKS = 64


def linear_offsets(
    offsets: Sequence[Sequence[int]], extents: Sequence[int]
) -> List[int]:
    """Row-major linear value of each offset vector for given extents."""
    values = []
    for off in offsets:
        off = as_vector(off)
        if len(off) != len(extents):
            raise ValueError("offset/extent dimension mismatch")
        addr = 0
        for extent, coord in zip(extents, off):
            addr = addr * extent + coord
        values.append(addr)
    return values


def pairwise_differences(values: Sequence[int]) -> List[int]:
    """All non-trivial pairwise differences (positive representatives)."""
    diffs = []
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            diffs.append(abs(values[i] - values[j]))
    return diffs


def is_conflict_free(values: Sequence[int], num_banks: int) -> bool:
    """True iff all linear offsets are pairwise distinct mod N."""
    residues = {v % num_banks for v in values}
    return len(residues) == len(values)


def minimum_banks_linear(
    offsets: Sequence[Sequence[int]],
    extents: Sequence[int],
    max_banks: int = DEFAULT_MAX_BANKS,
) -> int:
    """Smallest conflict-free ``N`` for the linear cyclic scheme."""
    values = linear_offsets(offsets, extents)
    n = len(values)
    for num_banks in range(n, max_banks + 1):
        if is_conflict_free(values, num_banks):
            return num_banks
    raise PartitioningInfeasibleError(
        f"no conflict-free linear cyclic banking with <= {max_banks} banks"
    )


@traced("partition.cyclic")
def plan_cyclic(
    analysis: StencilAnalysis,
    max_banks: int = DEFAULT_MAX_BANKS,
) -> UniformPlan:
    """Build the [5]-style plan for one analyzed array.

    The reuse buffer covers the live window span (the same element
    lifetime the paper's Section 2.3 derives), split into ``N`` uniform
    banks of ``ceil(span / N)`` elements each.
    """
    extents = analysis.stream_domain().shape
    offsets = analysis.offsets()
    num_banks = minimum_banks_linear(offsets, extents, max_banks)
    values = linear_offsets(offsets, extents)
    span = max(values) - min(values) + 1
    bank_depth = math.ceil(span / num_banks)
    weights = _row_major_strides(extents)
    mapping = UniformBankMapping(
        num_banks=num_banks,
        weights=weights,
        padded_extents=as_vector(extents),
        original_extents=as_vector(extents),
    )
    banks = tuple(
        BankSpec(bank_id=k, capacity=bank_depth, role="cyclic_bank")
        for k in range(num_banks)
    )
    return UniformPlan(
        scheme="cyclic_linear",
        array=analysis.array,
        n_references=analysis.n_references,
        banks=banks,
        achieved_ii=1,
        mapping=mapping,
        window_span=span,
        uses_dsp_address_transform=not _is_power_of_two(num_banks),
    )


def bank_count_vs_row_size(
    window: StencilWindow,
    row_sizes: Iterable[int],
    column_extent_factor: Optional[float] = None,
    max_banks: int = DEFAULT_MAX_BANKS,
) -> List[Tuple[int, int]]:
    """Fig 5: minimum banks of the linear cyclic scheme as the grid row
    size sweeps, window held constant.

    ``row_sizes`` are innermost extents; the outer extent only needs to
    be large enough not to constrain anything, so it is irrelevant to the
    modular analysis and fixed internally.
    """
    if window.dim != 2:
        raise ValueError("the Fig 5 sweep is defined for 2D windows")
    del column_extent_factor  # outer extent does not affect the result
    results = []
    for row in row_sizes:
        if row < 3:
            raise ValueError("row size too small for the window")
        extents = (1 << 20, row)  # outer extent arbitrary/large
        banks = minimum_banks_linear(
            window.offsets, extents, max_banks
        )
        results.append((row, banks))
    return results


def _row_major_strides(extents: Sequence[int]) -> Vector:
    strides = [1] * len(extents)
    for j in range(len(extents) - 2, -1, -1):
        strides[j] = strides[j + 1] * extents[j + 1]
    return tuple(strides)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0
