"""Report generation: the paper's tables and figure series as text.

These functions compute and format the evaluation artifacts; the
``benchmarks/`` harness calls them and prints the same rows the paper
reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..microarch.mapping import DEFAULT_POLICY, MappingPolicy
from ..microarch.memory_system import build_memory_system
from ..microarch.tradeoff import tradeoff_curve
from ..partitioning.cyclic import bank_count_vs_row_size
from ..partitioning.gmp import plan_gmp
from ..partitioning.nonuniform import plan_nonuniform
from ..resources.estimate import estimate_baseline, estimate_ours
from ..resources.timing import (
    estimate_timing_baseline,
    estimate_timing_ours,
)
from ..stencil.spec import StencilSpec


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(r.get(c, "")).rjust(widths[c]) for c in columns)
        for r in rows
    ]
    return "\n".join([header, sep] + body)


def table2_report(spec: StencilSpec) -> List[Dict[str, object]]:
    """Table 2: non-uniform FIFO sizes + physical mapping."""
    system = build_memory_system(spec.analysis())
    return system.table2_rows()


def table4_report(
    specs: Sequence[StencilSpec],
) -> List[Dict[str, object]]:
    """Table 4: high-level partitioning results, [8]-style baseline vs
    ours, for every benchmark."""
    rows = []
    for spec in specs:
        analysis = spec.analysis()
        ours = plan_nonuniform(analysis)
        base = plan_gmp(analysis)
        rows.append(
            {
                "benchmark": spec.name,
                "original_ii": spec.n_points,
                "target_ii": 1,
                "banks_gmp": base.num_banks,
                "banks_ours": ours.num_banks,
                "size_gmp": base.total_size,
                "size_ours": ours.total_size,
            }
        )
    return rows


def table5_report(
    specs: Sequence[StencilSpec],
    mapping_policy: MappingPolicy = DEFAULT_POLICY,
) -> List[Dict[str, object]]:
    """Table 5: modelled synthesis results per benchmark."""
    rows = []
    for spec in specs:
        analysis = spec.analysis()
        system = build_memory_system(
            analysis, policy=mapping_policy
        )
        base_plan = plan_gmp(analysis)
        ours = estimate_ours(spec, system).total
        base = estimate_baseline(spec, base_plan).total
        t_ours = estimate_timing_ours(system)
        t_base = estimate_timing_baseline(base_plan)

        def pct(our: float, theirs: float) -> float:
            return round(100.0 * our / theirs, 1) if theirs else 0.0

        rows.append(
            {
                "benchmark": spec.name,
                "bram_gmp": base.bram_18k,
                "bram_ours": ours.bram_18k,
                "bram_pct": pct(ours.bram_18k, base.bram_18k),
                "slice_gmp": base.slices,
                "slice_ours": ours.slices,
                "slice_pct": pct(ours.slices, base.slices),
                "dsp_gmp": base.dsp,
                "dsp_ours": ours.dsp,
                "cp_gmp": round(t_base.critical_path_ns, 2),
                "cp_ours": round(t_ours.critical_path_ns, 2),
            }
        )
    return rows


def fig5_report(
    spec: StencilSpec, row_sizes: Iterable[int]
) -> List[Dict[str, object]]:
    """Fig 5: linear cyclic [5] bank count vs grid row size."""
    return [
        {"row_size": row, "banks": banks}
        for row, banks in bank_count_vs_row_size(
            spec.window, row_sizes
        )
    ]


def fig15_report(spec: StencilSpec) -> List[Dict[str, object]]:
    """Fig 15: off-chip accesses per cycle vs on-chip buffer size."""
    system = build_memory_system(spec.analysis())
    return [p.as_row() for p in tradeoff_curve(system)]


def average_reduction(
    rows: Sequence[Dict[str, object]], ours_key: str, base_key: str
) -> float:
    """Average percentage reduction (ours vs baseline) over rows."""
    ratios = []
    for r in rows:
        base = float(r[base_key])  # type: ignore[arg-type]
        ours = float(r[ours_key])  # type: ignore[arg-type]
        if base > 0:
            ratios.append(1.0 - ours / base)
    return round(100.0 * sum(ratios) / len(ratios), 1) if ratios else 0.0
