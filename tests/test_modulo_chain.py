"""Tests for the Section 6 future-work design: modulo-scheduled
centralized control over the same non-uniform banks."""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.resources.estimate import (
    estimate_memory_system,
    estimate_modulo_chain,
)
from repro.sim.modulo_chain import ModuloChainSimulator
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE, skewed_denoise

from conftest import small_spec


class TestCorrectness:
    def test_every_benchmark_matches_golden(self, small_benchmark):
        spec = small_benchmark
        grid = make_input(spec)
        system = build_memory_system(spec.analysis())
        result = ModuloChainSimulator(spec, system, grid).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )

    def test_outputs_in_iteration_order(self, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ModuloChainSimulator(
            denoise_small, system, grid
        ).run()
        iters = [i for i, _ in result.outputs]
        assert iters == sorted(iters)

    def test_same_output_as_streaming_design(self, denoise_small):
        from repro.sim.engine import ChainSimulator

        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        streaming = ChainSimulator(
            denoise_small,
            build_memory_system(denoise_small.analysis()),
            grid,
        ).run()
        modulo = ModuloChainSimulator(
            denoise_small, system, grid
        ).run()
        assert np.allclose(
            streaming.output_values(), modulo.output_values()
        )

    def test_cycle_count_is_stream_length(self, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ModuloChainSimulator(
            denoise_small, system, grid
        ).run()
        assert (
            result.stats.total_cycles
            == system.stream_domain.count()
        )

    def test_bank_moduli_are_the_nonuniform_capacities(
        self, denoise_small
    ):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ModuloChainSimulator(
            denoise_small, system, grid
        ).run()
        assert result.stats.bank_moduli == system.fifo_capacities()


class TestRestrictions:
    def test_union_streaming_rejected(self):
        """The static schedule needs constant reuse distances — the
        very limitation the distributed design removes (Fig 9)."""
        spec = skewed_denoise(rows=6, cols=8)
        grid = make_input(spec)
        system = build_memory_system(spec.analysis(stream_mode="union"))
        with pytest.raises(TypeError):
            ModuloChainSimulator(spec, system, grid)

    def test_broken_chain_rejected(self):
        from repro.microarch.tradeoff import with_offchip_streams

        spec = small_spec(DENOISE)
        grid = make_input(spec)
        system = with_offchip_streams(
            build_memory_system(spec.analysis()), 2
        )
        with pytest.raises(ValueError):
            ModuloChainSimulator(spec, system, grid)

    def test_wrong_grid_rejected(self):
        spec = small_spec(DENOISE)
        system = build_memory_system(spec.analysis())
        with pytest.raises(ValueError):
            ModuloChainSimulator(spec, system, np.zeros((2, 2)))


class TestResourceComparison:
    def test_same_storage_both_designs(self):
        system = build_memory_system(DENOISE.analysis())
        streaming = estimate_memory_system(system)
        modulo = estimate_modulo_chain(system)
        assert streaming.bram_18k == modulo.bram_18k

    def test_modulo_controller_needs_dsps(self):
        """Non-power-of-two bank moduli (1023 for DENOISE) cost DSP
        reciprocal dividers — the price the streaming design avoids."""
        system = build_memory_system(DENOISE.analysis())
        streaming = estimate_memory_system(system)
        modulo = estimate_modulo_chain(system)
        assert streaming.dsp == 0
        assert modulo.dsp > 0

    def test_pow2_capacities_avoid_dsps(self):
        from repro.stencil.spec import StencilSpec, StencilWindow

        # Row size 16 with a (1,0)/(0,0) pair gives capacity 16 (pow2)
        window = StencilWindow.from_offsets([(0, 0), (1, 0)])
        spec = StencilSpec("P2", (10, 16), window)
        system = build_memory_system(spec.analysis())
        assert system.fifo_capacities() == [16]
        assert estimate_modulo_chain(system).dsp == 0
