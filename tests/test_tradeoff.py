"""Unit tests for the bandwidth/memory trade-off (Fig 14/15)."""

import pytest

from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import (
    break_chain,
    resegment,
    select_breaks,
    tradeoff_curve,
    with_offchip_streams,
)
from repro.stencil.kernels import DENOISE, SEGMENTATION_3D


def denoise_system():
    return build_memory_system(DENOISE.analysis())


def segmentation_system():
    return build_memory_system(SEGMENTATION_3D.analysis())


class TestSelectBreaks:
    def test_largest_first(self):
        system = denoise_system()
        removed = select_breaks(system.fifos, 1)
        # Ties between the two 1023-capacity FIFOs break upstream-first.
        assert removed == [0]

    def test_two_breaks_remove_both_brams(self):
        system = denoise_system()
        removed = select_breaks(system.fifos, 2)
        assert set(removed) == {0, 3}

    def test_zero_breaks(self):
        system = denoise_system()
        assert select_breaks(system.fifos, 0) == []

    def test_too_many_breaks(self):
        system = denoise_system()
        with pytest.raises(ValueError):
            select_breaks(system.fifos, 5)

    def test_negative_breaks(self):
        with pytest.raises(ValueError):
            select_breaks(denoise_system().fifos, -1)


class TestResegment:
    def test_break_at_fifo0(self):
        system = resegment(denoise_system(), [0])
        assert len(system.segments) == 2
        assert system.segments[0].first_filter == 0
        assert system.segments[0].last_filter == 0
        assert system.segments[1].first_filter == 1
        assert system.segments[1].last_filter == 4
        assert system.num_banks == 3
        assert system.total_buffer_size == 2048 - 1023

    def test_unknown_fifo_rejected(self):
        with pytest.raises(KeyError):
            resegment(denoise_system(), [77])

    def test_filters_unchanged(self):
        before = denoise_system()
        after = resegment(before, [0, 3])
        assert after.filters == before.filters
        assert len(after.segments) == 3


class TestWithOffchipStreams:
    def test_one_stream_is_identity_shape(self):
        system = with_offchip_streams(denoise_system(), 1)
        assert len(system.segments) == 1
        assert system.total_buffer_size == 2048

    def test_max_streams_removes_all_fifos(self):
        base = denoise_system()
        system = with_offchip_streams(base, base.n_references)
        assert system.num_banks == 0
        assert system.total_buffer_size == 0
        assert len(system.segments) == base.n_references

    def test_invalid_stream_counts(self):
        base = denoise_system()
        with pytest.raises(ValueError):
            with_offchip_streams(base, 0)
        with pytest.raises(ValueError):
            with_offchip_streams(base, base.n_references + 1)

    def test_break_chain_wrapper(self):
        system = break_chain(denoise_system(), 1)
        assert len(system.segments) == 2


class TestTradeoffCurve:
    def test_monotone_decreasing_buffer(self):
        curve = tradeoff_curve(segmentation_system())
        sizes = [p.total_buffer_size for p in curve]
        assert sizes == sorted(sizes, reverse=True)
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_full_sweep_length(self):
        curve = tradeoff_curve(segmentation_system())
        assert len(curve) == 18  # the paper sweeps 1..18
        assert curve[0].offchip_accesses_per_cycle == 1
        assert curve[-1].offchip_accesses_per_cycle == 18

    def test_three_phases_for_segmentation(self):
        """Fig 15's three phases: inter-plane reuse (huge buffers) goes
        first, then inter-row (medium), finally intra-row (tiny)."""
        curve = tradeoff_curve(segmentation_system())
        drops = [
            a.total_buffer_size - b.total_buffer_size
            for a, b in zip(curve, curve[1:])
        ]
        huge = [d for d in drops if d > 10000]
        medium = [d for d in drops if 100 < d <= 10000]
        tiny = [d for d in drops if d <= 100]
        assert len(huge) == 2  # two inter-plane FIFOs
        assert len(medium) == 6  # six inter-row FIFOs
        assert len(tiny) == len(drops) - 8
        # Phases appear in order: huge drops first.
        assert drops == sorted(drops, reverse=True)

    def test_first_point_is_minimum_buffer(self):
        system = segmentation_system()
        curve = tradeoff_curve(system)
        assert (
            curve[0].total_buffer_size == system.total_buffer_size
        )

    def test_as_row(self):
        row = tradeoff_curve(denoise_system())[1].as_row()
        assert row["offchip_accesses"] == 2
        assert "onchip_buffer" in row

    def test_max_streams_bound(self):
        with pytest.raises(ValueError):
            tradeoff_curve(denoise_system(), max_streams=99)
