"""Extension — buffer/traffic trade-off: chain breaking (Fig 14/15) vs
classical tiling, on the same axes.

Chain breaking buys buffer reduction with *bandwidth* (more accesses
per cycle, same words per stream); tiling buys it with *traffic* (halo
re-fetches, still one access per cycle).  This bench quantifies both
for DENOISE and checks the tiled execution's functional correctness.
"""

import numpy as np

from conftest import emit

from repro.flow.report import format_table
from repro.microarch.tiling import compare_tradeoffs, simulate_tiled
from repro.stencil.golden import make_input, run_golden
from repro.stencil.kernels import DENOISE

STRIP_WIDTHS = (32, 64, 128, 256, 512, 1022)


def bench_tiling_vs_chain_breaking(benchmark):
    data = benchmark(
        compare_tradeoffs, DENOISE, STRIP_WIDTHS
    )

    breaking = data["chain_breaking"]
    tiling = data["tiling"]
    # Shapes: breaking reduces buffer at constant per-stream traffic;
    # tiling reduces buffer as strips narrow, at growing total traffic.
    assert [r["onchip_buffer"] for r in breaking] == sorted(
        (r["onchip_buffer"] for r in breaking), reverse=True
    )
    assert [r["offchip_words"] for r in tiling] == sorted(
        (r["offchip_words"] for r in tiling), reverse=True
    )

    emit(
        "Trade-off comparison — chain breaking (bandwidth) vs tiling "
        "(traffic), DENOISE 768x1024",
        "chain breaking:\n"
        + format_table(breaking)
        + "\n\ntiling:\n"
        + format_table(tiling),
    )


def bench_tiled_execution_correct(benchmark):
    spec = DENOISE.with_grid((14, 40))
    grid = make_input(spec)

    def run():
        return simulate_tiled(spec, 9, grid)

    result = benchmark(run)
    assert np.allclose(result.outputs, run_golden(spec, grid))
    assert result.strips_run == 5
