"""Tests for the register-level elaboration and simulation.

The RTL layer carries *values only*; all control is the Fig 10 counter
structure.  These tests cross-check it against the point-tagged
behavioural simulator and the golden reference.
"""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.polyhedral.domain import BoxDomain, IntegerPolyhedron
from repro.rtl.core import DomainCounter, Signal, WaveformDump
from repro.rtl.components import RtlFifo, RtlFilter
from repro.rtl.design import RtlDeadlockError, simulate_rtl
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE, skewed_denoise

from conftest import small_spec


class TestDomainCounter:
    def test_box_sequence_matches_lex_enumeration(self):
        box = BoxDomain((1, 2), (3, 4))
        counter = DomainCounter(box, "c")
        seen = []
        while not counter.done.value:
            seen.append(counter.current())
            counter.advance()
        assert seen == list(box.iter_points())

    def test_polyhedral_counter_skips_nonmembers(self):
        tri = IntegerPolyhedron(
            coefficients=[(-1, 0), (0, -1), (1, 1)],
            bounds=[0, 0, 3],
        )
        counter = DomainCounter(tri, "t")
        seen = []
        while not counter.done.value:
            seen.append(counter.current())
            counter.advance()
        assert seen == list(tri.iter_points())

    def test_done_stays_done(self):
        box = BoxDomain((0,), (1,))
        counter = DomainCounter(box, "c")
        counter.advance()
        counter.advance()
        assert counter.done.value
        counter.advance()  # no-op
        assert counter.done.value


class TestRtlPrimitives:
    def test_signal_stage_commit(self):
        s = Signal("x", 1)
        s.stage(5)
        assert s.value == 1
        s.commit()
        assert s.value == 5

    def test_fifo_occupancy_signal(self):
        f = RtlFifo("f", 2)
        f.push(1.0)
        f.push(2.0)
        assert f.occupancy.value == 2
        assert f.full
        with pytest.raises(OverflowError):
            f.push(3.0)
        assert f.pop() == 1.0
        assert f.occupancy.value == 1

    def test_filter_counter_driven_selection(self):
        stream = BoxDomain((0, 0), (1, 2))
        out = BoxDomain((1, 1), (1, 2))
        flt = RtlFilter("f", stream, out)
        values = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        forwarded = []
        for v in values:
            flt.accept(v)
            if flt.port_valid.value:
                forwarded.append(flt.consume_port())
        # Stream order: (0,0) (0,1) (0,2) (1,0) (1,1) (1,2); the
        # output domain keeps (1,1) and (1,2) -> values 14, 15.
        assert forwarded == [14.0, 15.0]
        assert flt.discarded.value == 4

    def test_filter_stall_protection(self):
        stream = BoxDomain((0,), (3,))
        flt = RtlFilter("f", stream, stream)
        flt.accept(1.0)
        assert not flt.ready
        with pytest.raises(RuntimeError):
            flt.accept(2.0)


class TestRtlRuns:
    def test_every_benchmark_matches_golden(self, small_benchmark):
        spec = small_benchmark
        grid = make_input(spec)
        system = build_memory_system(spec.analysis())
        result = simulate_rtl(spec, system, grid)
        assert np.allclose(
            result.outputs, golden_output_sequence(spec, grid)
        )

    def test_rtl_agrees_with_behavioural_simulator(
        self, denoise_small
    ):
        grid = make_input(denoise_small)
        behavioural = ChainSimulator(
            denoise_small,
            build_memory_system(denoise_small.analysis()),
            grid,
        ).run()
        rtl = simulate_rtl(
            denoise_small,
            build_memory_system(denoise_small.analysis()),
            grid,
        )
        assert np.allclose(
            rtl.outputs, behavioural.output_values()
        )
        # Per-filter forwarded counts agree module by module.
        for k, count in behavioural.stats.filter_forwarded.items():
            assert rtl.stats.filter_forwarded[f"filter{k}"] == count

    def test_multi_stream_rtl(self, denoise_small):
        grid = make_input(denoise_small)
        system = with_offchip_streams(
            build_memory_system(denoise_small.analysis()), 2
        )
        result = simulate_rtl(denoise_small, system, grid)
        assert np.allclose(
            result.outputs,
            golden_output_sequence(denoise_small, grid),
        )

    def test_union_stream_rtl_on_skewed_grid(self):
        spec = skewed_denoise(rows=6, cols=8)
        grid = make_input(spec)
        system = build_memory_system(spec.analysis(stream_mode="union"))
        result = simulate_rtl(spec, system, grid)
        assert np.allclose(
            result.outputs, golden_output_sequence(spec, grid)
        )

    def test_fifo_occupancy_reaches_capacity(self, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = simulate_rtl(denoise_small, system, grid)
        capacities = {
            f"fifo{f.fifo_id}": f.capacity for f in system.fifos
        }
        for name, occ in result.stats.fifo_max_occupancy.items():
            assert occ == capacities[name]

    def test_undersized_fifo_deadlocks_at_rtl(self, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        from repro.rtl.design import RtlDesign

        design = RtlDesign(denoise_small, system, grid)
        big = max(
            (
                fifo
                for seg in design.segments
                for fifo in seg.fifos
            ),
            key=lambda f: f.capacity,
        )
        big.capacity -= 1
        with pytest.raises(RtlDeadlockError):
            design.run()


class TestWaveform:
    def test_vcd_dump_structure(self, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = simulate_rtl(
            denoise_small, system, grid, dump_waveform=True
        )
        text = result.dump.render()
        assert text.startswith("$timescale")
        assert "$enddefinitions $end" in text
        assert "filter0_in_d0" in text
        assert "#1" in text

    def test_vcd_records_only_changes(self):
        dump = WaveformDump()
        s = Signal("x", 0)
        dump.watch(s)
        dump.sample(1)
        dump.sample(2)  # no change
        s.value = 3
        dump.sample(3)
        assert len(dump.changes) == 2

    def test_vcd_write(self, tmp_path, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = simulate_rtl(
            denoise_small, system, grid, dump_waveform=True
        )
        path = tmp_path / "wave.vcd"
        result.dump.write(str(path))
        assert path.read_text().startswith("$timescale")
