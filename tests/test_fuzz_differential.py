"""Seeded differential-fuzz smoke: random stencil specs vs the golden
reference.

The named benchmarks only cover a handful of window shapes; this module
draws ~30 random specs (1D/2D/3D grids, random window offsets, random
weights, random boundary modes) from one fixed seed and checks the
microarchitecture's load-bearing invariants on every one:

* the cycle-level chain simulator emits exactly the golden output
  sequence (bit-for-bit iteration order, value-close results);
* the run is fully pipelined at II = 1 — total cycles equal the
  streamed-element count, per Section 3.3.2's stream-bound argument;
* the n-1 non-uniform FIFO capacities sum to the theoretical minimum
  total buffer (the max reuse distance between the earliest and latest
  references) — the paper's headline Theorem 1 equality;
* boundary handling (pad + run + crop) agrees between the golden path
  and the simulator for every padding mode.

Everything replays from ``FUZZ_SEED``; a failure message names the
spec's case index so one case can be re-run in isolation.
"""

import random

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.stencil.boundary import (
    run_with_boundary,
    simulate_with_boundary,
)
from repro.stencil.expr import weighted_sum
from repro.stencil.golden import golden_output_sequence
from repro.stencil.spec import StencilSpec, StencilWindow

pytestmark = pytest.mark.fuzz

FUZZ_SEED = 20260807
N_CASES = 30
BOUNDARY_CASES = 8
BOUNDARY_MODES = ("edge", "constant", "reflect")


def _random_window(rng, dim):
    """A random unique offset set whose span fits a small grid."""
    # Offsets live in [-2, 2]^dim: never ask for more unique points
    # than that cube holds (1D has only five).
    n_points = rng.randint(2, min(6 if dim < 3 else 4, 5 ** dim - 1))
    offsets = set()
    while len(offsets) < n_points:
        offsets.add(
            tuple(rng.randint(-2, 2) for _ in range(dim))
        )
    return StencilWindow.from_offsets(sorted(offsets))


def _random_spec(rng, index):
    dim = rng.choice([1, 1, 2, 2, 2, 3])  # bias toward 2D (the paper)
    window = _random_window(rng, dim)
    mins, maxs = window.span()
    grid = tuple(
        # Span + a random margin, kept tiny so 30 sims stay fast.
        (maxs[j] - mins[j] + 1) + rng.randint(2, 6 if dim < 3 else 3)
        for j in range(dim)
    )
    weights = [
        (offset, round(rng.uniform(-2.0, 2.0), 3))
        for offset in window.offsets
    ]
    return StencilSpec(
        name=f"FUZZ_{index}",
        grid=grid,
        window=window,
        expression=weighted_sum(weights, "A"),
    )


def _random_grid(rng, spec):
    values = [
        round(rng.uniform(-10.0, 10.0), 4)
        for _ in range(int(np.prod(spec.grid)))
    ]
    return np.array(values, dtype=float).reshape(spec.grid)


def _cases():
    rng = random.Random(FUZZ_SEED)
    return [
        (k, _random_spec(rng, k), rng.getstate())
        for k in range(N_CASES)
    ]


_CASES = _cases()


@pytest.mark.parametrize(
    "index,spec,rng_state",
    _CASES,
    ids=[f"case{k}-{s.name}-{len(s.grid)}d" for k, s, _ in _CASES],
)
def test_random_spec_matches_golden_at_full_throughput(
    index, spec, rng_state
):
    rng = random.Random()
    rng.setstate(rng_state)
    grid = _random_grid(rng, spec)
    analysis = spec.analysis()

    # Theorem 1 equality: the n-1 non-uniform FIFOs are collectively
    # *optimal* — their sizes sum to the minimum total reuse buffer.
    assert sum(analysis.fifo_capacities()) == (
        analysis.minimum_total_buffer()
    ), f"case {index}: FIFO total != minimum buffer"

    system = build_memory_system(analysis)
    result = ChainSimulator(spec, system, grid).run()
    golden = golden_output_sequence(spec, grid)
    assert len(result.outputs) == len(golden), (
        f"case {index}: output count mismatch"
    )
    assert np.allclose(result.output_values(), golden), (
        f"case {index}: simulated values diverge from golden"
    )
    iters = result.output_iterations()
    assert iters == sorted(iters), (
        f"case {index}: outputs left lexicographic order"
    )
    # Full pipelining for *every* random window, not just the
    # benchmarks: the run is stream-bound — total cycles exceed the
    # streamed-element count only by the pipeline drain, which the
    # reuse window bounds.  An II of 2 would roughly double the cycle
    # count, so this *is* the II = 1 claim.  (The exact equality the
    # benchmark tests assert needs the window's latest reference to
    # coincide with the stream tail; random windows with
    # strictly-negative latest offsets drain a little.  Likewise the
    # mean inter-output gap is turnaround-dominated on grids this
    # tiny, so it is not asserted here.)
    # (The stream may also cut off early when no output needs its
    # tail, so the lower bound is the elements *actually* streamed.)
    streamed = system.stream_domain.count()
    fetched = max(result.stats.elements_streamed_per_segment)
    assert fetched <= result.stats.total_cycles <= (
        streamed + analysis.minimum_total_buffer() + 8
    ), f"case {index}: not stream-bound (II > 1 behavior)"
    # FIFO occupancy never exceeds the non-uniform capacities the
    # analysis sized (Table 2's sizes are sufficient, not just minimal).
    for fifo_id, occupancy in (
        result.stats.fifo_max_occupancy.items()
    ):
        assert occupancy <= result.stats.fifo_capacity[fifo_id], (
            f"case {index}: FIFO {fifo_id} overflowed its "
            "analysis-sized capacity"
        )


@pytest.mark.parametrize(
    "index,spec,rng_state",
    _CASES[:BOUNDARY_CASES],
    ids=[
        f"case{k}-{BOUNDARY_MODES[k % len(BOUNDARY_MODES)]}"
        for k, _, _ in _CASES[:BOUNDARY_CASES]
    ],
)
def test_random_spec_boundary_modes_agree(index, spec, rng_state):
    rng = random.Random()
    rng.setstate(rng_state)
    grid = _random_grid(rng, spec)
    mode = BOUNDARY_MODES[index % len(BOUNDARY_MODES)]
    constant = round(rng.uniform(-5.0, 5.0), 3)
    golden = run_with_boundary(
        spec, grid, mode=mode, constant_value=constant
    )
    simulated, stats = simulate_with_boundary(
        spec, grid, mode=mode, constant_value=constant
    )
    assert simulated.shape == tuple(spec.grid)
    assert np.allclose(simulated, golden), (
        f"case {index}: boundary mode {mode!r} diverges"
    )


def test_fuzz_corpus_is_stable():
    """The seed pins the corpus: shapes drawn today replay forever."""
    rng = random.Random(FUZZ_SEED)
    first = _random_spec(rng, 0)
    rng = random.Random(FUZZ_SEED)
    again = _random_spec(rng, 0)
    assert first.grid == again.grid
    assert first.window.offsets == again.window.offsets


# ----------------------------------------------------------------------
# Compiled vs interpreted vs golden on the newly-lowered shapes
# (skewed polyhedral domains, multi-stream partitions) plus random
# multi-array kernels against their golden reference.
# ----------------------------------------------------------------------

SKEWED_CASES = 8
STREAM_CASES = 8
MULTI_CASES = 6


def _compiled_digest(spec, seed, streams=1, gather_limit=None):
    """SHA-256 of the lowered kernel's output row (the service's
    compiled path in miniature: plan -> bufferize -> convert -> run)."""
    import hashlib

    import numpy as _np

    from repro.lower import bufferize_plan, convert
    from repro.service.executor import compile_plan
    from repro.service.fingerprint import CompileOptions, fingerprint
    from repro.stencil import make_input

    opts = CompileOptions(offchip_streams=streams)
    plan = compile_plan(spec, opts, fingerprint(spec, opts))
    program = bufferize_plan(plan)
    kwargs = {} if gather_limit is None else {
        "gather_limit": gather_limit
    }
    kernel = convert(program, **kwargs)
    row = _np.ascontiguousarray(
        kernel.run(make_input(spec, seed=seed)), dtype=_np.float64
    )
    return hashlib.sha256(row.tobytes()).hexdigest()


def _interpreted_digest(spec, seed):
    from repro.service.executor import execute_stencil

    _, _, digest = execute_stencil(spec, seed)
    return digest


def _random_skewed_spec(rng, index):
    """A random kernel over a Fig 9-style parallelogram domain
    ``{1 <= i <= rows, i + 1 <= j <= i + cols}`` — reuse distances
    change dynamically, so lowering takes the gather path."""
    from repro.polyhedral.domain import IntegerPolyhedron

    n_points = rng.randint(2, 5)
    offsets = {(0, 0)}
    while len(offsets) < n_points:
        offsets.add((rng.randint(-1, 1), rng.randint(-1, 1)))
    window = StencilWindow.from_offsets(sorted(offsets))
    weights = [
        (o, round(rng.uniform(-2.0, 2.0), 3)) for o in window.offsets
    ]
    rows = rng.randint(4, 9)
    cols = rng.randint(4, 9)
    domain = IntegerPolyhedron(
        coefficients=[(1, 0), (-1, 0), (1, -1), (-1, 1)],
        bounds=[rows, -1, -1, cols],
    )
    return StencilSpec(
        name=f"FUZZ_SKEW_{index}",
        grid=(rows + 2, rows + cols + 2),
        window=window,
        expression=weighted_sum(weights, "A"),
        iteration_domain=domain,
    )


def _skewed_cases():
    rng = random.Random(FUZZ_SEED + 1)
    return [
        (k, _random_skewed_spec(rng, k)) for k in range(SKEWED_CASES)
    ]


_SKEWED = _skewed_cases()


@pytest.mark.parametrize(
    "index,spec",
    _SKEWED,
    ids=[f"skew{k}" for k, _ in _SKEWED],
)
def test_random_skewed_spec_compiled_matches_interpreted(index, spec):
    """Three-way differential on random skewed domains: the compiled
    kernel (eager AND chunked gather) must emit byte-for-byte what the
    interpreted path emits, which in turn is the golden sequence."""
    golden = _interpreted_digest(spec, seed=index)
    assert _compiled_digest(spec, seed=index) == golden, (
        f"skewed case {index}: eager compiled digest diverges"
    )
    assert _compiled_digest(spec, seed=index, gather_limit=2) == (
        golden
    ), f"skewed case {index}: chunked compiled digest diverges"


_STREAMABLE = [
    (k, spec)
    for k, spec, _ in _CASES
    if spec.window.n_points >= 3
][:STREAM_CASES]


@pytest.mark.parametrize(
    "index,spec",
    _STREAMABLE,
    ids=[f"case{k}-streams" for k, _ in _STREAMABLE],
)
def test_random_spec_multi_stream_compiled_matches_interpreted(
    index, spec
):
    """Multi-stream plans (per-stream sub-programs) over the random
    corpus: the stream split must never change a single output bit."""
    golden = _interpreted_digest(spec, seed=index)
    for streams in (2, min(3, spec.window.n_points)):
        assert _compiled_digest(spec, seed=index, streams=streams) == (
            golden
        ), (
            f"case {index}: {streams}-stream compiled digest "
            "diverges from interpreted/golden"
        )


def _random_multi_spec(rng, index):
    """A random two-array kernel (one memory system per array)."""
    from repro.stencil.expr import Ref
    from repro.stencil.multi import MultiArraySpec

    expr = None
    for array in ("A", "B"):
        n_points = rng.randint(1, 3)
        offsets = set()
        while len(offsets) < n_points:
            offsets.add((rng.randint(-1, 1), rng.randint(-1, 1)))
        for offset in sorted(offsets):
            term = round(rng.uniform(-2.0, 2.0), 3) * Ref(
                offset, array
            )
            expr = term if expr is None else expr + term
    grid = (rng.randint(6, 10), rng.randint(6, 10))
    return MultiArraySpec(f"FUZZ_MULTI_{index}", grid, expr)


def _multi_cases():
    rng = random.Random(FUZZ_SEED + 2)
    return [
        (k, _random_multi_spec(rng, k)) for k in range(MULTI_CASES)
    ]


_MULTI = _multi_cases()


@pytest.mark.parametrize(
    "index,spec",
    _MULTI,
    ids=[f"multi{k}" for k, _ in _MULTI],
)
def test_random_multi_array_spec_matches_golden(index, spec):
    """Random multi-array kernels: one simulated memory system per
    array, outputs matching the golden sequence in lex order."""
    from repro.sim.multi import MultiArraySimulator
    from repro.stencil.multi import golden_multi_sequence, make_inputs

    grids = make_inputs(spec, seed=index)
    result = MultiArraySimulator(spec, grids).run()
    golden = golden_multi_sequence(spec, grids)
    assert len(result.outputs) == len(golden), (
        f"multi case {index}: output count mismatch"
    )
    assert np.allclose(result.output_values(), golden), (
        f"multi case {index}: simulated values diverge from golden"
    )


# ----------------------------------------------------------------------
# Chained non-uniform accelerators vs the uniform-banked baseline
# simulator — two *independent* implementations, not a golden oracle.
# ----------------------------------------------------------------------

CHAIN_CASES = 8


def _random_chain_pair(rng, index):
    """A random 2D producer/consumer pair that composes cleanly.

    The producer gets a generous grid margin and the consumer a tight
    [-1, 1] window so the consumer always fits the producer's
    iteration-domain box after :func:`compose_consumer` re-grids it.
    """
    producer_window = _random_window(rng, 2)
    mins, maxs = producer_window.span()
    grid = tuple(
        (maxs[j] - mins[j] + 1) + rng.randint(6, 9) for j in range(2)
    )
    producer = StencilSpec(
        name=f"FUZZ_PROD_{index}",
        grid=grid,
        window=producer_window,
        expression=weighted_sum(
            [
                (o, round(rng.uniform(-2.0, 2.0), 3))
                for o in producer_window.offsets
            ],
            "A",
        ),
    )
    n_points = rng.randint(2, 5)
    offsets = set()
    while len(offsets) < n_points:
        offsets.add((rng.randint(-1, 1), rng.randint(-1, 1)))
    consumer_window = StencilWindow.from_offsets(sorted(offsets))
    consumer = StencilSpec(
        name=f"FUZZ_CONS_{index}",
        grid=grid,  # replaced by compose_consumer
        window=consumer_window,
        expression=weighted_sum(
            [
                (o, round(rng.uniform(-2.0, 2.0), 3))
                for o in consumer_window.offsets
            ],
            "A",
        ),
    )
    return producer, consumer


def _chain_cases():
    rng = random.Random(FUZZ_SEED + 3)
    return [
        (k, *_random_chain_pair(rng, k), rng.getstate())
        for k in range(CHAIN_CASES)
    ]


_CHAIN = _chain_cases()


@pytest.mark.parametrize(
    "index,producer,consumer,rng_state",
    _CHAIN,
    ids=[f"chain{k}" for k, *_ in _CHAIN],
)
def test_random_chain_matches_uniform_baseline(
    index, producer, consumer, rng_state
):
    """Differential: the chained non-uniform pipeline vs two passes of
    the uniform-banked baseline simulator with the reshape hand-off
    done by hand.  Both are cycle-level machines built from different
    partitioning theories, so agreement here checks the *chaining*
    logic itself, not just each stage against the golden reference."""
    from repro.integration.chaining import (
        chain_accelerators,
        compose_consumer,
        intermediate_grid_shape,
    )
    from repro.partitioning.cyclic import plan_cyclic
    from repro.sim.baseline import run_uniform_plan

    rng = random.Random()
    rng.setstate(rng_state)
    grid = _random_grid(rng, producer)

    chained = chain_accelerators(producer, consumer, grid)

    first = run_uniform_plan(
        producer, plan_cyclic(producer.analysis()), grid
    )
    intermediate = np.array(
        first.output_values(), dtype=np.float64
    ).reshape(intermediate_grid_shape(producer))
    assert np.allclose(chained.intermediate, intermediate), (
        f"chain case {index}: stage-1 hand-off diverges between "
        "chain and baseline simulators"
    )
    composed = compose_consumer(producer, consumer)
    second = run_uniform_plan(
        composed, plan_cyclic(composed.analysis()), intermediate
    )
    assert np.allclose(
        chained.final.ravel(), second.output_values()
    ), (
        f"chain case {index}: final outputs diverge between chain "
        "and baseline simulators"
    )
