"""Table 2 — non-uniform reuse-FIFO sizes and physical mapping for the
DENOISE example (768x1024 grid, 5-point window).

Paper values: FIFO 0/3 = 1023 elements in block RAM, FIFO 1/2 = 1
element in registers, total 2048.
"""

from conftest import emit

from repro.flow.report import format_table, table2_report
from repro.microarch.memory_system import build_memory_system
from repro.partitioning.nonuniform import plan_nonuniform
from repro.stencil.kernels import DENOISE

PAPER_SIZES = [1023, 1, 1, 1023]
PAPER_IMPLS = ["block", "register", "register", "block"]


def bench_table2_plan_generation(benchmark):
    """Benchmark the full analysis + planning pipeline for DENOISE."""

    def build():
        analysis = DENOISE.analysis()
        return plan_nonuniform(analysis)

    plan = benchmark(build)
    assert plan.fifo_capacities() == PAPER_SIZES
    assert plan.total_size == 2048

    rows = table2_report(DENOISE)
    assert [r["size"] for r in rows] == PAPER_SIZES
    assert [r["physical_impl"] for r in rows] == PAPER_IMPLS
    emit(
        "Table 2 — reuse FIFOs with non-uniform sizes (DENOISE)",
        format_table(rows)
        + f"\ntotal reuse buffer size: {plan.total_size} elements "
        "(paper: 2048)",
    )


def bench_table2_memory_system_build(benchmark):
    """Benchmark netlist construction from a finished analysis."""
    analysis = DENOISE.analysis()
    analysis.adjacent_pairs()  # warm the caches

    system = benchmark(build_memory_system, analysis)
    assert system.num_banks == 4
    assert system.total_buffer_size == 2048
