"""End-to-end checks of the paper's concrete evaluation artifacts.

Each test pins one number or relationship the paper states explicitly,
at the paper's own scale.  These are the repository's ground truth for
EXPERIMENTS.md.
"""

import pytest

from repro.flow.report import (
    average_reduction,
    table4_report,
    table5_report,
)
from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import tradeoff_curve
from repro.partitioning.cyclic import minimum_banks_linear
from repro.partitioning.gmp import plan_gmp
from repro.partitioning.nonuniform import plan_nonuniform
from repro.stencil.kernels import (
    DENOISE,
    PAPER_BENCHMARKS,
    SEGMENTATION_3D,
)


class TestSection2Targets:
    """Section 2.3: the three optimal design targets for DENOISE."""

    def test_minimum_buffer_size_2048(self):
        # "the minimum size of the data reuse buffer for array A will
        # be 2048" (A[2][2] spans 2048 cycles of lifetime).
        assert DENOISE.analysis().minimum_total_buffer() == 2048

    def test_minimum_banks_4(self):
        # "n = 5 indicates that we need at least four memory banks"
        assert DENOISE.analysis().minimum_banks() == 4

    def test_element_lifetime_matches_reuse_window(self):
        """A[2][2] is touched first by A[i+1][j] (at i=(1,2)) and last
        by A[i-1][j] (at i=(3,2)), 2048 stream elements later."""
        from repro.polyhedral.reuse import max_reuse_distance

        analysis = DENOISE.analysis()
        assert (
            max_reuse_distance(
                analysis.earliest,
                analysis.latest,
                analysis.iteration_domain,
                analysis.stream_domain(),
            )
            == 2048
        )


class TestTable2:
    """Table 2 verbatim: FIFO sizes and implementations for DENOISE."""

    def test_fifo_rows(self):
        system = build_memory_system(DENOISE.analysis())
        rows = system.table2_rows()
        expected = [
            ("FIFO 0", "A[i+1][j]", "A[i][j+1]", 1023, "block"),
            ("FIFO 1", "A[i][j+1]", "A[i][j]", 1, "register"),
            ("FIFO 2", "A[i][j]", "A[i][j-1]", 1, "register"),
            ("FIFO 3", "A[i][j-1]", "A[i-1][j]", 1023, "block"),
        ]
        got = [
            (
                r["fifo_id"],
                r["precedent"],
                r["successive"],
                r["size"],
                r["physical_impl"],
            )
            for r in rows
        ]
        assert got == expected

    def test_total_size_2048(self):
        system = build_memory_system(DENOISE.analysis())
        assert system.total_buffer_size == 2048


class TestFig5:
    """Fig 5: [5]'s bank count varies with row size, 5 at best."""

    def test_banks_vary_and_bottom_at_5(self):
        offsets = DENOISE.window.offsets
        counts = {
            minimum_banks_linear(offsets, (768, w))
            for w in range(1018, 1033)
        }
        assert 5 in counts
        assert len(counts) > 1
        assert min(counts) == 5


class TestFig6:
    """Fig 6: windows where uniform schemes exceed the n-bank bound
    while ours stays at n - 1."""

    @pytest.mark.parametrize(
        "name,expected_uniform",
        [("RICIAN", 5), ("BICUBIC", 5)],
    )
    def test_uniform_needs_n_plus_1(self, name, expected_uniform):
        from repro.stencil.kernels import BENCHMARKS_BY_NAME

        spec = BENCHMARKS_BY_NAME[name]
        plan = plan_gmp(spec.analysis())
        assert plan.num_banks == expected_uniform
        assert plan.num_banks > spec.n_points

    def test_ours_always_n_minus_1(self):
        for name in ("RICIAN", "BICUBIC", "SEGMENTATION_3D"):
            from repro.stencil.kernels import BENCHMARKS_BY_NAME

            spec = BENCHMARKS_BY_NAME[name]
            plan = plan_nonuniform(spec.analysis())
            assert plan.num_banks == spec.n_points - 1


class TestTable4:
    """Table 4: our method saves banks on all six benchmarks, never
    needs padding, and never uses more storage."""

    def test_all_rows(self):
        rows = table4_report(PAPER_BENCHMARKS)
        assert len(rows) == 6
        for row in rows:
            assert row["banks_ours"] == row["original_ii"] - 1
            assert row["banks_ours"] < row["banks_gmp"]
            assert row["size_ours"] <= row["size_gmp"]

    def test_no_padding_in_ours(self):
        """Our totals equal the exact reuse window — no padding
        overhead ever."""
        for spec in PAPER_BENCHMARKS:
            analysis = spec.analysis()
            plan = plan_nonuniform(analysis)
            assert (
                plan.total_size == analysis.minimum_total_buffer()
            )

    def test_padding_overhead_grows_in_3d(self):
        rows = {
            r["benchmark"]: r for r in table4_report(PAPER_BENCHMARKS)
        }
        overhead_2d = (
            rows["DENOISE"]["size_gmp"] / rows["DENOISE"]["size_ours"]
        )
        overhead_3d = (
            rows["SEGMENTATION_3D"]["size_gmp"]
            / rows["SEGMENTATION_3D"]["size_ours"]
        )
        assert overhead_3d > overhead_2d


class TestTable5:
    """Table 5's qualitative content under our resource model."""

    def test_directional_results(self):
        rows = table5_report(PAPER_BENCHMARKS)
        for row in rows:
            assert row["bram_ours"] < row["bram_gmp"], row
            assert row["slice_ours"] < row["slice_gmp"], row
            assert row["dsp_ours"] == 0
            assert row["dsp_gmp"] > 0
            assert row["cp_ours"] <= row["cp_gmp"]
            assert row["cp_ours"] <= 5.0

    def test_average_reductions_substantial(self):
        rows = table5_report(PAPER_BENCHMARKS)
        bram_red = average_reduction(rows, "bram_ours", "bram_gmp")
        slice_red = average_reduction(rows, "slice_ours", "slice_gmp")
        # The paper reports 66% BRAM / 25% slice savings; our model
        # reproduces the direction with substantial margins.
        assert bram_red > 20.0
        assert slice_red > 20.0


class TestFig15:
    """Fig 15: graceful buffer degradation with extra bandwidth."""

    def test_segmentation_sweep_1_to_18(self):
        system = build_memory_system(SEGMENTATION_3D.analysis())
        curve = tradeoff_curve(system)
        assert [p.offchip_accesses_per_cycle for p in curve] == list(
            range(1, 19)
        )

    def test_three_phase_structure(self):
        system = build_memory_system(SEGMENTATION_3D.analysis())
        curve = tradeoff_curve(system)
        drops = [
            a.total_buffer_size - b.total_buffer_size
            for a, b in zip(curve, curve[1:])
        ]
        # Inter-plane reuse (~grid plane) goes first, then inter-row
        # (~grid row), then intra-row (a few elements).
        plane = 128 * 128
        row = 128
        assert drops[0] > plane / 2
        assert drops[1] > plane / 2
        assert all(row / 2 < d < plane / 2 for d in drops[2:8])
        assert all(d < row / 2 for d in drops[8:])

    def test_last_point_is_one_element(self):
        system = build_memory_system(SEGMENTATION_3D.analysis())
        curve = tradeoff_curve(system)
        assert curve[-1].total_buffer_size == 1
