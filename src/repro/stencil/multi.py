"""Multi-array stencil kernels (the full Fig 3 architecture).

The paper's overall architecture contains "multiple memory systems, and
each is optimized to a data array with stencil accesses.  Since there
are no reuse opportunities among different data arrays, the memory
systems for different arrays are independent of each other."

:class:`MultiArraySpec` describes a kernel whose expression reads any
number of input arrays, each with its own stencil window; one memory
system is generated per array and all of them feed the same computation
kernel.  Real kernels of this shape include the full RICIAN update
(image + previous-iterate arrays) and frame-difference kernels
(two video frames).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..polyhedral.access import ArrayReference
from ..polyhedral.analysis import StencilAnalysis
from ..polyhedral.domain import BoxDomain, IntegerPolyhedron
from ..polyhedral.lexorder import Vector, as_vector
from .expr import Expr, collect_refs, evaluate
from .spec import StencilWindow


@dataclass(frozen=True)
class MultiArraySpec:
    """A stencil kernel over several input arrays on one shared grid.

    All arrays live on the same grid shape (the common case: multiple
    fields over one physical domain) and are indexed by the same
    iteration vector plus per-reference constant offsets.

    Parameters
    ----------
    name:
        Kernel name.
    grid:
        Shared grid extents, outermost first.
    expression:
        Kernel body; its :class:`~repro.stencil.expr.Ref` leaves define
        the per-array windows.
    output_array:
        Name for the produced array.
    iteration_domain:
        Optional custom domain; defaults to the interior where every
        reference of every array stays in bounds.
    """

    name: str
    grid: Vector
    expression: Expr
    output_array: str = "OUT"
    iteration_domain: Optional[IntegerPolyhedron] = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", as_vector(self.grid))
        refs = collect_refs(self.expression)
        if not refs:
            raise ValueError("expression references no arrays")
        dims = {len(r.offset) for r in refs}
        if len(dims) != 1:
            raise ValueError("references disagree on dimensionality")
        dim = dims.pop()
        if dim != len(self.grid):
            raise ValueError(
                f"grid has {len(self.grid)} dims but references have "
                f"{dim}"
            )
        if any(g <= 0 for g in self.grid):
            raise ValueError("grid extents must be positive")
        arrays = sorted({r.array for r in refs})
        if self.output_array in arrays:
            raise ValueError(
                "output array name collides with an input array"
            )
        object.__setattr__(self, "_input_arrays", tuple(arrays))
        if self.iteration_domain is None:
            object.__setattr__(
                self, "iteration_domain", self._default_domain()
            )
        if self.iteration_domain.dim != dim:
            raise ValueError("iteration domain dimensionality mismatch")

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.grid)

    @property
    def input_arrays(self) -> Tuple[str, ...]:
        """Input array names, sorted."""
        return self._input_arrays  # type: ignore[attr-defined]

    def window(self, array: str) -> StencilWindow:
        """The stencil window of one input array."""
        offsets = [
            r.offset
            for r in collect_refs(self.expression)
            if r.array == array
        ]
        if not offsets:
            raise KeyError(f"no references to array {array!r}")
        return StencilWindow.from_offsets(offsets)

    def total_references(self) -> int:
        """Window points summed over all arrays (the kernel's port
        count)."""
        return len(collect_refs(self.expression))

    def _default_domain(self) -> BoxDomain:
        lows = [0] * self.dim
        highs = [g - 1 for g in self.grid]
        for ref in collect_refs(self.expression):
            for j, d in enumerate(ref.offset):
                lows[j] = max(lows[j], -d)
                highs[j] = min(highs[j], self.grid[j] - 1 - d)
        for lo, hi in zip(lows, highs):
            if lo > hi:
                raise ValueError(
                    "grid too small for the union of all windows"
                )
        return BoxDomain(lows, highs)

    # ------------------------------------------------------------------
    def references(self, array: str) -> List[ArrayReference]:
        """References of one array in descending lex offset order."""
        return [
            ArrayReference(array, o) for o in self.window(array).offsets
        ]

    def analysis(
        self, array: str, stream_mode: str = "hull"
    ) -> StencilAnalysis:
        """Per-array stencil analysis (one memory system per array)."""
        return StencilAnalysis(
            array,
            self.references(array),
            self.iteration_domain,
            stream_mode=stream_mode,
        )

    def analyses(
        self, stream_mode: str = "hull"
    ) -> Dict[str, StencilAnalysis]:
        return {
            a: self.analysis(a, stream_mode) for a in self.input_arrays
        }

    def __str__(self) -> str:
        dims = "x".join(str(g) for g in self.grid)
        parts = ", ".join(
            f"{a}:{self.window(a).n_points}pt" for a in self.input_arrays
        )
        return f"{self.name}: multi-array stencil ({parts}) on {dims}"


def make_inputs(
    spec: MultiArraySpec, seed: int = 2014
) -> Dict[str, np.ndarray]:
    """Deterministic input grids, one per input array."""
    rng = np.random.default_rng(seed)
    return {
        array: rng.uniform(0.0, 255.0, size=spec.grid)
        for array in spec.input_arrays
    }


def run_golden_multi(
    spec: MultiArraySpec, grids: Dict[str, np.ndarray]
) -> np.ndarray:
    """Vectorized golden output over the (box) iteration domain."""
    domain = spec.iteration_domain
    if not isinstance(domain, BoxDomain):
        raise TypeError(
            "vectorized multi-array golden needs a box domain"
        )
    missing = set(spec.input_arrays) - set(grids)
    if missing:
        raise ValueError(f"missing input grids for {sorted(missing)}")
    env = {}
    for ref in collect_refs(spec.expression):
        grid = grids[ref.array]
        if tuple(grid.shape) != tuple(spec.grid):
            raise ValueError(
                f"grid for {ref.array!r} has shape {grid.shape}, "
                f"expected {spec.grid}"
            )
        slices = tuple(
            slice(lo + d, hi + d + 1)
            for lo, hi, d in zip(domain.lows, domain.highs, ref.offset)
        )
        env[(ref.array, ref.offset)] = grid[slices]
    return np.asarray(evaluate(spec.expression, env))


def golden_multi_sequence(
    spec: MultiArraySpec, grids: Dict[str, np.ndarray]
) -> List[float]:
    """Golden outputs as the flat lexicographic sequence."""
    return [float(v) for v in run_golden_multi(spec, grids).ravel()]
