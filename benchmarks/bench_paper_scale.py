"""Extension — the full paper-scale DENOISE run, cycle by cycle.

Simulates the actual 768x1024 grid of Fig 1/2 (786 432 streamed words,
~783 k outputs) once, verifying at the paper's own scale:

* function correctness against the vectorized NumPy reference,
* the Table 3 fill point — all five ports first valid right after
  A[2][1] streams in (stream rank 2*1024 + 2; the paper's "cycle 2049"
  counts from A[0][1] with inter-module latency ignored),
* full pipelining: total cycles == the closed-form stream-bound count,
* tight FIFOs: both 1023-element FIFOs reach exactly full occupancy.

Run once per session (pedantic benchmark, 1 round).
"""

import numpy as np

from conftest import emit

from repro.flow.performance import predict
from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import make_input, run_golden
from repro.stencil.kernels import DENOISE


def bench_denoise_full_scale(benchmark):
    grid = make_input(DENOISE)
    system = build_memory_system(DENOISE.analysis())

    def run():
        return ChainSimulator(DENOISE, system, grid).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    golden = run_golden(DENOISE, grid).ravel()
    assert result.stats.outputs_produced == golden.size == 766 * 1022
    assert np.allclose(result.output_values(), golden)

    prediction = predict(DENOISE)
    assert result.stats.total_cycles == prediction.total_cycles
    # Fill point: the earliest reference's first element A[2][1] has
    # stream rank 2*1024 + 2; the first output fires the cycle after.
    assert result.stats.first_output_cycle == 2 * 1024 + 2 + 1
    # Tight FIFOs fill completely.
    for fid, cap in result.stats.fifo_capacity.items():
        assert result.stats.fifo_max_occupancy[fid] == cap

    emit(
        "Paper-scale DENOISE (768x1024) cycle-level run",
        f"outputs: {result.stats.outputs_produced}\n"
        f"total cycles: {result.stats.total_cycles} "
        f"(predicted {prediction.total_cycles})\n"
        f"first output at cycle {result.stats.first_output_cycle} "
        "(paper's Table 3 fill point, latency-accurate)\n"
        f"FIFO max occupancy: {result.stats.fifo_max_occupancy} "
        f"of {result.stats.fifo_capacity}",
    )
