"""Execution-flow tracing in the format of the paper's Table 3.

Each recorded cycle captures: the element entering the chain from the
off-chip stream, every data filter's status (``f`` forwarding, ``d``
discarding, ``s`` stalled, ``.`` idle), and every reuse FIFO's occupancy.
The rendered table makes the automatic buffer-filling process (Section
3.4.1) directly visible and comparable against Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class TraceRow:
    """One cycle of the execution-flow trace."""

    cycle: int
    stream_label: Optional[str]
    filter_statuses: tuple
    fifo_occupancy: Dict[int, int]


class TraceRecorder:
    """Collects per-cycle rows, bounded by ``max_cycles``."""

    def __init__(self, max_cycles: int = 4096) -> None:
        if max_cycles < 1:
            raise ValueError("max_cycles must be positive")
        self.max_cycles = max_cycles
        self.rows: List[TraceRow] = []

    def record(
        self,
        cycle: int,
        stream_label: Optional[str],
        filter_statuses: Sequence[str],
        fifo_occupancy: Dict[int, int],
    ) -> None:
        if len(self.rows) >= self.max_cycles:
            return
        self.rows.append(
            TraceRow(
                cycle=cycle,
                stream_label=stream_label,
                filter_statuses=tuple(filter_statuses),
                fifo_occupancy=dict(fifo_occupancy),
            )
        )

    # ------------------------------------------------------------------
    def first_cycle_with_status(
        self, filter_id: int, status: str
    ) -> Optional[int]:
        """First cycle a given filter shows a given status (used to
        check the filling order of Table 3)."""
        for row in self.rows:
            if (
                filter_id < len(row.filter_statuses)
                and row.filter_statuses[filter_id] == status
            ):
                return row.cycle
        return None

    def fifo_fill_cycle(self, fifo_id: int) -> Optional[int]:
        """First cycle a FIFO reaches its maximum observed occupancy."""
        peak = max(
            (row.fifo_occupancy.get(fifo_id, 0) for row in self.rows),
            default=0,
        )
        if peak == 0:
            return None
        for row in self.rows:
            if row.fifo_occupancy.get(fifo_id, 0) == peak:
                return row.cycle
        return None

    def occupancy_series(self, fifo_id: int) -> List[int]:
        """Per-cycle occupancy of one FIFO (skewed-grid analysis)."""
        return [
            row.fifo_occupancy.get(fifo_id, 0) for row in self.rows
        ]

    # ------------------------------------------------------------------
    def render(
        self, max_rows: Optional[int] = None, compress: bool = True
    ) -> str:
        """ASCII rendering in the style of Table 3.

        With ``compress=True``, runs of identical (statuses, occupancy)
        rows collapse into one line with a cycle range.
        """
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        if not rows:
            return "(empty trace)"
        fifo_ids = sorted(rows[0].fifo_occupancy)
        n_filters = len(rows[0].filter_statuses)
        header = (
            ["cycle", "stream"]
            + [f"flt{k}" for k in range(n_filters)]
            + [f"FIFO{j}" for j in fifo_ids]
        )
        lines = ["  ".join(f"{h:>10s}" for h in header)]

        def fmt(row: TraceRow, cycle_text: str) -> str:
            cells = [cycle_text, row.stream_label or "-"]
            cells += list(row.filter_statuses)
            cells += [str(row.fifo_occupancy.get(j, 0)) for j in fifo_ids]
            return "  ".join(f"{c:>10s}" for c in cells)

        if not compress:
            lines += [fmt(r, str(r.cycle)) for r in rows]
            return "\n".join(lines)

        def signature(row: TraceRow):
            return (row.filter_statuses, tuple(sorted(
                row.fifo_occupancy.items()
            )))

        start = 0
        while start < len(rows):
            end = start
            while (
                end + 1 < len(rows)
                and signature(rows[end + 1]) == signature(rows[start])
            ):
                end += 1
            if end == start:
                lines.append(fmt(rows[start], str(rows[start].cycle)))
            else:
                lines.append(
                    fmt(
                        rows[start],
                        f"{rows[start].cycle}-{rows[end].cycle}",
                    )
                )
            start = end + 1
        return "\n".join(lines)
