"""Metric semantics and the Prometheus / JSON exporters."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    install_metrics,
    uninstall_metrics,
)

#: One Prometheus exposition line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (\+Inf|-?[0-9.e+-]+)$"
)


@pytest.fixture(autouse=True)
def _clean_global_registry():
    uninstall_metrics()
    yield
    uninstall_metrics()


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("events_total", labels={"kind": "a"}).inc()
    reg.counter("events_total", labels={"kind": "a"}).inc(2)
    reg.counter("events_total", labels={"kind": "b"}).inc()
    reg.gauge("level").set(7.5)
    hist = reg.histogram("sizes", buckets=(1, 4, 16))
    for v in (0, 1, 3, 5, 100):
        hist.observe(v)
    return reg


class TestMetricKinds:
    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("c", labels={"x": "1"})
        assert reg.counter("c", labels={"x": "1"}) is a
        assert reg.counter("c", labels={"x": "2"}) is not a

    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        assert reg.counter("weird name/1").name == "weird_name_1"

    def test_histogram_cumulative(self):
        h = Histogram("h", (), buckets=(1, 4, 16))
        for v in (0, 1, 3, 5, 100):
            h.observe(v)
        assert h.cumulative() == [
            (1, 2), (4, 3), (16, 4), (math.inf, 5),
        ]
        assert h.count == 5
        assert h.sum == 109

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=())


class TestPrometheusExport:
    def test_every_line_parses(self):
        text = populated_registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# TYPE [a-zA-Z_:][\w:]* \w+$", line)
            else:
                assert _SAMPLE_RE.match(line), line

    def test_counter_and_gauge_samples(self):
        text = populated_registry().to_prometheus()
        assert '# TYPE events_total counter' in text
        assert 'events_total{kind="a"} 3' in text
        assert 'events_total{kind="b"} 1' in text
        assert "# TYPE level gauge" in text
        assert "level 7.5" in text

    def test_histogram_exposition(self):
        text = populated_registry().to_prometheus()
        assert "# TYPE sizes histogram" in text
        assert 'sizes_bucket{le="1"} 2' in text
        assert 'sizes_bucket{le="4"} 3' in text
        assert 'sizes_bucket{le="16"} 4' in text
        assert 'sizes_bucket{le="+Inf"} 5' in text
        assert "sizes_sum 109" in text
        assert "sizes_count 5" in text
        # le buckets are cumulative and non-decreasing.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("sizes_bucket")
        ]
        assert counts == sorted(counts)

    def test_export_file(self, tmp_path):
        path = tmp_path / "m.prom"
        populated_registry().export_prometheus(str(path))
        assert "events_total" in path.read_text()


class TestJsonSnapshot:
    def test_snapshot_round_trips(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "m.json"
        reg.export_json(str(path))
        snap = json.loads(path.read_text())
        assert snap["counters"]['events_total{kind="a"}'] == 3
        assert snap["gauges"]["level"] == 7.5
        hist = snap["histograms"]["sizes"]
        assert hist["count"] == 5
        assert hist["buckets"][-1] == ["+Inf", 5]


class TestGlobalInstall:
    def test_install_uninstall(self):
        assert get_metrics() is None
        reg = install_metrics()
        assert get_metrics() is reg
        assert uninstall_metrics() is reg
        assert get_metrics() is None
