"""Register-level elaboration and simulation of the generated chain
(the paper's Section 3.4 RTL-simulation vantage point, with control
implemented purely by Fig 10 domain counters)."""

from .components import RtlFifo, RtlFilter, RtlKernel, RtlStreamSource
from .core import (
    DomainCounter,
    RtlModule,
    RtlSimulator,
    Signal,
    WaveformDump,
)
from .design import (
    RtlDeadlockError,
    RtlDesign,
    RtlRunResult,
    RtlRunStats,
    elaborate,
    simulate_rtl,
)

__all__ = [
    "DomainCounter",
    "RtlDeadlockError",
    "RtlDesign",
    "RtlFifo",
    "RtlFilter",
    "RtlKernel",
    "RtlModule",
    "RtlRunResult",
    "RtlRunStats",
    "RtlSimulator",
    "RtlStreamSource",
    "Signal",
    "WaveformDump",
    "elaborate",
    "simulate_rtl",
]
