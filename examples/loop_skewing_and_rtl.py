"""Loop skewing + register-level simulation with waveform dump.

Combines two substrates: the unimodular transformation framework (the
paper's ref [15]) skews DENOISE by 45 degrees — producing exactly the
Fig 9 situation — and the RTL layer simulates the generated chain with
control implemented purely by Fig 10 domain counters, dumping a
VCD-style waveform of every counter, port and FIFO-occupancy signal.

Run:  python examples/loop_skewing_and_rtl.py [wave.vcd]
"""

import sys

import numpy as np

from repro.microarch.memory_system import build_memory_system
from repro.polyhedral.transform import UnimodularTransform, transform_spec
from repro.rtl.design import simulate_rtl
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE


def main() -> None:
    spec = DENOISE.with_grid((12, 16))
    skew = UnimodularTransform.skew(2, 1, 0)
    skewed = transform_spec(spec, skew)

    print(f"original : {spec}")
    print(f"  window {spec.window.offsets}")
    print(f"skewed   : {skewed}")
    print(f"  window {skewed.window.offsets}")
    print(
        f"  iteration domain still has "
        f"{skewed.iteration_domain.count()} points "
        "(unimodular => bijective)"
    )

    # Build with the exact union stream so the dynamic adaptation of
    # Fig 9 shows up in the waveform.
    system = build_memory_system(skewed.analysis(stream_mode="union"))
    print()
    print(
        f"memory system: {system.num_banks} FIFOs "
        f"{system.fifo_capacities()}, total "
        f"{system.total_buffer_size} elements"
    )

    grid = make_input(skewed)
    result = simulate_rtl(skewed, system, grid, dump_waveform=True)
    golden = golden_output_sequence(skewed, grid)
    assert np.allclose(result.outputs, golden)
    print(
        f"RTL simulation: {result.stats.total_cycles} cycles, "
        f"{result.stats.outputs_produced} outputs, counter-driven "
        "filtering matches golden ✓"
    )
    print("per-filter forwarded:", result.stats.filter_forwarded)
    print("FIFO peak occupancy :", result.stats.fifo_max_occupancy)

    path = sys.argv[1] if len(sys.argv) > 1 else None
    text = result.dump.render()
    print(
        f"waveform: {len(result.dump.signals)} signals, "
        f"{len(result.dump.changes)} value changes"
    )
    if path:
        result.dump.write(path)
        print(f"wrote {path}")
    else:
        print("first waveform lines:")
        for line in text.splitlines()[:12]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
