"""Bufferize: lower a compiled plan to a :class:`BufferProgram`.

The value-lowering split (after the xdsl stencil rationale): this stage
resolves everything *symbolic* — window offsets, the expression tree,
the iteration domain, the plan's non-uniform FIFO partition — into flat
integers and a linear op list, and nothing here depends on NumPy or on
how the program will eventually execute.

The stage also ties the lowering back to the paper: for a single-stream
plan, the flat distance between lexicographically adjacent window reads
over the stream hull *is* the max reuse distance of Theorem 1, so the
list of adjacent flat deltas must equal the plan's
``fifo_capacities``.  A plan whose partition disagrees with the flat
reuse offsets is refused (:class:`LoweringUnsupported`), which both
keeps the compiled path honest and makes a fuzzed ``fifo_capacities``
fail closed.

Multi-stream plans (``offchip_streams > 1``) lower to a sequence of
per-stream sub-programs: the greedy Fig 14 chain breaking
(:func:`repro.microarch.tradeoff.select_breaks`) is replicated over the
flat deltas, the window's read slots split into contiguous segments at
the removed FIFOs, and each segment becomes one
:class:`~repro.lower.program.ProgramPart` executed in emission order
against the shared output domain.  The surviving deltas must equal the
plan's multi-stream ``fifo_capacities`` — the same honesty check,
stream-aware.

Gather domains whose bounding box exceeds :data:`GATHER_POINT_LIMIT`
points lower to *chunked* gather tables: the converter enumerates the
domain lazily in fixed-size chunks (each far under the limit) and
replays the kernel per chunk without ever materializing the full
``reads x points`` table.  Only boxes past :data:`GATHER_HARD_LIMIT`
are refused — at that size the output row itself stops being a sane
single-request payload.

Still not covered (falls back to the interpreted executor):
out-of-bounds reads — an explicit iteration domain that pushes the
window outside the grid.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..polyhedral.domain import BoxDomain, domain_to_json
from ..stencil.expr import BinOp, Const, Expr, Ref, UnOp, collect_refs
from ..stencil.spec import StencilSpec
from .program import (
    BufferProgram,
    BufferRead,
    LoweringError,
    LoweringUnsupported,
    ProgramPart,
    validate_program,
)

__all__ = [
    "GATHER_HARD_LIMIT",
    "GATHER_POINT_LIMIT",
    "bufferize",
    "linearize_expr",
    "stream_parts",
]

#: Bounding-box size past which a gather domain is *chunked* instead of
#: enumerated into one eager full table (the ``reads x points`` table
#: stays cache-resident below this; above it the converter replays
#: fixed-size chunks).
GATHER_POINT_LIMIT = 1 << 18

#: Bounding-box size past which a gather domain is refused outright —
#: past this the flat output row itself is no longer a sane
#: single-request payload, chunked or not.
GATHER_HARD_LIMIT = 1 << 24


def _strides(extents: Tuple[int, ...]) -> List[int]:
    """Row-major strides: suffix products of the extents."""
    strides = [1] * len(extents)
    for j in range(len(extents) - 2, -1, -1):
        strides[j] = strides[j + 1] * extents[j + 1]
    return strides


def _dot(a, b) -> int:
    return sum(int(x) * int(y) for x, y in zip(a, b))


def linearize_expr(expr: Expr, read_slots: dict) -> List[dict]:
    """Post-order stack program over ``(array, offset) -> slot``.

    The op order is exactly the evaluation order of
    :func:`repro.stencil.expr.evaluate` (left operand first), so a
    converter replaying the list with the same scalar ops reproduces
    the golden reference bit for bit.
    """
    ops: List[dict] = []

    def visit(node: Expr) -> None:
        if isinstance(node, Const):
            ops.append({"op": "const", "value": node.value})
        elif isinstance(node, Ref):
            ops.append(
                {"op": "read", "ref": read_slots[(node.array, node.offset)]}
            )
        elif isinstance(node, UnOp):
            visit(node.operand)
            ops.append({"op": node.op})
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
            ops.append({"op": node.op})
        else:
            raise LoweringError(f"unknown expression node {node!r}")

    visit(expr)
    return ops


def _reuse_offsets(spec: StencilSpec, domain) -> List[int]:
    """Flat deltas between adjacent window reads over the stream hull.

    The hull (``stream_mode="hull"``, the compile pipeline's default)
    is the bounding box of the input data touched by the whole window:
    ``[domain_lo + min_offset, domain_hi + max_offset]`` per dimension.
    Over a box stream the rank function is linear, so the reuse
    distance between adjacent references ``a`` and ``b`` is the
    constant ``dot(offset_a - offset_b, hull_strides)`` — Theorem 1's
    max reuse distance without enumerating a single point.
    """
    lows, highs = domain.bounding_box()
    mins, maxs = spec.window.span()
    hull_extents = tuple(
        (hi + ma) - (lo + mi) + 1
        for lo, hi, mi, ma in zip(lows, highs, mins, maxs)
    )
    hull_strides = _strides(hull_extents)
    offsets = spec.window.offsets  # descending lex == filter order
    return [
        _dot(
            tuple(x - y for x, y in zip(a, b)),
            hull_strides,
        )
        for a, b in zip(offsets, offsets[1:])
    ]


def stream_parts(
    spec: StencilSpec,
    read_slots: dict,
    deltas: List[int],
    offchip_streams: int,
) -> Tuple[List[ProgramPart], List[int]]:
    """Replicate Fig 14 chain breaking over the flat reuse deltas.

    Returns ``(parts, kept_deltas)``.  The greedy break selection is
    exactly :func:`repro.microarch.tradeoff.select_breaks` with the
    delta index standing in for the FIFO id (FIFO ``k`` sits between
    filters ``k`` and ``k + 1``): each of the ``streams - 1`` breaks
    removes the largest remaining delta, ties toward the upstream end.
    The surviving deltas are the multi-stream plan's
    ``fifo_capacities``; the window's read slots split into contiguous
    filter segments at the removed FIFOs, one :class:`ProgramPart` per
    segment in emission order.
    """
    offsets = spec.window.offsets  # descending lex == filter order
    n = len(offsets)
    if offchip_streams > n:
        raise LoweringUnsupported(
            "multi_stream",
            f"{offchip_streams} off-chip streams exceed the window's "
            f"{n} references",
        )
    remaining = list(range(n - 1))
    breaks: List[int] = []
    for _ in range(offchip_streams - 1):
        victim = max(remaining, key=lambda k: (deltas[k], -k))
        breaks.append(victim)
        remaining.remove(victim)
    try:
        window_slots = [
            read_slots[(spec.input_array, offset)]
            for offset in offsets
        ]
    except KeyError as exc:  # pragma: no cover - spec enforces this
        raise LoweringError(
            f"window reference {exc} missing from the expression"
        ) from exc
    segments: List[Tuple[int, int]] = []
    start = 0
    for k in sorted(breaks):
        segments.append((start, k))
        start = k + 1
    segments.append((start, n - 1))
    parts = [
        ProgramPart(
            stream=stream,
            reads=tuple(window_slots[first:last + 1]),
            reuse_offsets=tuple(deltas[first:last]),
        )
        for stream, (first, last) in enumerate(segments)
    ]
    kept = [deltas[k] for k in range(n - 1) if k not in set(breaks)]
    return parts, kept


def bufferize(
    spec: StencilSpec,
    fingerprint: str,
    fifo_capacities: Optional[List[int]] = None,
    offchip_streams: int = 1,
    gather_limit: int = GATHER_POINT_LIMIT,
    gather_hard_limit: int = GATHER_HARD_LIMIT,
) -> BufferProgram:
    """Lower ``spec`` (+ its compiled partition) to a buffer program.

    ``fifo_capacities`` is the plan's non-uniform partition; when given
    it is cross-checked against the flat reuse offsets (see the module
    docstring).  Raises :class:`LoweringUnsupported` for constructs the
    lowering does not cover.

    ``gather_limit`` picks eager vs chunked gather enumeration (it
    never changes the emitted program — chunking is a converter
    decision, so the sidecar stays deterministic across differently
    configured nodes); only ``gather_hard_limit`` refuses.
    """
    domain = spec.iteration_domain
    grid = tuple(int(g) for g in spec.grid)
    grid_strides = _strides(grid)

    refs = collect_refs(spec.expression)
    read_slots = {}
    reads: List[BufferRead] = []
    for ref in refs:
        read_slots[(ref.array, ref.offset)] = len(reads)
        reads.append(
            BufferRead(
                array=ref.array,
                offset=tuple(ref.offset),
                flat=_dot(ref.offset, grid_strides),
            )
        )
    ops = linearize_expr(spec.expression, read_slots)

    reuse = _reuse_offsets(spec, domain)
    parts: List[ProgramPart] = []
    if offchip_streams > 1:
        parts, reuse = stream_parts(
            spec, read_slots, reuse, offchip_streams
        )
    if fifo_capacities is not None and list(fifo_capacities) != reuse:
        raise LoweringUnsupported(
            "partition_mismatch",
            f"plan's FIFO partition {list(fifo_capacities)} disagrees "
            f"with the flat reuse offsets {reuse} "
            f"({offchip_streams} stream(s))",
        )

    if isinstance(domain, BoxDomain):
        lows, highs = domain.lows, domain.highs
        for read in reads:
            for j, d in enumerate(read.offset):
                if lows[j] + d < 0 or highs[j] + d > grid[j] - 1:
                    raise LoweringUnsupported(
                        "out_of_bounds",
                        f"read {read.array}{list(read.offset)} leaves "
                        f"the grid over the iteration box",
                    )
        shape = tuple(hi - lo + 1 for lo, hi in zip(lows, highs))
        n_outputs = 1
        for extent in shape:
            n_outputs *= extent
        program = BufferProgram(
            fingerprint=fingerprint,
            grid=grid,
            mode="box",
            reads=reads,
            ops=ops,
            n_outputs=n_outputs,
            lows=tuple(lows),
            shape=shape,
            base=_dot(lows, grid_strides),
            reuse_offsets=reuse,
            parts=parts,
        )
    else:
        lows, highs = domain.bounding_box()
        volume = 1
        for lo, hi in zip(lows, highs):
            volume *= max(hi - lo + 1, 0)
        if volume > gather_hard_limit:
            raise LoweringUnsupported(
                "gather_limit",
                f"iteration domain bounding box holds {volume} points "
                f"(> {gather_hard_limit}); too large to gather-lower "
                "even chunked",
            )
        if volume > gather_limit:
            # Chunked regime: count the domain vectorized — the
            # pure-Python point walk of ``domain.count()`` would
            # dominate the whole lowering at this size.
            from .gather import count_points

            n_outputs = count_points(domain)
        else:
            n_outputs = domain.count()
        program = BufferProgram(
            fingerprint=fingerprint,
            grid=grid,
            mode="gather",
            reads=reads,
            ops=ops,
            n_outputs=n_outputs,
            domain=domain_to_json(domain),
            reuse_offsets=reuse,
            parts=parts,
        )
    validate_program(program)
    return program


def bufferize_plan(
    plan,
    spec: Optional[StencilSpec] = None,
    gather_limit: int = GATHER_POINT_LIMIT,
    gather_hard_limit: int = GATHER_HARD_LIMIT,
) -> BufferProgram:
    """Bufferize straight from a cached plan (the service entry point).

    ``plan`` is a :class:`repro.service.plancache.CachedPlan`; the spec
    is rebuilt from the plan's canonical JSON unless the caller already
    holds it.  This is the deterministic function every converter
    re-runs to vet a stored sidecar.
    """
    if spec is None:
        spec = StencilSpec.from_json(plan.spec)
    return bufferize(
        spec,
        fingerprint=plan.fingerprint,
        fifo_capacities=plan.fifo_capacities,
        offchip_streams=int(
            (plan.options or {}).get("offchip_streams", 1)
        ),
        gather_limit=gather_limit,
        gather_hard_limit=gather_hard_limit,
    )
