"""Machine-readable export of every reproduced paper artifact.

``collect_artifacts`` computes all tables/figures in one pass and
returns a JSON-serializable dict; ``write_artifacts`` dumps it to disk.
This is the programmatic companion of the ``benchmarks/`` harness —
downstream tooling (regression dashboards, paper-comparison scripts)
consumes the JSON instead of parsing printed tables.
"""

from __future__ import annotations

import json
from typing import Dict, Sequence

from ..stencil.kernels import DENOISE, PAPER_BENCHMARKS, SEGMENTATION_3D
from ..stencil.spec import StencilSpec
from .performance import predict
from .report import (
    average_reduction,
    fig5_report,
    fig15_report,
    table2_report,
    table4_report,
    table5_report,
)

#: Fig 5's default row-size sweep.
FIG5_ROW_SIZES = tuple(range(1016, 1033))


def collect_artifacts(
    benchmarks: Sequence[StencilSpec] = PAPER_BENCHMARKS,
) -> Dict[str, object]:
    """Compute all paper artifacts as one JSON-serializable dict."""
    table5 = table5_report(benchmarks)
    return {
        "paper": {
            "title": (
                "An Optimal Microarchitecture for Stencil Computation "
                "Acceleration Based on Non-Uniform Partitioning of "
                "Data Reuse Buffers"
            ),
            "venue": "DAC 2014",
        },
        "table2": table2_report(DENOISE),
        "table4": table4_report(benchmarks),
        "table5": {
            "rows": table5,
            "average_bram_reduction_pct": average_reduction(
                table5, "bram_ours", "bram_gmp"
            ),
            "average_slice_reduction_pct": average_reduction(
                table5, "slice_ours", "slice_gmp"
            ),
        },
        "fig5": fig5_report(DENOISE, FIG5_ROW_SIZES),
        "fig15": fig15_report(SEGMENTATION_3D),
        "performance": [
            dict(benchmark=spec.name, **predict(spec).as_row())
            for spec in benchmarks
        ],
    }


def write_artifacts(
    path: str,
    benchmarks: Sequence[StencilSpec] = PAPER_BENCHMARKS,
) -> Dict[str, object]:
    """Compute and write the artifact bundle; returns the dict."""
    data = collect_artifacts(benchmarks)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    return data
