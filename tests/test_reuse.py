"""Unit tests for reuse distances (Definitions 7-9, Properties 2-3)."""

import pytest

from repro.polyhedral.access import ArrayReference
from repro.polyhedral.domain import BoxDomain, IntegerPolyhedron
from repro.polyhedral.reuse import (
    box_lex_span,
    check_linearity,
    max_reuse_distance,
    reuse_distance_profile,
    reuse_distance_vector,
    total_reuse_window,
)


def ref(offset):
    return ArrayReference("A", offset)


DENOISE_ITER = BoxDomain((1, 1), (766, 1022))  # paper's Fig 1 loop
DENOISE_STREAM = BoxDomain((0, 0), (767, 1023))


class TestReuseDistanceVector:
    def test_property_2_constant_vector(self):
        # Example 5: from A[i-1][j] to A[i+1][j] the vector is (2, 0)
        # ... in the paper's j - i orientation the *offset* difference
        # f_x - f_y with x = A[i+1][j] is (2, 0).
        assert reuse_distance_vector(ref((1, 0)), ref((-1, 0))) == (2, 0)

    def test_adjacent_pair(self):
        assert reuse_distance_vector(ref((1, 0)), ref((0, 1))) == (1, -1)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            reuse_distance_vector(ref((1, 0)), ref((1,)))


class TestBoxLexSpan:
    def test_2d_row_major(self):
        box = BoxDomain((0, 0), (767, 1023))
        assert box_lex_span(box, (1, -1)) == 1023
        assert box_lex_span(box, (2, 0)) == 2048
        assert box_lex_span(box, (0, 1)) == 1

    def test_3d(self):
        box = BoxDomain((0, 0, 0), (9, 9, 9))
        assert box_lex_span(box, (1, 0, 0)) == 100
        assert box_lex_span(box, (0, 1, -1)) == 9

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            box_lex_span(BoxDomain((0,), (3,)), (1, 1))


class TestMaxReuseDistance:
    def test_paper_example_6(self):
        # Max reuse distance from A[i+1][j] to A[i-1][j] is 2048.
        assert (
            max_reuse_distance(
                ref((1, 0)), ref((-1, 0)), DENOISE_ITER, DENOISE_STREAM
            )
            == 2048
        )

    def test_table2_fifo_sizes(self):
        assert (
            max_reuse_distance(
                ref((1, 0)), ref((0, 1)), DENOISE_ITER, DENOISE_STREAM
            )
            == 1023
        )
        assert (
            max_reuse_distance(
                ref((0, 1)), ref((0, 0)), DENOISE_ITER, DENOISE_STREAM
            )
            == 1
        )
        assert (
            max_reuse_distance(
                ref((0, -1)), ref((-1, 0)), DENOISE_ITER, DENOISE_STREAM
            )
            == 1023
        )

    def test_wrong_direction_raises(self):
        with pytest.raises(ValueError):
            max_reuse_distance(
                ref((-1, 0)), ref((1, 0)), DENOISE_ITER, DENOISE_STREAM
            )

    def test_default_stream_domain_is_hull(self):
        # Without an explicit stream domain the hull of the two data
        # domains is used.
        iter_domain = BoxDomain((1, 1), (6, 8))
        d = max_reuse_distance(ref((1, 0)), ref((-1, 0)), iter_domain)
        # Hull has row width 9 (columns 0..8 spanned by j +/- 0 with
        # i +/- 1 -> columns 1..8? offsets (1,0),(-1,0): cols 1..8).
        assert d == 2 * 8

    def test_exact_path_matches_fast_path_on_boxes(self):
        iter_domain = BoxDomain((1, 1), (5, 6))
        stream = BoxDomain((0, 0), (6, 7))
        fast = max_reuse_distance(
            ref((1, 0)), ref((0, 1)), iter_domain, stream
        )
        # Force the exact path through a structurally identical
        # general polyhedron.
        general_stream = IntegerPolyhedron(
            coefficients=[c for c, _ in stream.constraints],
            bounds=[b for _, b in stream.constraints],
        )
        exact = max_reuse_distance(
            ref((1, 0)), ref((0, 1)), iter_domain, general_stream
        )
        assert fast == exact

    def test_same_reference_distance_zero(self):
        assert (
            max_reuse_distance(
                ref((0, 0)), ref((0, 0)), BoxDomain((1, 1), (4, 4))
            )
            == 0
        )


class TestSkewedProfile:
    def _skewed(self):
        # Triangle with growing rows: 1 <= i <= 5, 1 <= j <= i + 2 —
        # the "filter iterating over a longer row" situation of Fig 9.
        return IntegerPolyhedron(
            coefficients=[(1, 0), (-1, 0), (0, -1), (-1, 1)],
            bounds=[5, -1, -1, 2],
        )

    def test_profile_distance_varies(self):
        """On a skewed grid streamed *exactly* (the union input data
        domain, not its hull box) the reuse distance is not constant —
        the Fig 9 phenomenon."""
        from repro.polyhedral.access import input_data_domain

        iter_domain = self._skewed()
        refs = [ref((1, 0)), ref((0, 1))]
        union = input_data_domain(refs, iter_domain)
        profile = reuse_distance_profile(
            refs[0], refs[1], iter_domain, union
        )
        distances = {e.distance for e in profile}
        assert len(distances) > 1

    def test_hull_box_profile_is_constant(self):
        """Streaming the hull box makes the per-iteration lag constant
        (the closed-form Table 2 regime)."""
        iter_domain = self._skewed()
        profile = reuse_distance_profile(
            ref((1, 0)), ref((0, 1)), iter_domain
        )
        assert len({e.distance for e in profile}) == 1

    def test_max_distance_equals_profile_max(self):
        iter_domain = self._skewed()
        profile = reuse_distance_profile(
            ref((1, 0)), ref((0, 1)), iter_domain
        )
        max_d = max_reuse_distance(
            ref((1, 0)), ref((0, 1)), iter_domain
        )
        assert max_d == max(e.distance for e in profile)


class TestLinearity:
    def test_property_3_on_denoise_window(self):
        offsets = [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]
        refs = [ref(o) for o in offsets]
        assert check_linearity(refs, BoxDomain((1, 1), (8, 10)))

    def test_property_3_on_3d_window(self):
        offsets = [
            (0, 0, 0),
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        ]
        refs = [ref(o) for o in offsets]
        assert check_linearity(refs, BoxDomain((1, 1, 1), (4, 5, 6)))

    def test_total_window_equals_earliest_to_latest(self):
        offsets = [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]
        refs = [ref(o) for o in offsets]
        total = total_reuse_window(refs, DENOISE_ITER, DENOISE_STREAM)
        assert total == 2048

    def test_total_window_single_reference_is_zero(self):
        assert (
            total_reuse_window([ref((0, 0))], DENOISE_ITER) == 0
        )
