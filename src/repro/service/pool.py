"""Crash-isolated process-pool executor with supervised workers.

The thread executor keeps every request inside one Python process: a
pathological plan, an OOM-ish grid or a poisoned cache entry can stall
the GIL or take the whole server down.  This module shards execution
across ``multiprocessing`` worker processes instead, keyed by plan
fingerprint, so a request can segfault, hang, leak or be chaos-killed
and the blast radius is exactly one worker:

* **sharding** — ``shard = sha256(fingerprint) % workers``: every
  request for one plan lands on the same worker, which serializes
  compiles per fingerprint (process-level single-flight) and keeps the
  worker's local plan cache hot;
* **supervision** — a worker that exits, segfaults or stops answering
  is reaped and respawned, both in-call (the shard runner notices the
  death or the hang deadline) and by a background supervisor sweep
  that restarts workers killed while idle;
* **sibling retry** — requests in flight on a crashed or hung worker
  are retried on a *sibling* shard (``shard + hops``), bounded by the
  scheduler's existing retry budget and per-request deadlines, so a
  worker-local fault never costs a request its answer;
* **circuit breaking** — a per-fingerprint
  :class:`CircuitBreaker` counts worker deaths attributable to each
  plan; a plan that repeatedly kills workers trips its breaker open
  (its cache entry is also evicted as suspect), gets fast structured
  ``circuit_open`` rejections for a cooldown, then a half-open probe
  decides between closing the breaker and re-opening it.  Other
  fingerprints keep serving throughout.

The wire protocol between the parent and a worker is JSON-safe dicts
over a ``multiprocessing.Pipe``: specs, options and plans already have
canonical JSON codecs (the content-addressed cache depends on them),
so nothing else needs to pickle.  Chaos fault injection
(:mod:`repro.service.chaos`) runs *inside* the worker, which is the
point: an injected kill takes a real process down and the supervision
machinery — not the test — has to recover.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as _np

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import get_tracer, span, trace_context
from ..lower.engine import CompiledEngine, LoweringConfig
from ..lower.program import LoweringUnsupported, ProgramMismatchError
from .chaos import ChaosConfig, ChaosInjector
from .executor import (
    LATENCY_BUCKETS_MS,
    ExecutorBase,
    PlanValidationError,
    compile_plan,
    execute_pipeline,
    execute_stencil,
    make_response,
    observe_stage,
    register_executor,
    stage_summaries,
    validate_pipeline,
    validate_plan,
    worse_cache_outcome,
)
from .fingerprint import CompileOptions
from .plancache import CachedPlan, PlanCache
from .scheduler import Scheduler, WorkItem

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ProcessPlanExecutor",
    "shard_of",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Gauge encoding of breaker states for the Prometheus export.
_BREAKER_STATE_VALUE = {
    BREAKER_CLOSED: 0,
    BREAKER_OPEN: 1,
    BREAKER_HALF_OPEN: 2,
}


def shard_of(fingerprint: str, workers: int, hops: int = 0) -> int:
    """Stable fingerprint-to-shard routing (``hops`` picks siblings)."""
    digest = hashlib.sha256(fingerprint.encode("utf-8")).digest()
    home = int.from_bytes(digest[:4], "big") % workers
    return (home + hops) % workers


class CircuitBreaker:
    """closed -> open -> half-open quarantine for one fingerprint.

    ``record_failure`` counts *worker-lethal* events (a crash or hang
    while executing this plan).  ``threshold`` consecutive failures
    open the breaker; after ``cooldown_s`` the next ``allow`` moves it
    to half-open, where a single success closes it again and any
    failure re-opens it immediately.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self.state = BREAKER_CLOSED
        self.failures = 0
        self._opened_at: Optional[float] = None

    def allow(self) -> bool:
        """May a request for this fingerprint proceed right now?"""
        with self._lock:
            if self.state == BREAKER_OPEN:
                if (
                    self._clock() - self._opened_at >= self.cooldown_s
                ):
                    self.state = BREAKER_HALF_OPEN
                    return True
                return False
            return True

    def record_success(self) -> Optional[str]:
        """Returns the new state if a transition happened."""
        with self._lock:
            self.failures = 0
            if self.state == BREAKER_HALF_OPEN:
                self.state = BREAKER_CLOSED
                return BREAKER_CLOSED
            return None

    def record_failure(self) -> Optional[str]:
        """Returns ``"open"`` when this failure tripped the breaker."""
        with self._lock:
            self.failures += 1
            tripped = (
                self.state == BREAKER_HALF_OPEN
                or self.failures >= self.threshold
            )
            if tripped and self.state != BREAKER_OPEN:
                self.state = BREAKER_OPEN
                self._opened_at = self._clock()
                return BREAKER_OPEN
            if tripped:  # already open (concurrent shard failures)
                self._opened_at = self._clock()
            return None

    def retry_after_s(self) -> float:
        """Cooldown seconds left before the next half-open probe.

        Zero unless the breaker is currently open; clients receiving a
        ``circuit_open`` response can back off exactly this long
        instead of guessing.
        """
        with self._lock:
            if self.state != BREAKER_OPEN or self._opened_at is None:
                return 0.0
            elapsed = self._clock() - self._opened_at
            return max(0.0, self.cooldown_s - elapsed)


# ---------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------

def _reset_forked_observability() -> None:
    """Give a forked worker fresh obs globals.

    A fork can land while a parent thread holds the tracer/metrics
    install locks or a tracer's record lock; the child would deadlock
    on first use.  Workers do not report to the parent registry
    anyway, so simply discard the inherited state.
    """
    from ..obs import metrics as _metrics, tracing as _tracing

    _tracing._install_lock = threading.Lock()
    _tracing._tracer = None
    _metrics._install_lock = threading.Lock()
    _metrics._registry = None


class _WorkerSpans:
    """Collects worker-side stage spans for the reply.

    A pool worker has no tracer of its own (it may be chaos-killed at
    any instant, so it can never own an export file).  Instead each
    stage is timed with *absolute* wall-clock timestamps
    (``time.time_ns``) and shipped home in the job reply; the parent
    re-records them through :meth:`Tracer.add_foreign`, which maps the
    absolute time onto its own epoch while preserving this process's
    pid/tid — so the stitched trace shows the worker as its own
    process row.  Only execs that carry a ``trace_id`` produce spans;
    untraced traffic pays two clock reads and an ``if``.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def add(
        self,
        name: str,
        start_unix_ns: int,
        end_unix_ns: int,
        trace_id: Optional[str],
        parent_span_id: Optional[str],
        **args: Any,
    ) -> None:
        if trace_id is None:
            return
        self.records.append(
            {
                "name": name,
                "ts_unix_us": start_unix_ns / 1e3,
                "dur_us": (end_unix_ns - start_unix_ns) / 1e3,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "trace_id": trace_id,
                "span_id": os.urandom(8).hex(),
                "parent_span_id": parent_span_id,
                "args": args,
            }
        )


def _exec_trace(exc_spec: Dict[str, Any]) -> Tuple[Optional[str], Optional[str]]:
    return exc_spec.get("trace_id"), exc_spec.get("parent_span_id")


def _lowering_config_from_job(
    job: Dict[str, Any]
) -> Optional[LoweringConfig]:
    """Rebuild the parent's lowering config from the job envelope.

    Workers are spawned generic, so the converter choice and gather
    limits ride each job; ``None`` lets the worker engine use its
    defaults (identical to the parent's defaults).
    """
    raw = job.get("lower_config")
    if not raw:
        return None
    return LoweringConfig.from_json(raw)


def _run_job(
    job: Dict[str, Any],
    plans: Dict[str, CachedPlan],
    chaos: Optional[ChaosInjector],
    engine: Optional[CompiledEngine] = None,
) -> Dict[str, Any]:
    """Execute one fingerprint group inside the worker process."""
    from ..stencil.spec import StencilSpec

    fp = job["fingerprint"]
    spec = StencilSpec.from_json(job["spec"])
    options = CompileOptions.from_json(job["options"])
    spans = _WorkerSpans()
    # The compile (if one happens) serves the whole group; its span is
    # attributed to the first traced exec.
    group_trace = next(
        (t for t in map(_exec_trace, job["execs"]) if t[0] is not None),
        (None, None),
    )
    compiled_json: Optional[dict] = None
    compile_ms = 0.0
    if job.get("plan") is not None:
        # The shared cache hit.  The transmitted plan is what the
        # parent is vouching for, so it is what the canary must
        # validate — a stale worker-local copy may only stand in for
        # it when the content is identical, otherwise a poisoned
        # shared entry would be validated against a clean local copy
        # and survive.
        plan = CachedPlan.from_json(job["plan"])
        local = plans.get(fp)
        if local is not None and local.to_json() == plan.to_json():
            plan = local
    else:
        # A parent-side miss is authoritative: the plan may have been
        # invalidated (poisoned entry, tripped breaker), so a stale
        # worker-local copy must not resurrect it.
        plans.pop(fp, None)
        plan = None
    if plan is None:
        started = time.perf_counter()
        compile_start_unix = time.time_ns()
        try:
            plan = compile_plan(spec, options, fp)
        except Exception as exc:
            return {"kind": "error", "error": f"compile failed: {exc}"}
        compile_ms = (time.perf_counter() - started) * 1e3
        spans.add(
            "worker.compile",
            compile_start_unix,
            time.time_ns(),
            group_trace[0],
            group_trace[1],
            fingerprint=fp[:12],
        )
        compiled_json = plan.to_json()
    plans[fp] = plan
    if len(plans) > 64:  # tiny worker-local cache, drop the oldest
        plans.pop(next(iter(plans)))

    # Lower the plan once per job when the compiled backend is on; the
    # engine memoizes per fingerprint so warm jobs pay a dict lookup.
    kernel = None
    lower: Dict[str, Any] = {}
    if job.get("backend") == "compiled" and engine is not None:
        lower_cfg = _lowering_config_from_job(job)
        lower_start_unix = time.time_ns()
        try:
            result = engine.kernel_for(
                plan, spec=spec, config=lower_cfg
            )
        except LoweringUnsupported as exc:
            lower["fallback_reasons"] = {
                exc.reason: len(job["execs"])
            }
        except ProgramMismatchError as exc:
            # The transmitted plan carries a corrupt stored program:
            # fail every exec as a validation failure so the parent
            # invalidates the shared entry — never a wrong answer.
            engine.forget(fp)
            plans.pop(fp, None)
            return {
                "kind": "result",
                "plan": compiled_json,
                "compile_ms": compile_ms,
                "execs": [
                    {
                        "id": e["id"],
                        "ok": False,
                        "error_kind": "validation",
                        "error": str(exc),
                    }
                    for e in job["execs"]
                ],
                "spans": spans.records,
                "lower": lower,
            }
        else:
            kernel = result.kernel
            if result.built:
                spans.add(
                    "worker.lower",
                    lower_start_unix,
                    time.time_ns(),
                    group_trace[0],
                    group_trace[1],
                    fingerprint=fp[:12],
                )
                lower["bufferize_ms"] = result.bufferize_ms
                lower["convert_ms"] = result.convert_ms
                lower["outcome"] = (
                    "lowered"
                    if result.program_json is not None
                    else "cached"
                )
                lower["converter"] = result.converter
                if result.converter_fallback is not None:
                    lower["converter_fallback"] = 1
            if result.program_json is not None:
                lower["program"] = result.program_json
                plan.buffer_program = result.program_json

    exec_results: List[Dict[str, Any]] = []
    for exc_spec in job["execs"]:
        request_id = exc_spec["id"]
        exec_trace_id, exec_parent = _exec_trace(exc_spec)
        if chaos is not None:
            chaos.apply(request_id, exc_spec.get("attempt", 0), fp)
        try:
            exec_start_unix = time.time_ns()
            result_row: Optional[_np.ndarray] = None
            if kernel is not None:
                try:
                    grid = engine.input_grid(spec, exc_spec["seed"])
                    result_row = _np.ascontiguousarray(
                        kernel.run(grid), dtype=_np.float64
                    )
                except Exception:
                    # A kernel that cannot execute is a lowering gap:
                    # this exec silently takes the interpreted path.
                    lower["kernel_errors"] = (
                        lower.get("kernel_errors", 0) + 1
                    )
                    reasons = lower.setdefault(
                        "fallback_reasons", {}
                    )
                    reasons["kernel_error"] = (
                        reasons.get("kernel_error", 0) + 1
                    )
                    result_row = None
            if result_row is not None:
                digest = hashlib.sha256(
                    result_row.tobytes()
                ).hexdigest()
                n_outputs = int(result_row.size)
                mean = (
                    float(sum(result_row.tolist()) / result_row.size)
                    if result_row.size
                    else 0.0
                )
                lower["compiled"] = lower.get("compiled", 0) + 1
            else:
                grid, outputs, digest = execute_stencil(
                    spec, exc_spec["seed"]
                )
                n_outputs = len(outputs)
                mean = (
                    float(sum(outputs) / len(outputs))
                    if outputs
                    else 0.0
                )
            spans.add(
                "worker.execute",
                exec_start_unix,
                time.time_ns(),
                exec_trace_id,
                exec_parent,
                request=request_id,
                benchmark=spec.name,
            )
            validated: Optional[bool] = None
            if exc_spec.get("validate"):
                validate_start_unix = time.time_ns()
                if result_row is not None:
                    # The compiled canary first proves bit-identity
                    # against the interpreted golden path.
                    grid, outputs, golden_digest = execute_stencil(
                        spec, exc_spec["seed"]
                    )
                    if golden_digest != digest:
                        raise PlanValidationError(
                            "compiled kernel outputs diverge from "
                            "the golden reference"
                        )
                validate_plan(spec, options, plan, grid, outputs)
                spans.add(
                    "worker.validate",
                    validate_start_unix,
                    time.time_ns(),
                    exec_trace_id,
                    exec_parent,
                    request=request_id,
                )
                validated = True
            exec_results.append(
                {
                    "id": request_id,
                    "ok": True,
                    "n_outputs": n_outputs,
                    "mean": mean,
                    "checksum": digest[:16],
                    "validated": validated,
                }
            )
        except PlanValidationError as exc:
            plans.pop(fp, None)  # the parent will invalidate too
            if engine is not None:
                engine.forget(fp)
            exec_results.append(
                {
                    "id": request_id,
                    "ok": False,
                    "error_kind": "validation",
                    "error": str(exc),
                }
            )
        except Exception as exc:
            exec_results.append(
                {
                    "id": request_id,
                    "ok": False,
                    "error_kind": "exception",
                    "error": str(exc),
                }
            )
    return {
        "kind": "result",
        "plan": compiled_json,
        "compile_ms": compile_ms,
        "execs": exec_results,
        "spans": spans.records,
        "lower": lower,
    }


def _run_pipeline_job(
    job: Dict[str, Any],
    plans: Dict[str, CachedPlan],
    chaos: Optional[ChaosInjector],
    engine: Optional[CompiledEngine] = None,
) -> Dict[str, Any]:
    """Execute one multi-stage workload group inside the worker.

    Mirrors :func:`_run_job` stage by stage: every pipeline stage is
    an ordinary plan under its own fingerprint (compiled here on a
    parent-side miss and shipped home in ``plans``), intermediates
    hand off in-process via the Fig 13c reshape, and each exec's reply
    carries per-stage digests next to the final checksum.
    """
    from ..stencil.spec import StencilSpec
    from .workload import PlannedStage

    spans = _WorkerSpans()
    group_trace = next(
        (t for t in map(_exec_trace, job["execs"]) if t[0] is not None),
        (None, None),
    )
    compiled_plans: Dict[str, dict] = {}
    compile_ms = 0.0
    stages: List[PlannedStage] = []
    stage_plans: List[CachedPlan] = []
    for index, st in enumerate(job["pipeline"]):
        fp = st["fingerprint"]
        spec = StencilSpec.from_json(st["spec"])
        options = CompileOptions.from_json(st["options"])
        if st.get("plan") is not None:
            plan = CachedPlan.from_json(st["plan"])
            local = plans.get(fp)
            if local is not None and local.to_json() == plan.to_json():
                plan = local
        else:
            plans.pop(fp, None)
            plan = None
        if plan is None:
            started = time.perf_counter()
            compile_start_unix = time.time_ns()
            try:
                plan = compile_plan(spec, options, fp)
            except Exception as exc:
                return {
                    "kind": "error",
                    "error": (
                        f"compile failed (stage {index}, "
                        f"{spec.name}): {exc}"
                    ),
                }
            compile_ms += (time.perf_counter() - started) * 1e3
            spans.add(
                "worker.compile",
                compile_start_unix,
                time.time_ns(),
                group_trace[0],
                group_trace[1],
                fingerprint=fp[:12],
                stage=index,
            )
            compiled_plans[fp] = plan.to_json()
        plans[fp] = plan
        stages.append(
            PlannedStage(
                index=index,
                name=st.get("name") or spec.name,
                spec=spec,
                options=options,
                fingerprint=fp,
            )
        )
        stage_plans.append(plan)
    while len(plans) > 64:
        plans.pop(next(iter(plans)))

    def _all_failed(error: str) -> Dict[str, Any]:
        return {
            "kind": "result",
            "plans": compiled_plans,
            "compile_ms": compile_ms,
            "execs": [
                {
                    "id": e["id"],
                    "ok": False,
                    "error_kind": "validation",
                    "error": error,
                }
                for e in job["execs"]
            ],
            "spans": spans.records,
            "lower": lower,
        }

    # Lower every stage when the compiled backend is on; any refusal
    # sends the whole pipeline down the interpreted chain (the
    # hand-off bytes must come from one path).
    kernels: Optional[List] = None
    lower: Dict[str, Any] = {}
    if job.get("backend") == "compiled" and engine is not None:
        lower_cfg = _lowering_config_from_job(job)
        lower_start_unix = time.time_ns()
        built = False
        kernels = []
        try:
            for stage, plan in zip(stages, stage_plans):
                result = engine.kernel_for(
                    plan, spec=stage.spec, config=lower_cfg
                )
                if result.built:
                    built = True
                    lower["bufferize_ms"] = lower.get(
                        "bufferize_ms", 0.0
                    ) + result.bufferize_ms
                    lower["convert_ms"] = lower.get(
                        "convert_ms", 0.0
                    ) + result.convert_ms
                    lower["converter"] = result.converter
                    if result.converter_fallback is not None:
                        lower["converter_fallback"] = (
                            lower.get("converter_fallback", 0) + 1
                        )
                if result.program_json is not None:
                    lower["outcome"] = "lowered"
                    lower.setdefault("programs", {})[
                        stage.fingerprint
                    ] = result.program_json
                    plan.buffer_program = result.program_json
                kernels.append(result.kernel)
        except LoweringUnsupported as exc:
            lower["fallback_reasons"] = {
                exc.reason: len(job["execs"])
            }
            kernels = None
        except ProgramMismatchError as exc:
            for stage in stages:
                engine.forget(stage.fingerprint)
                plans.pop(stage.fingerprint, None)
            return _all_failed(str(exc))
        else:
            if built:
                lower.setdefault("outcome", "cached")
                spans.add(
                    "worker.lower",
                    lower_start_unix,
                    time.time_ns(),
                    group_trace[0],
                    group_trace[1],
                    stages=len(stages),
                )

    exec_results: List[Dict[str, Any]] = []
    for exc_spec in job["execs"]:
        request_id = exc_spec["id"]
        exec_trace_id, exec_parent = _exec_trace(exc_spec)
        if chaos is not None:
            chaos.apply(
                request_id,
                exc_spec.get("attempt", 0),
                job["fingerprint"],
            )
        try:
            exec_start_unix = time.time_ns()
            grid = None
            results = None
            if kernels is not None:
                try:
                    from ..integration.chaining import (
                        intermediate_grid_shape,
                    )

                    grid = engine.input_grid(
                        stages[0].spec, exc_spec["seed"]
                    )
                    current = grid
                    results = []
                    for idx, (stage, kernel) in enumerate(
                        zip(stages, kernels)
                    ):
                        arr = _np.ascontiguousarray(
                            kernel.run(current), dtype=_np.float64
                        )
                        results.append(
                            (
                                arr,
                                hashlib.sha256(
                                    arr.data
                                ).hexdigest(),
                            )
                        )
                        if idx + 1 < len(stages):
                            current = arr.reshape(
                                intermediate_grid_shape(stage.spec)
                            )
                except Exception:
                    lower["kernel_errors"] = (
                        lower.get("kernel_errors", 0) + 1
                    )
                    reasons = lower.setdefault(
                        "fallback_reasons", {}
                    )
                    reasons["kernel_error"] = (
                        reasons.get("kernel_error", 0) + 1
                    )
                    results = None
            compiled_row = results is not None
            if results is None:
                grid, results = execute_pipeline(
                    stages, exc_spec["seed"]
                )
            else:
                lower["compiled"] = lower.get("compiled", 0) + 1
            spans.add(
                "worker.execute",
                exec_start_unix,
                time.time_ns(),
                exec_trace_id,
                exec_parent,
                request=request_id,
                benchmark=stages[-1].spec.name,
                stages=len(stages),
            )
            validated: Optional[bool] = None
            if exc_spec.get("validate"):
                validate_start_unix = time.time_ns()
                if compiled_row:
                    golden_grid, golden = execute_pipeline(
                        stages, exc_spec["seed"]
                    )
                    for stage, (_, got), (_, want) in zip(
                        stages, results, golden
                    ):
                        if got != want:
                            raise PlanValidationError(
                                f"compiled stage {stage.index} "
                                f"({stage.spec.name}) outputs "
                                "diverge from the golden chained "
                                "reference"
                            )
                    grid, results = golden_grid, golden
                validate_pipeline(
                    stages, stage_plans, grid, results
                )
                spans.add(
                    "worker.validate",
                    validate_start_unix,
                    time.time_ns(),
                    exec_trace_id,
                    exec_parent,
                    request=request_id,
                )
                validated = True
            final_arr, final_digest = results[-1]
            exec_results.append(
                {
                    "id": request_id,
                    "ok": True,
                    "n_outputs": int(final_arr.size),
                    "mean": (
                        float(final_arr.mean())
                        if final_arr.size
                        else 0.0
                    ),
                    "checksum": final_digest[:16],
                    "validated": validated,
                    "stages": stage_summaries(stages, results),
                }
            )
        except PlanValidationError as exc:
            for stage in stages:
                plans.pop(stage.fingerprint, None)
                if engine is not None:
                    engine.forget(stage.fingerprint)
            exec_results.append(
                {
                    "id": request_id,
                    "ok": False,
                    "error_kind": "validation",
                    "error": str(exc),
                }
            )
        except Exception as exc:
            exec_results.append(
                {
                    "id": request_id,
                    "ok": False,
                    "error_kind": "exception",
                    "error": str(exc),
                }
            )
    return {
        "kind": "result",
        "plans": compiled_plans,
        "compile_ms": compile_ms,
        "execs": exec_results,
        "spans": spans.records,
        "lower": lower,
    }


def _worker_main(conn, shard_id: int, chaos_json: Optional[dict]) -> None:
    """The worker-process loop: recv a job, run it, send the reply."""
    _reset_forked_observability()
    chaos = (
        ChaosInjector(ChaosConfig.from_json(chaos_json))
        if chaos_json
        else None
    )
    plans: Dict[str, CachedPlan] = {}
    engine = CompiledEngine()  # worker-local kernel/grid caches
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg.get("kind")
        if kind == "stop":
            break
        if kind == "ping":
            conn.send({"kind": "pong", "shard": shard_id})
            continue
        try:
            if msg.get("pipeline"):
                reply = _run_pipeline_job(msg, plans, chaos, engine)
            else:
                reply = _run_job(msg, plans, chaos, engine)
        except Exception as exc:  # belt and braces: never die silently
            reply = {"kind": "error", "error": f"worker error: {exc}"}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    os._exit(0)


# ---------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------

class _WorkerShard:
    """Parent-side handle of one worker process and its feed queue."""

    def __init__(self, index: int, ctx, chaos_json) -> None:
        self.index = index
        self.ctx = ctx
        self.chaos_json = chaos_json
        self.proc = None
        self.conn = None
        self.lock = threading.Lock()
        self.queue: "queue.Queue" = queue.Queue()

    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, self.index, self.chaos_json),
            daemon=True,
            name=f"repro-pool-worker-{self.index}",
        )
        proc.start()
        child_conn.close()  # parent must not hold the child's end open
        self.proc, self.conn = proc, parent_conn

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def reap(self) -> None:
        """Kill (if needed) and forget the current worker process."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.kill()
            self.proc.join(5.0)
        self.proc = self.conn = None


class ProcessPlanExecutor(ExecutorBase):
    """Fingerprint-sharded, supervised ``multiprocessing`` executor.

    Drop-in lifecycle-compatible with the thread
    :class:`~repro.service.executor.PlanExecutor` (``start`` /
    ``stop`` draining the same :class:`Scheduler`), but every unit of
    real work happens in a crash-isolated worker process.
    """

    def __init__(
        self,
        cache: PlanCache,
        scheduler: Scheduler,
        registry: MetricsRegistry,
        workers: int = 4,
        max_batch: int = 16,
        validate_every: int = 0,
        canary_cell_limit: int = 20_000,
        retry_backoff_s: float = 0.02,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        hang_timeout_s: float = 60.0,
        chaos: Optional[ChaosConfig] = None,
        mp_start_method: Optional[str] = None,
        backend: str = "interpreted",
        lower_config: Optional[Dict[str, Any]] = None,
        **canary_kwargs: Any,
    ) -> None:
        super().__init__(
            cache=cache,
            scheduler=scheduler,
            registry=registry,
            workers=workers,
            max_batch=max_batch,
            validate_every=validate_every,
            canary_cell_limit=canary_cell_limit,
            retry_backoff_s=retry_backoff_s,
            **canary_kwargs,
        )
        if hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.hang_timeout_s = hang_timeout_s
        self.chaos = chaos
        self.backend = backend  # execution strategy inside workers
        # JSON-safe lowering knobs (converter, gather limits, artifact
        # dir) shipped with each compiled job — workers are generic.
        self.lower_config = dict(lower_config) if lower_config else None
        if mp_start_method is None:
            # Workers are started from a multithreaded parent
            # (dispatcher, shard runners, supervisor, user threads);
            # plain "fork" would inherit any lock held at fork time in
            # the locked state and can deadlock the child.  The worker
            # protocol is JSON-pure and needs no inherited state, so
            # default to "forkserver" (forks from a clean,
            # single-threaded server) or "spawn", keeping "fork" as an
            # explicit opt-in.
            methods = multiprocessing.get_all_start_methods()
            for preferred in ("forkserver", "spawn", "fork"):
                if preferred in methods:
                    mp_start_method = preferred
                    break
        self._ctx = multiprocessing.get_context(mp_start_method)
        if mp_start_method == "forkserver":
            # Import the worker's module tree once in the fork server
            # so each worker fork starts warm instead of re-importing.
            self._ctx.set_forkserver_preload(["repro.service.pool"])
        chaos_json = (
            chaos.to_json() if chaos and chaos.enabled() else None
        )
        self._shards = [
            _WorkerShard(k, self._ctx, chaos_json)
            for k in range(workers)
        ]
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._dispatch_done = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._stop.clear()
        self._dispatch_done.clear()
        for shard in self._shards:
            with shard.lock:
                if not shard.alive():
                    shard.spawn()
        dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-pool-dispatch",
            daemon=True,
        )
        dispatcher.start()
        self._threads.append(dispatcher)
        for shard in self._shards:
            t = threading.Thread(
                target=self._shard_loop,
                args=(shard,),
                name=f"repro-pool-shard-{shard.index}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        supervisor = threading.Thread(
            target=self._supervise_loop,
            name="repro-pool-supervisor",
            daemon=True,
        )
        supervisor.start()
        self._threads.append(supervisor)

    def stop(self, join_timeout: float = 10.0) -> None:
        self._stop.set()
        for t in self._threads:
            t.join(join_timeout)
        self._threads.clear()
        for shard in self._shards:
            # A runner wedged mid-call holds shard.lock; don't let it
            # hang shutdown — the workers are daemons and get reaped
            # regardless.
            acquired = shard.lock.acquire(timeout=join_timeout)
            try:
                if shard.conn is not None and shard.alive():
                    try:
                        shard.conn.send({"kind": "stop"})
                        shard.proc.join(1.0)
                    except (BrokenPipeError, OSError):
                        pass
                shard.reap()
            finally:
                if acquired:
                    shard.lock.release()

    # -- breaker plumbing ----------------------------------------------
    def _breaker(self, fp: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(fp)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                )
                self._breakers[fp] = breaker
            return breaker

    def breaker_state(self, fp: str) -> str:
        with self._breaker_lock:
            breaker = self._breakers.get(fp)
        return breaker.state if breaker is not None else BREAKER_CLOSED

    def _publish_breaker(self, fp: str, state: str) -> None:
        self.registry.gauge(
            "service_breaker_state", {"fingerprint": fp[:12]}
        ).set(_BREAKER_STATE_VALUE[state])
        self.registry.counter(
            "service_breaker_transitions_total", {"to": state}
        ).inc()

    def _record_lethal(self, fp: str, reason: str) -> None:
        """A worker died or hung while executing ``fp``."""
        tripped = self._breaker(fp).record_failure()
        if tripped == BREAKER_OPEN:
            self._publish_breaker(fp, BREAKER_OPEN)
            # The plan is the prime suspect: evict it so the
            # half-open probe recompiles from scratch.
            self.cache.invalidate(fp)
        self.registry.counter(
            "service_pool_jobs_total", {"outcome": reason}
        ).inc()

    # -- supervision ---------------------------------------------------
    def _restart_worker(self, shard: _WorkerShard, reason: str) -> None:
        """Reap and respawn one worker (caller holds ``shard.lock``)."""
        shard.reap()
        shard.spawn()
        self.registry.counter(
            "service_worker_restarts_total", {"reason": reason}
        ).inc()

    def _supervise_loop(self) -> None:
        """Respawn workers that die while idle (e.g. external kills)."""
        while not self._stop.wait(0.1):
            for shard in self._shards:
                if not shard.lock.acquire(blocking=False):
                    continue  # mid-call; the shard runner handles it
                try:
                    if shard.proc is not None and not shard.alive():
                        self._restart_worker(shard, "idle_death")
                finally:
                    shard.lock.release()

    # -- dispatch ------------------------------------------------------
    def _track_inflight(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta

    def _inflight_count(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _route(self, item: WorkItem) -> None:
        shard = self._shards[
            shard_of(item.fingerprint, self.workers, item.shard_hops)
        ]
        self._track_inflight(+1)
        shard.queue.put(item)
        self.registry.gauge(
            "service_shard_queue_depth", {"shard": str(shard.index)}
        ).set(shard.queue.qsize())

    def _requeue(self, item: WorkItem) -> bool:
        """Crash/hang retries go straight to the sibling shard's
        queue (the scheduler would re-route to the same home shard
        and its internal queues are unbounded anyway)."""
        self._route(item)
        return True

    def _dispatch_loop(self) -> None:
        while True:
            batch = self.scheduler.next_batch(
                self.max_batch, wait_s=0.05
            )
            if not batch:
                if (
                    self._stop.is_set()
                    and self.scheduler.queue_depth() == 0
                ):
                    break
                if self.scheduler.idle():
                    break
                continue
            for item in batch:
                self._route(item)
        self._dispatch_done.set()

    def _shard_loop(self, shard: _WorkerShard) -> None:
        while True:
            try:
                item = shard.queue.get(timeout=0.05)
            except queue.Empty:
                if (
                    self._dispatch_done.is_set()
                    and shard.queue.empty()
                    and self._inflight_count() == 0
                ):
                    break
                continue
            # Drain whatever else is queued for this shard and batch
            # same-fingerprint items into one worker round trip.
            items = [item]
            while len(items) < self.max_batch:
                try:
                    items.append(shard.queue.get_nowait())
                except queue.Empty:
                    break
            self.registry.gauge(
                "service_shard_queue_depth",
                {"shard": str(shard.index)},
            ).set(shard.queue.qsize())
            groups: Dict[str, List[WorkItem]] = {}
            for it in items:
                groups.setdefault(it.fingerprint, []).append(it)
            try:
                for fp, group in groups.items():
                    self._process_group(shard, fp, group)
            finally:
                self._track_inflight(-len(items))

    # -- the worker round trip -----------------------------------------
    def _call_worker(
        self, shard: _WorkerShard, job: Dict[str, Any], budget_s: float
    ) -> Tuple[str, Optional[Dict[str, Any]]]:
        """``("ok", reply)``, ``("died", None)`` or ``("hung", None)``.

        Caller holds ``shard.lock`` for the whole round trip: the
        supervisor's non-blocking acquire reads a held lock as "a call
        is in flight", which is only true if the lock really is held
        from send to reply (and through any in-call restart).
        """
        for attempt in range(2):
            if not shard.alive():
                self._restart_worker(shard, "idle_death")
            try:
                shard.conn.send(job)
                break
            except (BrokenPipeError, OSError):
                # Died between jobs; a fresh worker gets one more try.
                if attempt == 1:
                    return "died", None
                self._restart_worker(shard, "idle_death")
        deadline = time.monotonic() + budget_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return "hung", None
            try:
                if shard.conn.poll(min(0.05, remaining)):
                    return "ok", shard.conn.recv()
            except (EOFError, OSError):
                return "died", None
            if not shard.alive():
                # One last drain: the reply may have raced the death.
                try:
                    if shard.conn.poll(0):
                        return "ok", shard.conn.recv()
                except (EOFError, OSError):
                    pass
                return "died", None

    def _process_group(
        self, shard: _WorkerShard, fp: str, items: List[WorkItem]
    ) -> None:
        dequeued_ns = time.perf_counter_ns()
        live: List[WorkItem] = []
        for item in items:
            observe_stage(
                self.registry,
                "queue_wait",
                (dequeued_ns - item.admitted_ns) / 1e6,
            )
            if item.expired():
                self._resolve_timeout(item)
            else:
                live.append(item)
        if not live:
            return
        breaker = self._breaker(fp)
        if not breaker.allow():
            retry_after = round(breaker.retry_after_s(), 3)
            for item in live:
                self._resolve(
                    item,
                    make_response(
                        item,
                        "circuit_open",
                        error=(
                            "circuit breaker open: this plan "
                            "repeatedly crashed workers"
                        ),
                        error_kind="circuit_open",
                        retry_after_s=retry_after,
                    ),
                )
            return
        if breaker.state == BREAKER_HALF_OPEN:
            self._publish_breaker(fp, BREAKER_HALF_OPEN)

        exemplar = live[0]
        if getattr(exemplar, "stages", None):
            self._process_pipeline_group(shard, fp, live, breaker)
            return
        started = time.perf_counter()
        with trace_context(
            exemplar.trace_id, exemplar.parent_span_id
        ), span(
            "service.cache_lookup",
            fingerprint=fp[:12],
            group=len(live),
        ) as lookup_span:
            plan, tier = self.cache.lookup(fp)
            outcome = {"memory": "hit", "disk": "disk", "miss": "miss"}[
                tier
            ]
            lookup_span.annotate(outcome=outcome)
        lookup_ms = (time.perf_counter() - started) * 1e3
        observe_stage(self.registry, "cache_lookup", lookup_ms)
        self._note_cache_outcome(fp, outcome)

        execs = []
        for item in live:
            item.attempts += 1
            validate = self._should_validate(item)
            if validate:
                self.registry.counter("service_validation_total").inc()
            execs.append(
                {
                    "id": item.request_id,
                    "seed": item.seed,
                    "validate": validate,
                    "attempt": item.attempts,
                    "trace_id": item.trace_id,
                    "parent_span_id": item.parent_span_id,
                }
            )
        job = {
            "kind": "job",
            "fingerprint": fp,
            "spec": exemplar.spec.to_json(),
            "options": exemplar.options.to_json(),
            "plan": plan.to_json() if plan is not None else None,
            "backend": self.backend,
            "lower_config": self.lower_config,
            "execs": execs,
        }
        budget_s = min(
            max(item.deadline for item in live)
            - time.monotonic()
            + 0.25,
            self.hang_timeout_s,
        )
        budget_s = max(budget_s, 0.05)

        # Hold the shard lock across the whole round trip (and the
        # restart that follows a crash/hang) so the supervisor never
        # reaps or respawns this worker mid-call out from under us.
        call_start_ns = time.perf_counter_ns()
        with trace_context(
            exemplar.trace_id, exemplar.parent_span_id
        ), span(
            "service.pool_call",
            shard=shard.index,
            fingerprint=fp[:12],
            group=len(live),
        ):
            with shard.lock:
                status, reply = self._call_worker(shard, job, budget_s)
                if status != "ok":
                    self._restart_worker(
                        shard, "death" if status == "died" else "hang"
                    )
        observe_stage(
            self.registry,
            "pool_roundtrip",
            (time.perf_counter_ns() - call_start_ns) / 1e6,
        )
        if reply is not None:
            self._harvest_worker_spans(reply)
        if status != "ok":
            reason = (
                "worker_death" if status == "died" else "worker_hang"
            )
            self._record_lethal(fp, reason)
            for item in live:
                if item.expired():
                    self._resolve_timeout(item)
                else:
                    item.shard_hops += 1
                    self._retry_or_fail(
                        item,
                        f"worker {status} while executing plan "
                        f"{fp[:12]}",
                        backoff=False,
                        kind="worker_lost",
                    )
            return

        if reply.get("kind") == "error":
            # An application-level failure (e.g. compile error): the
            # worker survived, so the breaker records a success.
            self._on_breaker_success(fp, breaker)
            self.registry.counter(
                "service_pool_jobs_total", {"outcome": "compile_error"}
            ).inc()
            for item in live:
                self._retry_or_fail(
                    item, reply["error"], kind="compile_failed"
                )
            return

        # Harvest a worker-side compile into the shared cache.
        if reply.get("plan") is not None:
            self.cache.put(CachedPlan.from_json(reply["plan"]))
            plan = CachedPlan.from_json(reply["plan"])
            # A worker actually ran the Fig 11 flow: count the real
            # compile, so single-flight tests can assert exact counts.
            self.registry.counter("service_plan_compiles_total").inc()
        plan = self._fold_lower(reply, plan)
        self.registry.counter(
            "service_cache_total", {"outcome": outcome}
        ).inc()
        self.registry.histogram(
            "service_compile_ms",
            {"cache": outcome},
            buckets=LATENCY_BUCKETS_MS,
        ).observe(
            reply["compile_ms"] if outcome == "miss" else lookup_ms
        )
        self._on_breaker_success(fp, breaker)
        self.registry.counter(
            "service_pool_jobs_total", {"outcome": "ok"}
        ).inc()

        by_id = {item.request_id: item for item in live}
        for result in reply["execs"]:
            item = by_id.pop(result["id"], None)
            if item is None:
                continue
            if result["ok"]:
                self._resolve(
                    item,
                    make_response(
                        item,
                        "ok",
                        cache=outcome,
                        n_outputs=result["n_outputs"],
                        mean=result["mean"],
                        checksum=result["checksum"],
                        validated=result["validated"],
                        summary=plan.summary if plan else {},
                    ),
                )
            elif result["error_kind"] == "validation":
                self._resolve_validation_failure(
                    item, outcome, result["error"]
                )
            else:
                self._retry_or_fail(item, result["error"])
        # Anything the worker did not answer for still gets a response.
        for item in by_id.values():
            self._retry_or_fail(
                item, "worker reply missing this request"
            )

    def _process_pipeline_group(
        self,
        shard: _WorkerShard,
        fp: str,
        live: List[WorkItem],
        breaker: CircuitBreaker,
    ) -> None:
        """One multi-stage workload group's worker round trip.

        The breaker stays keyed on the *workload* fingerprint (a
        pipeline that kills workers quarantines as one unit), while
        plan-cache traffic happens per stage fingerprint — so pipeline
        stages and equivalent single-kernel requests share entries.
        """
        exemplar = live[0]
        started = time.perf_counter()
        stage_plans: Dict[str, Optional[CachedPlan]] = {}
        worst = "hit"
        with trace_context(
            exemplar.trace_id, exemplar.parent_span_id
        ), span(
            "service.cache_lookup",
            fingerprint=fp[:12],
            stages=len(exemplar.stages),
            group=len(live),
        ) as lookup_span:
            for stage in exemplar.stages:
                plan, tier = self.cache.lookup(stage.fingerprint)
                outcome = {
                    "memory": "hit", "disk": "disk", "miss": "miss",
                }[tier]
                stage_plans[stage.fingerprint] = plan
                self.registry.counter(
                    "service_cache_total", {"outcome": outcome}
                ).inc()
                self._note_cache_outcome(stage.fingerprint, outcome)
                worst = worse_cache_outcome(worst, outcome)
            lookup_span.annotate(outcome=worst)
        lookup_ms = (time.perf_counter() - started) * 1e3
        observe_stage(self.registry, "cache_lookup", lookup_ms)

        execs = []
        for item in live:
            item.attempts += 1
            validate = self._should_validate(item)
            if validate:
                self.registry.counter("service_validation_total").inc()
            execs.append(
                {
                    "id": item.request_id,
                    "seed": item.seed,
                    "validate": validate,
                    "attempt": item.attempts,
                    "trace_id": item.trace_id,
                    "parent_span_id": item.parent_span_id,
                }
            )
        job = {
            "kind": "job",
            "fingerprint": fp,
            "pipeline": [
                {
                    "fingerprint": stage.fingerprint,
                    "name": stage.name,
                    "spec": stage.spec.to_json(),
                    "options": stage.options.to_json(),
                    "plan": (
                        stage_plans[stage.fingerprint].to_json()
                        if stage_plans[stage.fingerprint] is not None
                        else None
                    ),
                }
                for stage in exemplar.stages
            ],
            "backend": self.backend,
            "lower_config": self.lower_config,
            "execs": execs,
        }
        budget_s = min(
            max(item.deadline for item in live)
            - time.monotonic()
            + 0.25,
            self.hang_timeout_s,
        )
        budget_s = max(budget_s, 0.05)

        call_start_ns = time.perf_counter_ns()
        with trace_context(
            exemplar.trace_id, exemplar.parent_span_id
        ), span(
            "service.pool_call",
            shard=shard.index,
            fingerprint=fp[:12],
            group=len(live),
        ):
            with shard.lock:
                status, reply = self._call_worker(shard, job, budget_s)
                if status != "ok":
                    self._restart_worker(
                        shard, "death" if status == "died" else "hang"
                    )
        observe_stage(
            self.registry,
            "pool_roundtrip",
            (time.perf_counter_ns() - call_start_ns) / 1e6,
        )
        if reply is not None:
            self._harvest_worker_spans(reply)
        if status != "ok":
            reason = (
                "worker_death" if status == "died" else "worker_hang"
            )
            self._record_lethal(fp, reason)
            for item in live:
                if item.expired():
                    self._resolve_timeout(item)
                else:
                    item.shard_hops += 1
                    self._retry_or_fail(
                        item,
                        f"worker {status} while executing workload "
                        f"{fp[:12]}",
                        backoff=False,
                        kind="worker_lost",
                    )
            return

        if reply.get("kind") == "error":
            self._on_breaker_success(fp, breaker)
            self.registry.counter(
                "service_pool_jobs_total", {"outcome": "compile_error"}
            ).inc()
            for item in live:
                self._retry_or_fail(
                    item, reply["error"], kind="compile_failed"
                )
            return

        # Harvest worker-side stage compiles into the shared cache.
        for plan_json in (reply.get("plans") or {}).values():
            harvested = CachedPlan.from_json(plan_json)
            self.cache.put(harvested)
            stage_plans[harvested.fingerprint] = harvested
            self.registry.counter("service_plan_compiles_total").inc()
        # Persist worker-side lowerings as the plans' cache sidecars.
        lower = reply.get("lower") or {}
        for stage_fp, program in (lower.get("programs") or {}).items():
            plan = stage_plans.get(stage_fp)
            if plan is not None:
                plan.buffer_program = program
                self.cache.put(plan)
        self._fold_lower(reply, None)
        self.registry.histogram(
            "service_compile_ms",
            {"cache": worst},
            buckets=LATENCY_BUCKETS_MS,
        ).observe(
            reply["compile_ms"] if worst == "miss" else lookup_ms
        )
        self._on_breaker_success(fp, breaker)
        self.registry.counter(
            "service_pool_jobs_total", {"outcome": "ok"}
        ).inc()

        final_plan = stage_plans.get(exemplar.stages[-1].fingerprint)
        by_id = {item.request_id: item for item in live}
        for result in reply["execs"]:
            item = by_id.pop(result["id"], None)
            if item is None:
                continue
            if result["ok"]:
                self._resolve(
                    item,
                    make_response(
                        item,
                        "ok",
                        cache=worst,
                        n_outputs=result["n_outputs"],
                        mean=result["mean"],
                        checksum=result["checksum"],
                        validated=result["validated"],
                        summary=(
                            final_plan.summary if final_plan else {}
                        ),
                        stages=result.get("stages"),
                    ),
                )
            elif result["error_kind"] == "validation":
                for stage in item.stages:
                    self.cache.invalidate(stage.fingerprint)
                self.registry.counter(
                    "service_validation_failures_total"
                ).inc()
                self._resolve(
                    item,
                    make_response(
                        item,
                        "validation_failed",
                        cache=worst,
                        validated=False,
                        error=result["error"],
                    ),
                )
            else:
                self._retry_or_fail(item, result["error"])
        for item in by_id.values():
            self._retry_or_fail(
                item, "worker reply missing this request"
            )

    def _fold_lower(
        self, reply: Dict[str, Any], plan: Optional[CachedPlan]
    ) -> Optional[CachedPlan]:
        """Attribute the worker's lowering work in the parent registry.

        Pool workers have no metrics registry (they may be chaos-killed
        at any instant), so the reply's ``lower`` dict carries stage
        timings, path counts and — on first lowering — the buffer
        program to persist as the shared cache's sidecar.
        """
        lower = reply.get("lower")
        if not lower:
            return plan
        program = lower.get("program")
        if program is not None and plan is not None:
            plan.buffer_program = program
            self.cache.put(plan)
        outcome = lower.get("outcome")
        if outcome is not None:
            observe_stage(
                self.registry,
                "lower_bufferize",
                float(lower.get("bufferize_ms", 0.0)),
            )
            observe_stage(
                self.registry,
                "lower_convert",
                float(lower.get("convert_ms", 0.0)),
            )
            self.registry.counter(
                "service_lower_total", {"outcome": str(outcome)}
            ).inc()
        converter = lower.get("converter")
        if converter:
            self.registry.counter(
                "service_lower_converter_total",
                {"converter": str(converter)},
            ).inc()
        if int(lower.get("converter_fallback", 0)):
            self.registry.counter(
                "service_lower_converter_fallback_total"
            ).inc(int(lower["converter_fallback"]))
        compiled = int(lower.get("compiled", 0))
        if compiled:
            self.registry.counter(
                "service_lower_requests_total", {"path": "compiled"}
            ).inc(compiled)
        reasons = lower.get("fallback_reasons") or {}
        for reason, count in reasons.items():
            self.registry.counter(
                "service_lower_fallback_total",
                {"reason": str(reason)},
            ).inc(int(count))
            self.registry.counter(
                "service_lower_requests_total", {"path": "fallback"}
            ).inc(int(count))
        kernel_errors = int(lower.get("kernel_errors", 0))
        if kernel_errors:
            self.registry.counter(
                "service_lower_kernel_errors_total"
            ).inc(kernel_errors)
        return plan

    def _harvest_worker_spans(self, reply: Dict[str, Any]) -> None:
        """Fold the worker's stage spans into this process's tracer
        and the stage histograms (``worker.execute`` → stage
        ``worker_execute`` and so on)."""
        records = reply.get("spans") or []
        if not records:
            return
        tracer = get_tracer()
        for rec in records:
            try:
                if tracer is not None:
                    tracer.add_foreign(rec)
                observe_stage(
                    self.registry,
                    str(rec["name"]).replace(".", "_"),
                    float(rec["dur_us"]) / 1e3,
                )
            except (KeyError, TypeError, ValueError):
                continue  # a malformed span never fails the request

    def _on_breaker_success(
        self, fp: str, breaker: CircuitBreaker
    ) -> None:
        closed = breaker.record_success()
        if closed == BREAKER_CLOSED:
            self._publish_breaker(fp, BREAKER_CLOSED)


@register_executor("process")
def _make_process_executor(
    config, shared, fault_hook
) -> ProcessPlanExecutor:
    """``worker_mode="process"``: the crash-isolated sharded pool."""
    from ..lower.executor import lowering_config_from_service

    return ProcessPlanExecutor(
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown_s=config.breaker_cooldown_s,
        hang_timeout_s=config.hang_timeout_s,
        chaos=config.chaos,
        backend=getattr(config, "backend", "interpreted"),
        lower_config=lowering_config_from_service(config).to_json(),
        **shared,
    )
