"""Simulator performance — cycle-level simulation throughput per
benchmark (cycles simulated per second of wall clock) plus an
end-to-end compile benchmark of the Fig 11 flow.

Not a paper artifact; it keeps the reproduction's own engineering
honest (regressions in the simulator or the flow show up here).
"""

import numpy as np

from conftest import emit

from repro.flow.automation import compile_accelerator
from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import PAPER_BENCHMARKS

#: Reduced grids sized for meaningful but fast simulation.
SIM_GRIDS = {
    "DENOISE": (32, 40),
    "RICIAN": (32, 40),
    "SOBEL": (28, 32),
    "BICUBIC": (28, 32),
    "DENOISE_3D": (10, 11, 12),
    "SEGMENTATION_3D": (8, 9, 10),
}


def _simulate(spec):
    grid = make_input(spec)
    system = build_memory_system(spec.analysis())
    result = ChainSimulator(spec, system, grid).run()
    assert np.allclose(
        result.output_values(), golden_output_sequence(spec, grid)
    )
    return result


def bench_sim_denoise(benchmark):
    spec = PAPER_BENCHMARKS[0].with_grid(SIM_GRIDS["DENOISE"])
    result = benchmark(_simulate, spec)
    assert result.stats.outputs_produced > 0


def bench_sim_sobel(benchmark):
    spec = PAPER_BENCHMARKS[2].with_grid(SIM_GRIDS["SOBEL"])
    result = benchmark(_simulate, spec)
    assert result.stats.outputs_produced > 0


def bench_sim_segmentation_3d(benchmark):
    spec = PAPER_BENCHMARKS[5].with_grid(
        SIM_GRIDS["SEGMENTATION_3D"]
    )
    result = benchmark(_simulate, spec)
    assert result.stats.outputs_produced > 0


def bench_flow_compile_all(benchmark):
    """End-to-end Fig 11 flow over the whole suite."""

    def compile_all():
        return [compile_accelerator(s) for s in PAPER_BENCHMARKS]

    designs = benchmark(compile_all)
    assert len(designs) == 6
    emit(
        "Flow summary — compile_accelerator over the full suite",
        "\n".join(str(d.summary()) for d in designs),
    )
