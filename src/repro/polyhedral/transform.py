"""Unimodular loop transformations (the paper's ref [15] substrate).

The paper's Fig 9 skewed domain "is usually needed when a rectangular
grid is iterated along the 45-degree direction after certain loop
transform", and the Fig 13c accelerator chaining relies on "loop
reordering" so producer and consumer stream in the same order.  This
module implements the classical unimodular transformation framework:

* a :class:`UnimodularTransform` is an integer matrix ``T`` with
  ``|det T| = 1``; it maps iteration vectors ``i -> T i``;
* applying ``T`` to a domain ``{i : A i <= b}`` gives
  ``{y : A T^{-1} y <= b}`` (exact, because ``T^{-1}`` is integral);
* co-transforming the data layout with the same ``T`` keeps stencil
  accesses stencil: ``h' = T h = T i + T f = i' + (T f)``, so the
  window offsets simply become ``T f``.

:func:`transform_spec` applies a transform to a whole
:class:`~repro.stencil.spec.StencilSpec`, producing the skewed-domain
kernels that exercise the dynamic-reuse machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .domain import IntegerPolyhedron
from .lexorder import Vector, as_vector


@dataclass(frozen=True)
class UnimodularTransform:
    """An integer matrix with determinant +/-1."""

    matrix: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        rows = tuple(tuple(int(c) for c in row) for row in self.matrix)
        object.__setattr__(self, "matrix", rows)
        m = len(rows)
        if any(len(r) != m for r in rows):
            raise ValueError("transform matrix must be square")
        det = _determinant(rows)
        if det not in (1, -1):
            raise ValueError(
                f"matrix determinant is {det}; unimodular transforms "
                "need |det| = 1"
            )

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.matrix)

    def apply(self, point: Sequence[int]) -> Vector:
        """``y = T x``."""
        x = as_vector(point)
        if len(x) != self.dim:
            raise ValueError("point dimension mismatch")
        return tuple(
            sum(c * v for c, v in zip(row, x)) for row in self.matrix
        )

    def inverse(self) -> "UnimodularTransform":
        """The exact integer inverse (adjugate over +/-1 determinant)."""
        det = _determinant(self.matrix)
        adj = _adjugate(self.matrix)
        inv = tuple(
            tuple(c * det for c in row) for row in adj
        )  # det is +/-1, so adj/det == adj*det
        return UnimodularTransform(inv)

    def compose(self, other: "UnimodularTransform") -> "UnimodularTransform":
        """``self . other``: apply ``other`` first."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch in composition")
        m = self.dim
        product = tuple(
            tuple(
                sum(
                    self.matrix[i][k] * other.matrix[k][j]
                    for k in range(m)
                )
                for j in range(m)
            )
            for i in range(m)
        )
        return UnimodularTransform(product)

    def transform_domain(
        self, domain: IntegerPolyhedron
    ) -> IntegerPolyhedron:
        """The image ``{T i : i in domain}``."""
        if domain.dim != self.dim:
            raise ValueError("domain dimension mismatch")
        inv = self.inverse().matrix
        coeffs = []
        bounds = []
        for row, b in domain.constraints:
            new_row = tuple(
                sum(row[k] * inv[k][j] for k in range(self.dim))
                for j in range(self.dim)
            )
            coeffs.append(new_row)
            bounds.append(b)
        return IntegerPolyhedron(coeffs, bounds)

    # ------------------------------------------------------------------
    # Classic factory methods
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, dim: int) -> "UnimodularTransform":
        return cls(
            tuple(
                tuple(1 if i == j else 0 for j in range(dim))
                for i in range(dim)
            )
        )

    @classmethod
    def skew(
        cls, dim: int, target: int, source: int, factor: int = 1
    ) -> "UnimodularTransform":
        """``i[target] += factor * i[source]`` (the 45-degree skew of
        Fig 9 is ``skew(2, 1, 0)``)."""
        if target == source:
            raise ValueError("skew needs two distinct dimensions")
        rows = [
            [1 if i == j else 0 for j in range(dim)] for i in range(dim)
        ]
        rows[target][source] = factor
        return cls(tuple(tuple(r) for r in rows))

    @classmethod
    def interchange(
        cls, dim: int, a: int, b: int
    ) -> "UnimodularTransform":
        """Swap two loop dimensions (the Fig 13c loop reordering)."""
        rows = [
            [1 if i == j else 0 for j in range(dim)] for i in range(dim)
        ]
        rows[a], rows[b] = rows[b], rows[a]
        return cls(tuple(tuple(r) for r in rows))

    @classmethod
    def reversal(cls, dim: int, axis: int) -> "UnimodularTransform":
        """Negate one loop dimension."""
        rows = [
            [1 if i == j else 0 for j in range(dim)] for i in range(dim)
        ]
        rows[axis][axis] = -1
        return cls(tuple(tuple(r) for r in rows))


def _determinant(rows) -> int:
    m = len(rows)
    if m == 1:
        return rows[0][0]
    if m == 2:
        return rows[0][0] * rows[1][1] - rows[0][1] * rows[1][0]
    det = 0
    for j in range(m):
        minor = tuple(
            tuple(row[k] for k in range(m) if k != j)
            for row in rows[1:]
        )
        det += (-1) ** j * rows[0][j] * _determinant(minor)
    return det


def _adjugate(rows) -> Tuple[Tuple[int, ...], ...]:
    m = len(rows)
    if m == 1:
        return ((1,),)
    cof = []
    for i in range(m):
        cof_row = []
        for j in range(m):
            minor = tuple(
                tuple(rows[r][c] for c in range(m) if c != j)
                for r in range(m)
                if r != i
            )
            cof_row.append((-1) ** (i + j) * _determinant(minor))
        cof.append(tuple(cof_row))
    # adjugate = transpose of cofactor matrix
    return tuple(
        tuple(cof[j][i] for j in range(m)) for i in range(m)
    )


def transform_spec(spec, transform: UnimodularTransform):
    """Apply a unimodular loop + layout co-transformation to a spec.

    The result is a new :class:`~repro.stencil.spec.StencilSpec` with
    the transformed (generally non-rectangular) iteration domain, the
    transformed window offsets ``T f``, and a grid sized to the
    transformed data footprint.  The kernel expression is rewritten so
    its references use the transformed offsets.
    """
    from ..stencil.expr import BinOp, Const, Expr, Ref, UnOp
    from ..stencil.spec import StencilSpec, StencilWindow

    if transform.dim != spec.dim:
        raise ValueError("transform dimensionality mismatch")

    new_domain = transform.transform_domain(spec.iteration_domain)
    offset_map = {
        o: transform.apply(o) for o in spec.window.offsets
    }
    new_window = StencilWindow.from_offsets(
        list(offset_map.values())
    )

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, Ref):
            if node.array == spec.input_array:
                return Ref(offset_map[node.offset], node.array)
            return node
        if isinstance(node, Const):
            return node
        if isinstance(node, UnOp):
            return UnOp(node.op, rewrite(node.operand))
        if isinstance(node, BinOp):
            return BinOp(node.op, rewrite(node.left), rewrite(node.right))
        raise TypeError(node)

    # Grid: bounding box of all transformed data accesses, shifted to
    # start at zero via the domain's own coordinates (we keep absolute
    # coordinates, so the grid must cover the transformed footprint).
    lo, hi = new_domain.bounding_box()
    mins, maxs = new_window.span()
    lows = [l + m for l, m in zip(lo, mins)]
    highs = [h + m for h, m in zip(hi, maxs)]
    if any(l < 0 for l in lows):
        shift = tuple(max(0, -l) for l in lows)
        new_domain = new_domain.translate(shift)
        highs = [h + s for h, s in zip(highs, shift)]
    grid = tuple(h + 1 for h in highs)
    return StencilSpec(
        name=f"{spec.name}_T",
        grid=grid,
        window=new_window,
        expression=rewrite(spec.expression),
        input_array=spec.input_array,
        output_array=spec.output_array,
        iteration_domain=new_domain,
    )
