"""Spans and tracing: where does the wall-clock time of a run go?

A :class:`Span` measures one named region of code with monotonic
timestamps (``time.perf_counter_ns``); spans nest, so a trace of one
``explore`` run shows each candidate evaluation inside the exploration,
each partitioning plan inside the candidate, and so on.  The
:class:`Tracer` collects finished spans thread-safely and exports them
in two formats:

* **JSONL** (:meth:`Tracer.export_jsonl`) — one span per line, trivially
  greppable and streamable;
* **Chrome trace_event JSON** (:meth:`Tracer.export_chrome`) — loadable
  directly in ``chrome://tracing`` or https://ui.perfetto.dev for a
  flame-chart view of the flow.

Instrumentation sites call the module-level :func:`span` helper, which
is a **no-op unless a tracer is installed** (:func:`install_tracer`):
without one it returns a shared stateless null context manager, so the
instrumented code pays a single global read per call site.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "record_span",
    "span",
    "traced",
    "uninstall_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, timing and structural position."""

    name: str
    start_us: float  # monotonic microseconds since the tracer epoch
    duration_us: float
    thread_id: int
    depth: int
    parent: Optional[str]
    args: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ts_us": round(self.start_us, 3),
            "dur_us": round(self.duration_us, 3),
            "tid": self.thread_id,
            "depth": self.depth,
            "parent": self.parent,
            "args": self.args,
        }

    def as_chrome_event(self, pid: int) -> Dict[str, Any]:
        """A Chrome ``trace_event`` complete ("X") event."""
        return {
            "name": self.name,
            "ph": "X",
            "ts": round(self.start_us, 3),
            "dur": round(self.duration_us, 3),
            "pid": pid,
            "tid": self.thread_id,
            "args": self.args,
        }


class Span:
    """Context manager timing one named region (created by a tracer)."""

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self._depth = 0
        self._parent: Optional[str] = None

    def annotate(self, **kwargs: Any) -> "Span":
        """Attach extra key/value arguments to the span."""
        self.args.update(kwargs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._parent = stack[-1].name if stack else None
        self._depth = len(stack)
        stack.append(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self, self._start_ns, end_ns)
        return False


class _NullSpan:
    """Shared stateless no-op span used when no tracer is installed."""

    __slots__ = ()

    def annotate(self, **kwargs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe in-process span collector.

    All timestamps are monotonic nanoseconds relative to the tracer's
    construction, exported as microseconds (the trace_event unit).
    """

    def __init__(self) -> None:
        self._epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args: Any) -> Span:
        """A new (not yet entered) span owned by this tracer."""
        return Span(self, name, args)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span_obj: Span, start_ns: int, end_ns: int) -> None:
        record = SpanRecord(
            name=span_obj.name,
            start_us=(start_ns - self._epoch_ns) / 1e3,
            duration_us=(end_ns - start_ns) / 1e3,
            thread_id=threading.get_ident() & 0xFFFFFFFF,
            depth=span_obj._depth,
            parent=span_obj._parent,
            args=dict(span_obj.args),
        )
        with self._lock:
            self._records.append(record)

    def add_complete(
        self, name: str, start_ns: int, end_ns: int, **args: Any
    ) -> None:
        """Record an externally timed region (no nesting bookkeeping).

        Used by call sites whose begin/end do not bracket a ``with``
        block (e.g. the off-chip stream, which starts on its first pop
        and ends at exhaustion many cycles later).
        """
        record = SpanRecord(
            name=name,
            start_us=(start_ns - self._epoch_ns) / 1e3,
            duration_us=(end_ns - start_ns) / 1e3,
            thread_id=threading.get_ident() & 0xFFFFFFFF,
            depth=0,
            parent=None,
            args=args,
        )
        with self._lock:
            self._records.append(record)

    # -- inspection ----------------------------------------------------
    @property
    def records(self) -> List[SpanRecord]:
        """A snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- exporters -----------------------------------------------------
    def to_jsonl(self, fileobj: IO[str]) -> int:
        """Write one JSON object per span; returns the line count."""
        records = self.records
        for record in records:
            fileobj.write(json.dumps(record.as_dict()) + "\n")
        return len(records)

    def export_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            return self.to_jsonl(fh)

    def chrome_events(self) -> List[Dict[str, Any]]:
        pid = os.getpid()
        return [r.as_chrome_event(pid) for r in self.records]

    def to_chrome(self, fileobj: IO[str]) -> int:
        """Write a ``chrome://tracing``-loadable JSON document."""
        events = self.chrome_events()
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fileobj,
            indent=1,
        )
        return len(events)

    def export_chrome(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            return self.to_chrome(fh)


# ---------------------------------------------------------------------
# Global installation: one process-wide tracer, read without locking on
# the hot path (module-global load), written under a lock.
_install_lock = threading.Lock()
_tracer: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _tracer
    with _install_lock:
        _tracer = tracer if tracer is not None else Tracer()
        return _tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove and return the installed tracer (if any)."""
    global _tracer
    with _install_lock:
        tracer, _tracer = _tracer, None
        return tracer


def get_tracer() -> Optional[Tracer]:
    return _tracer


def span(name: str, **args: Any):
    """A span on the installed tracer, or a shared no-op without one."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


def record_span(name: str, start_ns: int, end_ns: int, **args: Any) -> None:
    """Record an externally timed span if a tracer is installed."""
    tracer = _tracer
    if tracer is not None:
        tracer.add_complete(name, start_ns, end_ns, **args)


def traced(name: str):
    """Decorator: wrap every call of a function in a named span.

    With no tracer installed the wrapper short-circuits to the plain
    function call.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _tracer
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
