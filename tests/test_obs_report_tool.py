"""Direct unit tests for the ``tools/obs_report.py`` summarizer."""

import importlib.util
import pathlib

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

_TOOL = (
    pathlib.Path(__file__).parent.parent / "tools" / "obs_report.py"
)


@pytest.fixture(scope="module")
def obs_report():
    spec = importlib.util.spec_from_file_location("obs_report", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _traced_file(tmp_path, fmt):
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    path = tmp_path / f"trace.{fmt}"
    if fmt == "jsonl":
        tracer.export_jsonl(str(path))
    else:
        tracer.export_chrome(str(path))
    return path


@pytest.mark.parametrize("fmt", ["json", "jsonl"])
def test_trace_input_summarized(obs_report, tmp_path, capsys, fmt):
    path = _traced_file(tmp_path, fmt)
    rc = obs_report.main([str(path), "--top", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "3 spans, 2 span names" in out
    assert "outer" in out and "inner" in out


def test_sort_by_calls(obs_report, tmp_path, capsys):
    path = _traced_file(tmp_path, "jsonl")
    rc = obs_report.main([str(path), "--sort", "calls"])
    out = capsys.readouterr().out
    assert rc == 0
    # "inner" ran twice, so it leads the calls-sorted table.
    table = out.splitlines()
    inner_row = next(i for i, l in enumerate(table) if "inner" in l)
    outer_row = next(i for i, l in enumerate(table) if "outer" in l)
    assert inner_row < outer_row


def test_metrics_json_input_is_graceful(obs_report, tmp_path, capsys):
    """A metrics snapshot is valid JSON but holds no spans: the tool
    must report that cleanly (rc 1), not crash or fabricate rows."""
    registry = MetricsRegistry()
    registry.counter("service_requests_total", {"status": "ok"}).inc()
    registry.histogram("service_compile_ms").observe(1.5)
    path = tmp_path / "metrics.json"
    registry.export_json(str(path))

    rc = obs_report.main([str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "no spans" in out


def test_missing_file_errors(obs_report, tmp_path, capsys):
    rc = obs_report.main([str(tmp_path / "absent.json")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "cannot read" in err
