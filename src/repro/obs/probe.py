"""Opt-in simulator instrumentation: the :class:`SimProbe` interface.

:class:`~repro.sim.engine.ChainSimulator` accepts a probe and calls it
once per simulated cycle (plus once on completion and once on
deadlock).  When no probe is attached the engine pays one attribute
check per cycle — the contract enforced by
``tests/test_obs_overhead.py``.

:class:`MetricsProbe` is the standard implementation.  Per cycle it

* increments one fire/discard/stall/idle counter per data filter
  (``sim_filter_cycles_total{filter=..,ref=..,status=..}``),
* observes every reuse FIFO's occupancy into a per-FIFO histogram
  sized to that FIFO's capacity (``sim_fifo_occupancy``),
* counts kernel fires and total cycles, and
* appends the cycle's compact state to a bounded ring buffer.

On deadlock the ring buffer becomes the *pre-state* of the failure: the
engine appends :meth:`MetricsProbe.deadlock_context` to the
:class:`~repro.sim.engine.DeadlockError` message, so the report shows
the last N cycles of per-module activity instead of only the final
frozen state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .metrics import Counter, Histogram, MetricsRegistry, get_metrics

__all__ = ["MetricsProbe", "SimProbe"]


class SimProbe:
    """Interface the simulator drives; the base class observes nothing."""

    def on_cycle(self, sim, progress: bool) -> None:
        """Called at the end of every simulated cycle."""

    def on_complete(self, sim, result) -> None:
        """Called once when the run produced all expected outputs."""

    def deadlock_context(self, sim) -> List[str]:
        """Extra report lines appended to the ``DeadlockError`` dump."""
        return []


def _occupancy_buckets(capacity: int) -> List[float]:
    """0, 1, 2, 4, ... buckets covering one FIFO's capacity."""
    buckets: List[float] = [0.0]
    bound = 1
    while bound < capacity:
        buckets.append(float(bound))
        bound *= 2
    buckets.append(float(capacity))
    return buckets


class MetricsProbe(SimProbe):
    """Populate a metrics registry + ring buffer from a simulation.

    ``registry`` defaults to the globally installed one (see
    :func:`repro.obs.metrics.install_metrics`) or a fresh private
    registry; ``ring_size`` bounds the deadlock pre-state history.
    """

    #: Per-cycle status code -> metric label (Table 3 notation).
    STATUS_NAMES = {
        "f": "forward",
        "d": "discard",
        "s": "stall",
        ".": "idle",
    }

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        ring_size: int = 16,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring size must be >= 1")
        if registry is None:
            registry = get_metrics() or MetricsRegistry()
        self.registry = registry
        self.ring: Deque[Tuple[int, str, Tuple[int, ...]]] = deque(
            maxlen=ring_size
        )
        self._bound = False
        self._filter_counters: List[dict] = []
        self._fifos: List[object] = []
        self._fifo_hists: List[Histogram] = []
        self._cycle_counter: Optional[Counter] = None
        self._kernel_counter: Optional[Counter] = None
        self._last_outputs = 0

    # ------------------------------------------------------------------
    def _bind(self, sim) -> None:
        reg = self.registry
        for flt in sim._filters:
            self._filter_counters.append(
                {
                    code: reg.counter(
                        "sim_filter_cycles_total",
                        labels={
                            "filter": str(flt.filter_id),
                            "ref": flt.reference.label,
                            "status": status,
                        },
                    )
                    for code, status in self.STATUS_NAMES.items()
                }
            )
        for seg in sim._segments:
            for fifo in seg.fifos:
                self._fifos.append(fifo)
                self._fifo_hists.append(
                    reg.histogram(
                        "sim_fifo_occupancy",
                        labels={"fifo": str(fifo.fifo_id)},
                        buckets=_occupancy_buckets(fifo.capacity),
                    )
                )
        self._cycle_counter = reg.counter("sim_cycles_total")
        self._kernel_counter = reg.counter("sim_kernel_fires_total")
        self._bound = True

    # ------------------------------------------------------------------
    def on_cycle(self, sim, progress: bool) -> None:
        if not self._bound:
            self._bind(sim)
        statuses = []
        for flt, counters in zip(sim._filters, self._filter_counters):
            code = flt.status
            counters[code].inc()
            statuses.append(code)
        occupancies = []
        for fifo, hist in zip(self._fifos, self._fifo_hists):
            occ = len(fifo)
            hist.observe(occ)
            occupancies.append(occ)
        self._cycle_counter.inc()
        fired = sim._kernel.consumed_iterations
        if fired > self._last_outputs:
            self._kernel_counter.inc(fired - self._last_outputs)
            self._last_outputs = fired
        self.ring.append(
            (sim.cycle, "".join(statuses), tuple(occupancies))
        )

    # ------------------------------------------------------------------
    def on_complete(self, sim, result) -> None:
        reg = self.registry
        stats = result.stats
        reg.gauge("sim_total_cycles").set(stats.total_cycles)
        reg.gauge("sim_outputs_produced").set(stats.outputs_produced)
        if stats.first_output_cycle is not None:
            reg.gauge("sim_fill_latency_cycles").set(
                stats.first_output_cycle
            )
        reg.gauge("sim_steady_state_ii").set(stats.steady_state_ii)
        for index, seg in enumerate(sim._segments):
            labels = {"segment": str(index)}
            reg.counter(
                "offchip_words_streamed_total", labels=labels
            ).inc(seg.stream.elements_streamed)
            stalls = getattr(seg.stream, "row_stall_cycles", None)
            if stalls is not None:
                reg.counter(
                    "offchip_row_stall_cycles_total", labels=labels
                ).inc(stalls)
        bus = sim._bus
        if bus is not None:
            reg.counter("offchip_bus_words_total").inc(bus.total_words)

    # ------------------------------------------------------------------
    def deadlock_context(self, sim) -> List[str]:
        if not self.ring:
            return []
        lines = [
            f"last {len(self.ring)} cycles before deadlock "
            "(filters: f=forward d=discard s=stall .=idle):"
        ]
        for cycle, statuses, occupancies in self.ring:
            lines.append(
                f"  cycle {cycle}: filters={statuses} "
                f"fifos={list(occupancies)}"
            )
        return lines
