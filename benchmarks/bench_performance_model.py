"""Extension — closed-form performance model vs cycle simulation.

The paper's "full pipelining" target has a closed-form consequence: the
run is stream-bound (one off-chip word per cycle), the first output
fires at the earliest reference's first stream rank + 1, and the total
equals the last needed element's rank + 1.  This bench validates the
model *exactly* against the simulator on scaled grids and prints the
paper-scale predictions (e.g. DENOISE: 786k-word stream, 784k outputs,
99.7 % of stream words produce an output).
"""

from conftest import emit

from repro.flow.performance import predict, validate_model
from repro.flow.report import format_table
from repro.stencil.kernels import PAPER_BENCHMARKS

SIM_GRIDS = {
    "DENOISE": (24, 32),
    "RICIAN": (24, 32),
    "SOBEL": (20, 24),
    "BICUBIC": (20, 24),
    "DENOISE_3D": (8, 9, 10),
    "SEGMENTATION_3D": (7, 8, 9),
}


def bench_model_validation(benchmark):
    """Exact agreement on every benchmark at simulation scale."""

    def sweep():
        rows = []
        for bench in PAPER_BENCHMARKS:
            spec = bench.with_grid(SIM_GRIDS[bench.name])
            v = validate_model(spec)
            rows.append(
                {
                    "benchmark": bench.name,
                    "predicted_cycles": v.predicted.total_cycles,
                    "measured_cycles": v.measured_total_cycles,
                    "predicted_fill": v.predicted.fill_cycles,
                    "measured_fill": v.measured_fill_cycles,
                    "exact": v.cycles_exact and v.fill_exact,
                }
            )
        return rows

    rows = benchmark(sweep)
    assert all(r["exact"] for r in rows)
    emit(
        "Performance model vs simulator (scaled grids, exact match "
        "required)",
        format_table(rows),
    )


def bench_paper_scale_predictions(benchmark):
    """Closed-form predictions at the paper's full grid sizes."""

    def sweep():
        return [
            dict(
                benchmark=spec.name, **predict(spec).as_row()
            )
            for spec in PAPER_BENCHMARKS
        ]

    rows = benchmark(sweep)
    for row in rows:
        assert 0.9 < row["efficiency"] <= 1.0  # near-perfect pipelining
    emit(
        "Paper-scale closed-form performance (one off-chip word per "
        "cycle)",
        format_table(rows),
    )
