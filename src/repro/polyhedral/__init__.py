"""Polyhedral model substrate (Appendix 9.1 of the paper).

Public surface:

* lexicographic-order helpers (:mod:`repro.polyhedral.lexorder`),
* integer polyhedra and boxes (:mod:`repro.polyhedral.domain`),
* stencil access functions and array references
  (:mod:`repro.polyhedral.access`),
* reuse-distance computation (:mod:`repro.polyhedral.reuse`),
* whole-array analysis (:mod:`repro.polyhedral.analysis`).
"""

from .access import (
    AccessFunction,
    ArrayReference,
    NotAStencilAccessError,
    input_data_domain,
)
from .analysis import AdjacentReusePair, StencilAnalysis
from .domain import (
    BoxDomain,
    DomainUnion,
    EmptyDomainError,
    IntegerPolyhedron,
    domain_from_extents,
)
from .lexorder import (
    as_vector,
    is_strictly_descending,
    lex_compare,
    lex_ge,
    lex_gt,
    lex_le,
    lex_lt,
    lex_max,
    lex_min,
    lex_sorted,
)
from .transform import UnimodularTransform, transform_spec
from .reuse import (
    ReuseProfileEntry,
    box_lex_span,
    check_linearity,
    max_reuse_distance,
    reuse_distance_profile,
    reuse_distance_vector,
    total_reuse_window,
)

__all__ = [
    "AccessFunction",
    "AdjacentReusePair",
    "ArrayReference",
    "BoxDomain",
    "DomainUnion",
    "EmptyDomainError",
    "IntegerPolyhedron",
    "NotAStencilAccessError",
    "ReuseProfileEntry",
    "StencilAnalysis",
    "UnimodularTransform",
    "as_vector",
    "box_lex_span",
    "check_linearity",
    "domain_from_extents",
    "input_data_domain",
    "is_strictly_descending",
    "lex_compare",
    "lex_ge",
    "lex_gt",
    "lex_le",
    "lex_lt",
    "lex_max",
    "lex_min",
    "lex_sorted",
    "max_reuse_distance",
    "reuse_distance_profile",
    "reuse_distance_vector",
    "total_reuse_window",
    "transform_spec",
]
