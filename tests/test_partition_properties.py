"""Property-based tests: for *random* stencil windows the paper's plan is
always optimal and the baselines are always conflict-free but never
better."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.partitioning.cyclic import plan_cyclic
from repro.partitioning.gmp import plan_gmp
from repro.partitioning.nonuniform import plan_nonuniform
from repro.partitioning.verify import scan_conflicts
from repro.polyhedral.access import ArrayReference
from repro.polyhedral.analysis import StencilAnalysis
from repro.polyhedral.domain import BoxDomain


@st.composite
def random_analysis(draw):
    """A random 2D stencil window on a small grid."""
    n = draw(st.integers(2, 7))
    offsets = draw(
        st.sets(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=n,
            max_size=n,
        )
    )
    rows = draw(st.integers(10, 18))
    cols = draw(st.integers(10, 18))
    mins = [min(o[d] for o in offsets) for d in (0, 1)]
    maxs = [max(o[d] for o in offsets) for d in (0, 1)]
    iter_domain = BoxDomain(
        (-mins[0], -mins[1]),
        (rows - 1 - maxs[0], cols - 1 - maxs[1]),
    )
    refs = [ArrayReference("A", o) for o in offsets]
    return StencilAnalysis("A", refs, iter_domain)


class TestNonUniformProperties:
    @given(random_analysis())
    @settings(max_examples=50, deadline=None)
    def test_plan_always_optimal(self, analysis):
        """plan_nonuniform internally re-validates both deadlock-free
        conditions and both optimality targets; building it must never
        raise for any stencil window."""
        plan = plan_nonuniform(analysis)
        assert plan.num_banks == analysis.n_references - 1
        assert plan.total_size == analysis.minimum_total_buffer()

    @given(random_analysis())
    @settings(max_examples=50, deadline=None)
    def test_capacities_match_pairwise_distances(self, analysis):
        plan = plan_nonuniform(analysis)
        pairs = analysis.adjacent_pairs()
        assert plan.fifo_capacities() == [
            p.max_distance for p in pairs
        ]

    @given(random_analysis())
    @settings(max_examples=50, deadline=None)
    def test_never_more_banks_than_uniform(self, analysis):
        ours = plan_nonuniform(analysis)
        cyclic = plan_cyclic(analysis, max_banks=256)
        assert ours.num_banks < cyclic.num_banks

    @given(random_analysis())
    @settings(max_examples=30, deadline=None)
    def test_never_more_storage_than_gmp(self, analysis):
        ours = plan_nonuniform(analysis)
        gmp = plan_gmp(analysis, max_banks=256)
        assert ours.total_size <= gmp.total_size
        assert ours.num_banks < gmp.num_banks


class TestUniformProperties:
    @given(random_analysis())
    @settings(max_examples=30, deadline=None)
    def test_cyclic_plans_conflict_free(self, analysis):
        plan = plan_cyclic(analysis, max_banks=256)
        report = scan_conflicts(plan, analysis, sample_limit=500)
        assert report.conflict_free

    @given(random_analysis())
    @settings(max_examples=30, deadline=None)
    def test_gmp_plans_conflict_free(self, analysis):
        plan = plan_gmp(analysis, max_banks=256)
        report = scan_conflicts(plan, analysis, sample_limit=500)
        assert report.conflict_free

    @given(random_analysis())
    @settings(max_examples=30, deadline=None)
    def test_gmp_never_worse_than_unpadded_cyclic(self, analysis):
        cyclic = plan_cyclic(analysis, max_banks=256)
        gmp = plan_gmp(analysis, max_banks=256)
        assert gmp.num_banks <= cyclic.num_banks

    @given(random_analysis())
    @settings(max_examples=30, deadline=None)
    def test_uniform_banks_at_least_n(self, analysis):
        plan = plan_cyclic(analysis, max_banks=256)
        assert plan.num_banks >= analysis.n_references
