"""Unit tests for HLS-lite scheduling (ASAP + modulo)."""

import pytest

from repro.hls.ir import DataflowGraph, LOAD
from repro.hls.schedule import (
    FIXED32_LIBRARY,
    FLOAT32_LIBRARY,
    OperatorSpec,
    SchedulingError,
    asap_schedule,
    modulo_schedule,
    schedule_kernel,
)
from repro.stencil.expr import Ref
from repro.stencil.kernels import DENOISE, PAPER_BENCHMARKS, SOBEL


def graph_of(expr):
    return DataflowGraph.from_expression(expr)


class TestAsap:
    def test_dependencies_respected(self):
        g = graph_of((Ref((0, 0)) + Ref((0, 1))) * Ref((1, 0)))
        sched = asap_schedule(g, FLOAT32_LIBRARY)
        ops = {op.opcode: op for op in g.arithmetic_ops()}
        add_end = (
            sched.start_times[ops["add"].node_id]
            + FLOAT32_LIBRARY["add"].latency
        )
        assert sched.start_times[ops["mul"].node_id] >= add_end

    def test_latency_is_critical_path(self):
        g = graph_of(Ref((0, 0)) + Ref((0, 1)))
        sched = asap_schedule(g, FLOAT32_LIBRARY)
        assert sched.latency == (
            FLOAT32_LIBRARY[LOAD].latency
            + FLOAT32_LIBRARY["add"].latency
        )

    def test_fixed_point_shorter_than_float(self):
        g = graph_of(DENOISE.expression)
        fx = asap_schedule(g, FIXED32_LIBRARY)
        fp = asap_schedule(g, FLOAT32_LIBRARY)
        assert fx.latency < fp.latency

    def test_ii_is_1(self):
        sched = asap_schedule(graph_of(DENOISE.expression))
        assert sched.ii == 1

    def test_unit_counts_fully_spatial(self):
        g = graph_of(DENOISE.expression)
        sched = asap_schedule(g)
        hist = g.opcode_histogram()
        for opcode, count in hist.items():
            assert sched.unit_counts[opcode] == count
        assert sched.unit_counts[LOAD] == len(g.loads())

    def test_unknown_opcode_rejected(self):
        g = graph_of(Ref((0, 0)) + Ref((0, 1)))
        with pytest.raises(SchedulingError):
            asap_schedule(g, {LOAD: OperatorSpec(1, 0, 0, 0)})


class TestModulo:
    def test_ii2_halves_adder_count(self):
        # DENOISE has 4 adds; at II=2 two adders suffice.
        g = graph_of(DENOISE.expression)
        sched = modulo_schedule(g, ii=2, library=FIXED32_LIBRARY)
        assert sched.unit_counts["add"] == 2

    def test_reservation_table_respected(self):
        g = graph_of(SOBEL.expression)
        for ii in (2, 3):
            sched = modulo_schedule(g, ii=ii, library=FIXED32_LIBRARY)
            # Count ops per (opcode, modulo slot); never exceeds units.
            usage = {}
            for op in g.arithmetic_ops():
                key = (op.opcode, sched.start_times[op.node_id] % ii)
                usage[key] = usage.get(key, 0) + 1
            for (opcode, _), used in usage.items():
                assert used <= sched.unit_counts[opcode]

    def test_dependencies_respected(self):
        g = graph_of(SOBEL.expression)
        sched = modulo_schedule(g, ii=2, library=FIXED32_LIBRARY)
        lib = sched.library
        for op in g.arithmetic_ops():
            for operand_id in op.operands:
                operand = g.operations[operand_id]
                end = sched.start_times[operand_id] + lib[
                    operand.opcode
                ].latency
                assert sched.start_times[op.node_id] >= end

    def test_latency_not_shorter_than_asap(self):
        g = graph_of(SOBEL.expression)
        asap = asap_schedule(g, FIXED32_LIBRARY)
        mod = modulo_schedule(g, ii=4, library=FIXED32_LIBRARY)
        assert mod.latency >= asap.latency

    def test_invalid_ii(self):
        with pytest.raises(ValueError):
            modulo_schedule(graph_of(Ref((0, 0)) + 1.0), ii=0)


class TestScheduleKernel:
    def test_front_door_ii1_is_asap(self):
        g = graph_of(DENOISE.expression)
        assert schedule_kernel(g, ii=1).latency == (
            asap_schedule(g).latency
        )

    def test_front_door_validates(self):
        g = DataflowGraph()
        g.add_load("A", (0, 0))
        with pytest.raises(ValueError):
            schedule_kernel(g)

    @pytest.mark.parametrize(
        "spec", PAPER_BENCHMARKS, ids=lambda s: s.name
    )
    def test_all_benchmarks_schedule(self, spec):
        g = graph_of(spec.expression)
        sched = schedule_kernel(g, ii=1, library=FIXED32_LIBRARY)
        assert sched.latency > 0
        assert sched.ii == 1


class TestResourceAccounting:
    def test_fixed_point_uses_no_dsps(self):
        g = graph_of(DENOISE.expression)
        sched = schedule_kernel(g, library=FIXED32_LIBRARY)
        assert sched.dsp_usage() == 0

    def test_float_uses_dsps(self):
        g = graph_of(DENOISE.expression)
        sched = schedule_kernel(g, library=FLOAT32_LIBRARY)
        assert sched.dsp_usage() > 0

    def test_lut_ff_positive(self):
        sched = schedule_kernel(graph_of(DENOISE.expression))
        assert sched.lut_usage() > 0
        assert sched.ff_usage() > 0

    def test_sharing_reduces_luts(self):
        g = graph_of(SOBEL.expression)
        spatial = schedule_kernel(g, ii=1, library=FIXED32_LIBRARY)
        shared = modulo_schedule(g, ii=4, library=FIXED32_LIBRARY)
        assert shared.lut_usage() < spatial.lut_usage()
