"""Table 5 — modelled synthesis results: BRAM / slices / DSP / clock
period for the [8]-style baseline vs our microarchitecture, per
benchmark, on the Virtex-7 XC7VX485T model.

Paper shape (ISE 14.2 ground truth): ours uses substantially fewer
block RAMs (heterogeneous mapping + fewer banks; paper average -66 %),
fewer slices (counters instead of mod/div address transformers; paper
average -25 %), zero DSPs (paper: complete elimination), and meets the
5 ns target with more slack.  Absolute values come from our analytic
model, not ISE — see EXPERIMENTS.md for the calibration discussion.
"""

from conftest import emit

from repro.flow.report import (
    average_reduction,
    format_table,
    table5_report,
)
from repro.stencil.kernels import PAPER_BENCHMARKS


def bench_table5_full_model(benchmark):
    """Benchmark the complete Table 5 computation."""
    rows = benchmark(table5_report, PAPER_BENCHMARKS)

    for row in rows:
        assert row["bram_ours"] < row["bram_gmp"]
        assert row["slice_ours"] < row["slice_gmp"]
        assert row["dsp_ours"] == 0 and row["dsp_gmp"] > 0
        assert row["cp_ours"] <= row["cp_gmp"] <= 5.0

    bram_red = average_reduction(rows, "bram_ours", "bram_gmp")
    slice_red = average_reduction(rows, "slice_ours", "slice_gmp")
    emit(
        "Table 5 — modelled synthesis results (baseline [8] vs ours)",
        format_table(rows)
        + f"\naverage BRAM reduction:  {bram_red}% (paper: 66%)"
        + f"\naverage slice reduction: {slice_red}% (paper: 25%)"
        + "\nDSP elimination: 100% (paper: 100%)",
    )
    assert bram_red > 20.0
    assert slice_red > 20.0
