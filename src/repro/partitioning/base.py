"""Common types for memory-partitioning plans.

A *partition plan* describes how the data-reuse buffer of one array is
split into banks: how many banks, each bank's capacity, and (for uniform
cyclic schemes) the address-to-bank mapping.  Plans are produced by

* :mod:`repro.partitioning.nonuniform` — the paper's method,
* :mod:`repro.partitioning.cyclic` — linear cyclic partitioning [5, 6],
* :mod:`repro.partitioning.gmp` — padded multidimensional cyclic
  partitioning in the style of [7, 8],

and consumed by the microarchitecture generator, the resource estimator
and the verification / simulation layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..polyhedral.lexorder import Vector


@dataclass(frozen=True)
class BankSpec:
    """One physical memory bank in a partitioned reuse buffer."""

    bank_id: int
    capacity: int
    role: str  # "reuse_fifo" for the paper's chain, "cyclic_bank" for
    # uniform schemes
    note: str = ""

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("bank capacity must be non-negative")


@dataclass(frozen=True)
class PartitionPlan:
    """Base result shared by all partitioning schemes."""

    scheme: str
    array: str
    n_references: int
    banks: Tuple[BankSpec, ...]
    achieved_ii: int

    @property
    def num_banks(self) -> int:
        """Number of memory banks (the paper's primary metric)."""
        return len(self.banks)

    @property
    def total_size(self) -> int:
        """Total reuse-buffer storage in data elements."""
        return sum(b.capacity for b in self.banks)

    def summary_row(self) -> dict:
        """One row in the style of Table 4."""
        return {
            "scheme": self.scheme,
            "array": self.array,
            "original_ii": self.n_references,
            "target_ii": 1,
            "achieved_ii": self.achieved_ii,
            "banks": self.num_banks,
            "total_size": self.total_size,
        }


@dataclass(frozen=True)
class UniformBankMapping:
    """Address-to-bank mapping of a uniform cyclic scheme.

    ``bank(h) = (sum_j weights[j] * h[j]) mod num_banks`` over the
    (possibly padded) linearized address space.  ``strides`` are the
    linearization strides of the padded grid (innermost stride 1), so
    ``weights == strides`` for plain linearized-cyclic schemes.
    """

    num_banks: int
    weights: Vector
    padded_extents: Vector
    original_extents: Vector

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("need at least one bank")
        if len(self.weights) != len(self.padded_extents):
            raise ValueError("weights/extents dimension mismatch")
        for orig, padded in zip(self.original_extents, self.padded_extents):
            if padded < orig:
                raise ValueError("padding cannot shrink an extent")

    @property
    def dim(self) -> int:
        return len(self.weights)

    def linear_address(self, point: Sequence[int]) -> int:
        """Row-major address in the padded grid."""
        addr = 0
        for extent, coord in zip(self.padded_extents, point):
            addr = addr * extent + coord
        return addr

    def bank_of(self, point: Sequence[int]) -> int:
        """Bank index of a data element."""
        return (
            sum(w * c for w, c in zip(self.weights, point))
            % self.num_banks
        )

    def local_address(self, point: Sequence[int]) -> int:
        """Intra-bank address (linear address divided by bank count)."""
        return self.linear_address(point) // self.num_banks

    def padding_overhead(self) -> float:
        """Fractional storage growth introduced by padding."""
        orig = 1
        padded = 1
        for o, p in zip(self.original_extents, self.padded_extents):
            orig *= o
            padded *= p
        return padded / orig - 1.0


@dataclass(frozen=True)
class UniformPlan(PartitionPlan):
    """Plan produced by a uniform cyclic scheme ([5]-[8] family)."""

    mapping: UniformBankMapping = field(
        default=None  # type: ignore[arg-type]
    )
    window_span: int = 0  # reuse window extent in padded address space
    uses_dsp_address_transform: bool = True

    def __post_init__(self) -> None:
        if self.mapping is None:
            raise ValueError("uniform plan requires a bank mapping")


class PartitioningInfeasibleError(RuntimeError):
    """Raised when a scheme cannot find a conflict-free banking within
    its search bounds."""
