"""Tests for unimodular loop transformations (ref [15] substrate)."""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.polyhedral.domain import BoxDomain
from repro.polyhedral.transform import (
    UnimodularTransform,
    transform_spec,
)
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE


class TestMatrixAlgebra:
    def test_identity(self):
        t = UnimodularTransform.identity(3)
        assert t.apply((1, 2, 3)) == (1, 2, 3)

    def test_non_unimodular_rejected(self):
        with pytest.raises(ValueError):
            UnimodularTransform(((2, 0), (0, 1)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            UnimodularTransform(((1, 0),))

    def test_skew(self):
        t = UnimodularTransform.skew(2, 1, 0)
        assert t.apply((3, 4)) == (3, 7)

    def test_skew_same_dims_rejected(self):
        with pytest.raises(ValueError):
            UnimodularTransform.skew(2, 1, 1)

    def test_interchange(self):
        t = UnimodularTransform.interchange(2, 0, 1)
        assert t.apply((3, 4)) == (4, 3)

    def test_reversal(self):
        t = UnimodularTransform.reversal(2, 0)
        assert t.apply((3, 4)) == (-3, 4)

    def test_inverse_roundtrip(self):
        for t in (
            UnimodularTransform.skew(2, 1, 0, 2),
            UnimodularTransform.interchange(3, 0, 2),
            UnimodularTransform.skew(3, 2, 0, -1),
        ):
            assert (
                t.compose(t.inverse()).matrix
                == UnimodularTransform.identity(t.dim).matrix
            )

    def test_compose_application_order(self):
        skew = UnimodularTransform.skew(2, 1, 0)
        swap = UnimodularTransform.interchange(2, 0, 1)
        # (swap . skew)(x) == swap(skew(x))
        combined = swap.compose(skew)
        x = (2, 5)
        assert combined.apply(x) == swap.apply(skew.apply(x))

    def test_3d_determinants(self):
        t = UnimodularTransform(
            ((1, 1, 0), (0, 1, 0), (0, 0, 1))
        )
        assert t.inverse().apply(t.apply((4, 5, 6))) == (4, 5, 6)


class TestDomainTransform:
    def test_point_count_preserved(self):
        box = BoxDomain((1, 1), (5, 7))
        t = UnimodularTransform.skew(2, 1, 0)
        image = t.transform_domain(box)
        assert image.count() == box.count()

    def test_image_points_are_mapped_points(self):
        box = BoxDomain((0, 0), (3, 4))
        t = UnimodularTransform.skew(2, 1, 0)
        image = t.transform_domain(box)
        expected = {t.apply(p) for p in box.iter_points()}
        assert set(image.iter_points()) == expected

    def test_skew_produces_parallelogram(self):
        box = BoxDomain((0, 0), (3, 3))
        t = UnimodularTransform.skew(2, 1, 0)
        image = t.transform_domain(box)
        lo, hi = image.bounding_box()
        # Bounding box is larger than the point count -> skewed.
        bbox_count = (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
        assert bbox_count > image.count()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            UnimodularTransform.identity(3).transform_domain(
                BoxDomain((0, 0), (1, 1))
            )


class TestSpecTransform:
    def test_skewed_denoise_window(self):
        spec = DENOISE.with_grid((10, 12))
        t = UnimodularTransform.skew(2, 1, 0)
        skewed = transform_spec(spec, t)
        # The Fig 9 window: offsets become T f.
        assert set(skewed.window.offsets) == {
            (1, 1),
            (0, 1),
            (0, 0),
            (0, -1),
            (-1, -1),
        }

    def test_iteration_count_preserved(self):
        spec = DENOISE.with_grid((10, 12))
        t = UnimodularTransform.skew(2, 1, 0)
        skewed = transform_spec(spec, t)
        assert (
            skewed.iteration_domain.count()
            == spec.iteration_domain.count()
        )

    def test_transformed_spec_simulates_correctly(self):
        spec = DENOISE.with_grid((10, 12))
        t = UnimodularTransform.skew(2, 1, 0)
        skewed = transform_spec(spec, t)
        grid = make_input(skewed)
        system = build_memory_system(skewed.analysis())
        result = ChainSimulator(skewed, system, grid).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(skewed, grid),
        )

    def test_transformed_values_match_original_computation(self):
        """Co-transforming loops and layout preserves the computation:
        output at transformed iteration T i equals the original output
        at i when the input grid is the transformed layout."""
        spec = DENOISE.with_grid((8, 10))
        t = UnimodularTransform.skew(2, 1, 0)
        skewed = transform_spec(spec, t)

        rng = np.random.default_rng(5)
        original_grid = rng.uniform(0, 10, size=spec.grid)
        skewed_grid = np.zeros(skewed.grid)
        # Data layout transform: element at h moves to T h (+shift).
        # Recover the shift from the domains' lex-first iterations.
        orig_first = spec.iteration_domain.lex_first()
        skew_first = skewed.iteration_domain.lex_first()
        shift = tuple(
            a - b for a, b in zip(skew_first, t.apply(orig_first))
        )
        grid_points = [
            (i, j)
            for i in range(spec.grid[0])
            for j in range(spec.grid[1])
        ]
        for p in grid_points:
            q = tuple(
                a + s for a, s in zip(t.apply(p), shift)
            )
            if all(
                0 <= c < g for c, g in zip(q, skewed.grid)
            ):
                skewed_grid[q] = original_grid[p]

        from repro.stencil.golden import (
            run_golden,
            run_golden_pointwise,
        )

        original_out = run_golden(spec, original_grid)
        lo = spec.iteration_domain.lows
        for iteration, value in run_golden_pointwise(
            skewed, skewed_grid
        ):
            # Map the skewed iteration back to the original one.
            unshifted = tuple(
                a - s for a, s in zip(iteration, shift)
            )
            orig_iter = t.inverse().apply(unshifted)
            expected = original_out[
                orig_iter[0] - lo[0], orig_iter[1] - lo[1]
            ]
            assert value == pytest.approx(float(expected))

    def test_interchange_transposes_window(self):
        spec = DENOISE.with_grid((10, 12))
        t = UnimodularTransform.interchange(2, 0, 1)
        swapped = transform_spec(spec, t)
        assert set(swapped.window.offsets) == set(
            spec.window.offsets
        )  # the cross is symmetric
        assert swapped.grid == (12, 10)

    def test_dimension_mismatch_rejected(self):
        spec = DENOISE.with_grid((10, 12))
        with pytest.raises(ValueError):
            transform_spec(spec, UnimodularTransform.identity(3))
