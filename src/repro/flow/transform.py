"""Source-to-source kernel transformation (the ROSE step of Fig 11).

The right branch of the design-automation flow rewrites the user's
stencil loop nest (Fig 1) into a pure-computation kernel whose memory
accesses are all offloaded to the generated microarchitecture (Fig 4).
In the original flow this is a C-to-C transformation; here the "source"
is the :class:`~repro.stencil.spec.StencilSpec` DSL and both the original
and the transformed C are *emitted* for inspection, HLS hand-off and
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hls.codegen import (
    generate_kernel_source,
    generate_original_source,
)
from ..microarch.memory_system import MemorySystem
from ..stencil.spec import StencilSpec


@dataclass(frozen=True)
class TransformedKernel:
    """The result of the kernel transformation."""

    spec: StencilSpec
    original_source: str
    kernel_source: str
    n_data_ports: int

    def port_names(self) -> list:
        """Data-port identifiers in filter order."""
        lines = [
            ln
            for ln in self.kernel_source.splitlines()
            if "volatile float *" in ln and "_kernel(" in ln
        ]
        if not lines:
            return []
        signature = lines[0]
        args = signature.split("(", 1)[1]
        return [
            tok.split("*")[1].strip(" ,){")
            for tok in args.split(",")
            if "*" in tok
        ][:-1]


def transform_kernel(
    spec: StencilSpec, system: MemorySystem
) -> TransformedKernel:
    """Extract the pure-computation kernel from a stencil spec."""
    return TransformedKernel(
        spec=spec,
        original_source=generate_original_source(spec),
        kernel_source=generate_kernel_source(spec, system),
        n_data_ports=system.n_references,
    )


def access_counts(spec: StencilSpec) -> dict:
    """Load/store counts before vs after the transformation.

    Before: ``n`` loads of the input array per iteration (the paper's
    "Original II" is exactly this count).  After: one read per data port
    per iteration, no addressed loads at all.
    """
    n = spec.n_points
    return {
        "original_loads_per_iteration": n,
        "original_ii_lower_bound": n,
        "transformed_addressed_loads": 0,
        "transformed_port_reads": n,
        "target_ii": 1,
    }
