"""Seeded differential-fuzz smoke: random stencil specs vs the golden
reference.

The named benchmarks only cover a handful of window shapes; this module
draws ~30 random specs (1D/2D/3D grids, random window offsets, random
weights, random boundary modes) from one fixed seed and checks the
microarchitecture's load-bearing invariants on every one:

* the cycle-level chain simulator emits exactly the golden output
  sequence (bit-for-bit iteration order, value-close results);
* the run is fully pipelined at II = 1 — total cycles equal the
  streamed-element count, per Section 3.3.2's stream-bound argument;
* the n-1 non-uniform FIFO capacities sum to the theoretical minimum
  total buffer (the max reuse distance between the earliest and latest
  references) — the paper's headline Theorem 1 equality;
* boundary handling (pad + run + crop) agrees between the golden path
  and the simulator for every padding mode.

Everything replays from ``FUZZ_SEED``; a failure message names the
spec's case index so one case can be re-run in isolation.
"""

import random

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.stencil.boundary import (
    run_with_boundary,
    simulate_with_boundary,
)
from repro.stencil.expr import weighted_sum
from repro.stencil.golden import golden_output_sequence
from repro.stencil.spec import StencilSpec, StencilWindow

pytestmark = pytest.mark.fuzz

FUZZ_SEED = 20260807
N_CASES = 30
BOUNDARY_CASES = 8
BOUNDARY_MODES = ("edge", "constant", "reflect")


def _random_window(rng, dim):
    """A random unique offset set whose span fits a small grid."""
    # Offsets live in [-2, 2]^dim: never ask for more unique points
    # than that cube holds (1D has only five).
    n_points = rng.randint(2, min(6 if dim < 3 else 4, 5 ** dim - 1))
    offsets = set()
    while len(offsets) < n_points:
        offsets.add(
            tuple(rng.randint(-2, 2) for _ in range(dim))
        )
    return StencilWindow.from_offsets(sorted(offsets))


def _random_spec(rng, index):
    dim = rng.choice([1, 1, 2, 2, 2, 3])  # bias toward 2D (the paper)
    window = _random_window(rng, dim)
    mins, maxs = window.span()
    grid = tuple(
        # Span + a random margin, kept tiny so 30 sims stay fast.
        (maxs[j] - mins[j] + 1) + rng.randint(2, 6 if dim < 3 else 3)
        for j in range(dim)
    )
    weights = [
        (offset, round(rng.uniform(-2.0, 2.0), 3))
        for offset in window.offsets
    ]
    return StencilSpec(
        name=f"FUZZ_{index}",
        grid=grid,
        window=window,
        expression=weighted_sum(weights, "A"),
    )


def _random_grid(rng, spec):
    values = [
        round(rng.uniform(-10.0, 10.0), 4)
        for _ in range(int(np.prod(spec.grid)))
    ]
    return np.array(values, dtype=float).reshape(spec.grid)


def _cases():
    rng = random.Random(FUZZ_SEED)
    return [
        (k, _random_spec(rng, k), rng.getstate())
        for k in range(N_CASES)
    ]


_CASES = _cases()


@pytest.mark.parametrize(
    "index,spec,rng_state",
    _CASES,
    ids=[f"case{k}-{s.name}-{len(s.grid)}d" for k, s, _ in _CASES],
)
def test_random_spec_matches_golden_at_full_throughput(
    index, spec, rng_state
):
    rng = random.Random()
    rng.setstate(rng_state)
    grid = _random_grid(rng, spec)
    analysis = spec.analysis()

    # Theorem 1 equality: the n-1 non-uniform FIFOs are collectively
    # *optimal* — their sizes sum to the minimum total reuse buffer.
    assert sum(analysis.fifo_capacities()) == (
        analysis.minimum_total_buffer()
    ), f"case {index}: FIFO total != minimum buffer"

    system = build_memory_system(analysis)
    result = ChainSimulator(spec, system, grid).run()
    golden = golden_output_sequence(spec, grid)
    assert len(result.outputs) == len(golden), (
        f"case {index}: output count mismatch"
    )
    assert np.allclose(result.output_values(), golden), (
        f"case {index}: simulated values diverge from golden"
    )
    iters = result.output_iterations()
    assert iters == sorted(iters), (
        f"case {index}: outputs left lexicographic order"
    )
    # Full pipelining for *every* random window, not just the
    # benchmarks: the run is stream-bound — total cycles exceed the
    # streamed-element count only by the pipeline drain, which the
    # reuse window bounds.  An II of 2 would roughly double the cycle
    # count, so this *is* the II = 1 claim.  (The exact equality the
    # benchmark tests assert needs the window's latest reference to
    # coincide with the stream tail; random windows with
    # strictly-negative latest offsets drain a little.  Likewise the
    # mean inter-output gap is turnaround-dominated on grids this
    # tiny, so it is not asserted here.)
    # (The stream may also cut off early when no output needs its
    # tail, so the lower bound is the elements *actually* streamed.)
    streamed = system.stream_domain.count()
    fetched = max(result.stats.elements_streamed_per_segment)
    assert fetched <= result.stats.total_cycles <= (
        streamed + analysis.minimum_total_buffer() + 8
    ), f"case {index}: not stream-bound (II > 1 behavior)"
    # FIFO occupancy never exceeds the non-uniform capacities the
    # analysis sized (Table 2's sizes are sufficient, not just minimal).
    for fifo_id, occupancy in (
        result.stats.fifo_max_occupancy.items()
    ):
        assert occupancy <= result.stats.fifo_capacity[fifo_id], (
            f"case {index}: FIFO {fifo_id} overflowed its "
            "analysis-sized capacity"
        )


@pytest.mark.parametrize(
    "index,spec,rng_state",
    _CASES[:BOUNDARY_CASES],
    ids=[
        f"case{k}-{BOUNDARY_MODES[k % len(BOUNDARY_MODES)]}"
        for k, _, _ in _CASES[:BOUNDARY_CASES]
    ],
)
def test_random_spec_boundary_modes_agree(index, spec, rng_state):
    rng = random.Random()
    rng.setstate(rng_state)
    grid = _random_grid(rng, spec)
    mode = BOUNDARY_MODES[index % len(BOUNDARY_MODES)]
    constant = round(rng.uniform(-5.0, 5.0), 3)
    golden = run_with_boundary(
        spec, grid, mode=mode, constant_value=constant
    )
    simulated, stats = simulate_with_boundary(
        spec, grid, mode=mode, constant_value=constant
    )
    assert simulated.shape == tuple(spec.grid)
    assert np.allclose(simulated, golden), (
        f"case {index}: boundary mode {mode!r} diverges"
    )


def test_fuzz_corpus_is_stable():
    """The seed pins the corpus: shapes drawn today replay forever."""
    rng = random.Random(FUZZ_SEED)
    first = _random_spec(rng, 0)
    rng = random.Random(FUZZ_SEED)
    again = _random_spec(rng, 0)
    assert first.grid == again.grid
    assert first.window.offsets == again.window.offsets
