"""The ``compiled`` executor backend: batched vectorized execution.

Registers under the existing executor registry
(:func:`repro.service.executor.register_executor`), so it drops into
the thread service, the router's node spawner and the canary paths by
name — ``ServiceConfig(backend="compiled")`` maps thread-mode services
here, and the process pool reuses the same engine inside its workers.

Execution path per same-fingerprint group:

1. the shared :class:`~repro.lower.engine.CompiledEngine` lowers the
   plan once (bufferize → convert, persisted as the plan's cache
   sidecar) and returns the memoized kernel afterwards;
2. the group's input grids execute through ``CompiledKernel.run_many``
   — small grids fuse into one stacked ``run_batch`` call, large ones
   run as strided views without the stack copy;
3. each row is digested exactly like the interpreted path (same
   SHA-256 over the same bytes — bit-identity is the contract, and the
   sampled canary re-runs the interpreted golden path to prove it).

When the lowering refuses a plan (:class:`LoweringUnsupported` — e.g.
multi-stream partitions, oversized gather domains) the group falls
back to the inherited interpreted path and the reason lands in
``service_lower_fallback_total``.  A corrupt stored program
(:class:`ProgramMismatchError`) resolves as a validation failure and
evicts the plan — never a wrong answer.
"""

from __future__ import annotations

import hashlib
import time
from typing import List, Optional

import numpy as np

from ..obs.tracing import span, trace_context
from ..service.executor import (
    PlanExecutor,
    PlanValidationError,
    execute_pipeline,
    execute_stencil,
    make_response,
    observe_stage,
    register_executor,
    stage_summaries,
    validate_pipeline,
    validate_plan,
)
from ..service.plancache import CachedPlan
from ..service.scheduler import WorkItem
from .engine import CompiledEngine, LoweringConfig
from .program import LoweringUnsupported, ProgramMismatchError

__all__ = ["CompiledPlanExecutor", "lowering_config_from_service"]


def lowering_config_from_service(config) -> LoweringConfig:
    """The engine's :class:`LoweringConfig` for a ServiceConfig.

    ``ServiceConfig`` carries a fully-resolved ``lowering`` config
    (legacy converter/gather knobs are folded into it at validation
    time), so the common path is a plain attribute read.  Bare test
    doubles (and older configs) that only set the legacy fields are
    still read defensively; the plan cache's directory doubles as the
    C converter's artifact directory, putting ``<fp>.c.so`` next to
    the plan and program sidecars it belongs to.
    """
    lowering = getattr(config, "lowering", None)
    if isinstance(lowering, LoweringConfig):
        return lowering
    kwargs = {}
    converter = getattr(config, "converter", None)
    if converter:
        kwargs["converter"] = str(converter)
    gather_limit = getattr(config, "gather_limit", None)
    if gather_limit:
        kwargs["gather_limit"] = int(gather_limit)
    gather_hard_limit = getattr(config, "gather_hard_limit", None)
    if gather_hard_limit:
        kwargs["gather_hard_limit"] = int(gather_hard_limit)
    cache_dir = getattr(config, "cache_dir", None)
    if cache_dir:
        kwargs["artifact_dir"] = str(cache_dir)
    return LoweringConfig(**kwargs)


class CompiledPlanExecutor(PlanExecutor):
    """Thread-pool executor running lowered kernels per fingerprint."""

    def __init__(self, *args, engine: Optional[CompiledEngine] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.engine = engine or CompiledEngine()

    # -- lowering plumbing ---------------------------------------------
    def _count_fallback(self, reason: str, n: int) -> None:
        self.registry.counter(
            "service_lower_fallback_total", {"reason": reason}
        ).inc(n)
        self.registry.counter(
            "service_lower_requests_total", {"path": "fallback"}
        ).inc(n)

    def _kernel(self, plan: CachedPlan):
        """Lower (or fetch) the plan's kernel; persist a new sidecar."""
        try:
            result = self.engine.kernel_for(plan)
        except ProgramMismatchError as exc:
            self.engine.forget(plan.fingerprint)
            raise PlanValidationError(str(exc)) from exc
        if result.built:
            observe_stage(
                self.registry, "lower_bufferize", result.bufferize_ms
            )
            observe_stage(
                self.registry, "lower_convert", result.convert_ms
            )
            self.registry.counter(
                "service_lower_total",
                {
                    "outcome": (
                        "lowered"
                        if result.program_json is not None
                        else "cached"
                    )
                },
            ).inc()
            self.registry.counter(
                "service_lower_converter_total",
                {"converter": result.converter},
            ).inc()
            if result.converter_fallback is not None:
                self.registry.counter(
                    "service_lower_converter_fallback_total"
                ).inc()
        if result.program_json is not None:
            # First lowering of this plan: write the sidecar through
            # the content-addressed cache so restarts (and pool
            # workers) skip straight to convert.
            plan.buffer_program = result.program_json
            self.cache.put(plan)
        return result.kernel

    # -- the batched group hook ----------------------------------------
    def _execute_group(
        self, live: List[WorkItem], plan: CachedPlan, outcome: str
    ) -> None:
        try:
            kernel = self._kernel(plan)
        except LoweringUnsupported as exc:
            self._count_fallback(exc.reason, len(live))
            super()._execute_group(live, plan, outcome)
            return
        except PlanValidationError as exc:
            for item in live:
                self._resolve_validation_failure(
                    item, outcome, str(exc)
                )
            return

        runnable: List[WorkItem] = []
        for item in live:
            if item.expired():
                self._resolve_timeout(item)
                continue
            item.attempts += 1
            try:
                if self.fault_hook is not None:
                    self.fault_hook(item)
            except Exception as exc:
                self._retry_or_fail(item, str(exc))
                continue
            runnable.append(item)
        if not runnable:
            return

        exemplar = runnable[0]
        execute_start_ns = time.perf_counter_ns()
        try:
            with trace_context(
                exemplar.trace_id, exemplar.parent_span_id
            ), span(
                "lower.execute",
                benchmark=exemplar.spec.name,
                batch=len(runnable),
            ):
                rows = kernel.run_many(
                    [
                        self.engine.input_grid(item.spec, item.seed)
                        for item in runnable
                    ]
                )
        except Exception as exc:
            # A kernel that cannot execute is a lowering gap, not a
            # request failure: fall back to the interpreted path.
            self._count_fallback("kernel_error", len(runnable))
            self.registry.counter(
                "service_lower_kernel_errors_total"
            ).inc()
            for item in runnable:
                item.attempts -= 1  # the interpreted path re-counts
            super()._execute_group(runnable, plan, outcome)
            return
        observe_stage(
            self.registry,
            "lower_execute",
            (time.perf_counter_ns() - execute_start_ns) / 1e6,
        )
        observe_stage(
            self.registry,
            "execute",
            (time.perf_counter_ns() - execute_start_ns) / 1e6,
        )
        for item, row in zip(runnable, rows):
            self._finish_item(item, plan, outcome, row)

    # -- the batched pipeline hook -------------------------------------
    def _execute_pipeline_group(
        self,
        live: List[WorkItem],
        plans: List[CachedPlan],
        outcome: str,
    ) -> None:
        """Run a multi-stage workload group through lowered kernels.

        Every stage lowers independently; any refusal sends the whole
        pipeline down the inherited interpreted chain (no mixed-mode
        execution — the hand-off bytes must come from one path).  When
        all stages lower, each stage executes as one batched
        ``run_many`` over the group, and the Fig 13c reshape hand-off
        happens in-process between stages.
        """
        from ..integration.chaining import intermediate_grid_shape

        try:
            kernels = [self._kernel(plan) for plan in plans]
        except LoweringUnsupported as exc:
            self._count_fallback(exc.reason, len(live))
            super()._execute_pipeline_group(live, plans, outcome)
            return
        except PlanValidationError as exc:
            for item in live:
                self._fail_pipeline_validation(
                    item, plans, outcome, str(exc)
                )
            return

        runnable: List[WorkItem] = []
        for item in live:
            if item.expired():
                self._resolve_timeout(item)
                continue
            item.attempts += 1
            try:
                if self.fault_hook is not None:
                    self.fault_hook(item)
            except Exception as exc:
                self._retry_or_fail(item, str(exc))
                continue
            runnable.append(item)
        if not runnable:
            return

        exemplar = runnable[0]
        stages = exemplar.stages
        current = [
            self.engine.input_grid(stages[0].spec, item.seed)
            for item in runnable
        ]
        # per_item[i] collects (arr, digest) per stage for item i —
        # the same shape execute_pipeline returns, so the summaries
        # and canary helpers are shared with the interpreted path.
        per_item: List[List] = [[] for _ in runnable]
        execute_start_ns = time.perf_counter_ns()
        try:
            with trace_context(
                exemplar.trace_id, exemplar.parent_span_id
            ), span(
                "lower.execute",
                benchmark=exemplar.label or exemplar.spec.name,
                batch=len(runnable),
                stages=len(stages),
            ):
                for idx, (stage, kernel) in enumerate(
                    zip(stages, kernels)
                ):
                    rows = kernel.run_many(current)
                    arrs = [
                        np.ascontiguousarray(row, dtype=np.float64)
                        for row in rows
                    ]
                    for results, arr in zip(per_item, arrs):
                        results.append(
                            (arr, hashlib.sha256(arr.data).hexdigest())
                        )
                    if idx + 1 < len(stages):
                        shape = intermediate_grid_shape(stage.spec)
                        current = [arr.reshape(shape) for arr in arrs]
        except Exception as exc:
            self._count_fallback("kernel_error", len(runnable))
            self.registry.counter(
                "service_lower_kernel_errors_total"
            ).inc()
            for item in runnable:
                item.attempts -= 1  # the interpreted path re-counts
            super()._execute_pipeline_group(runnable, plans, outcome)
            return
        execute_ms = (
            time.perf_counter_ns() - execute_start_ns
        ) / 1e6
        observe_stage(self.registry, "lower_execute", execute_ms)
        observe_stage(self.registry, "execute", execute_ms)
        for item, results in zip(runnable, per_item):
            self._finish_pipeline_item(item, plans, outcome, results)

    def _finish_pipeline_item(
        self,
        item: WorkItem,
        plans: List[CachedPlan],
        outcome: str,
        results: List,
    ) -> None:
        try:
            validated: Optional[bool] = None
            if self._should_validate(item):
                self.registry.counter("service_validation_total").inc()
                canary_start_ns = time.perf_counter_ns()
                with trace_context(item.trace_id, item.parent_span_id):
                    # Bit-identity first: every stage's compiled digest
                    # must match the interpreted chained replay, then
                    # the usual per-stage cycle-sim plan validation.
                    grid, golden = execute_pipeline(
                        item.stages, item.seed
                    )
                    for stage, (_, got), (_, want) in zip(
                        item.stages, results, golden
                    ):
                        if got != want:
                            raise PlanValidationError(
                                f"compiled stage {stage.index} "
                                f"({stage.spec.name}) outputs diverge "
                                "from the golden chained reference"
                            )
                    validate_pipeline(
                        item.stages, plans, grid, golden
                    )
                observe_stage(
                    self.registry,
                    "canary",
                    (time.perf_counter_ns() - canary_start_ns) / 1e6,
                )
                validated = True
            final_arr, final_digest = results[-1]
            self._resolve(
                item,
                make_response(
                    item,
                    "ok",
                    cache=outcome,
                    n_outputs=int(final_arr.size),
                    mean=(
                        float(np.mean(final_arr))
                        if final_arr.size
                        else 0.0
                    ),
                    checksum=final_digest[:16],
                    validated=validated,
                    summary=plans[-1].summary,
                    stages=stage_summaries(item.stages, results),
                ),
            )
            self.registry.counter(
                "service_lower_requests_total", {"path": "compiled"}
            ).inc()
        except PlanValidationError as exc:
            self._fail_pipeline_validation(
                item, plans, outcome, str(exc)
            )
        except Exception as exc:
            self._retry_or_fail(item, str(exc))

    def _fail_pipeline_validation(
        self,
        item: WorkItem,
        plans: List[CachedPlan],
        outcome: str,
        error: str,
    ) -> None:
        for plan in plans:
            self.cache.invalidate(plan.fingerprint)
            self.engine.forget(plan.fingerprint)
        self.registry.counter(
            "service_validation_failures_total"
        ).inc()
        self._resolve(
            item,
            make_response(
                item,
                "validation_failed",
                cache=outcome,
                validated=False,
                error=error,
            ),
        )

    def _finish_item(
        self,
        item: WorkItem,
        plan: CachedPlan,
        outcome: str,
        row: np.ndarray,
    ) -> None:
        try:
            row = np.ascontiguousarray(row, dtype=np.float64)
            # Hash the row's buffer directly — same bytes as
            # ``row.tobytes()`` (C-contiguous float64) without copying
            # a megabyte per request on large grids.
            digest = hashlib.sha256(row.data).hexdigest()
            validated: Optional[bool] = None
            if self._should_validate(item):
                self.registry.counter("service_validation_total").inc()
                canary_start_ns = time.perf_counter_ns()
                with trace_context(item.trace_id, item.parent_span_id):
                    # The compiled canary proves bit-identity against
                    # the interpreted golden path before the usual
                    # cycle-sim plan validation.
                    grid, outputs, golden_digest = execute_stencil(
                        item.spec, item.seed
                    )
                    if golden_digest != digest:
                        raise PlanValidationError(
                            "compiled kernel outputs diverge from the "
                            "golden reference"
                        )
                    validate_plan(
                        item.spec, item.options, plan, grid, outputs
                    )
                observe_stage(
                    self.registry,
                    "canary",
                    (time.perf_counter_ns() - canary_start_ns) / 1e6,
                )
                validated = True
            self._resolve(
                item,
                make_response(
                    item,
                    "ok",
                    cache=outcome,
                    n_outputs=int(row.size),
                    mean=float(np.mean(row)) if row.size else 0.0,
                    checksum=digest[:16],
                    validated=validated,
                    summary=plan.summary,
                ),
            )
            self.registry.counter(
                "service_lower_requests_total", {"path": "compiled"}
            ).inc()
        except PlanValidationError as exc:
            self.engine.forget(item.fingerprint)
            self._resolve_validation_failure(item, outcome, str(exc))
        except Exception as exc:
            self._retry_or_fail(item, str(exc))


@register_executor("compiled")
def _make_compiled_executor(
    config, shared, fault_hook
) -> CompiledPlanExecutor:
    """``backend="compiled"`` (thread mode): batched lowered kernels."""
    engine = CompiledEngine(
        config=lowering_config_from_service(config)
    )
    return CompiledPlanExecutor(
        engine=engine, fault_hook=fault_hook, **shared
    )
