"""TCP socket transport for the proto:1 wire protocol.

The router fabric has always spoken newline-delimited ``proto: 1``
JSON documents; until now the only medium was a subprocess pipe.  This
module carries the *same framing* over real TCP sockets so the fabric
can span hosts, with robustness as the headline:

* **handshake** — the first line each peer sends is a
  :class:`Hello` advertising its ``proto`` version, handshake dialect,
  node id and supported execution backends.  A peer speaking an
  incompatible dialect is rejected *up front* with a typed
  ``handshake_failed`` error response — never half-parsed traffic;
* **reconnect with backoff** — :class:`BackoffPolicy` implements
  exponential backoff with seeded *full jitter*
  (``delay = U[0, 1) * min(cap, base * mult^attempt)``), so a thundering
  herd of reconnecting clients decorrelates deterministically per
  (seed, key, attempt) and campaigns replay exactly.  A connect budget
  that exhausts surfaces as a typed ``node_unavailable`` error;
* **liveness** — clients send ``{"control": "ping"}`` heartbeats that
  the server answers at the transport layer (never queued behind slow
  requests), giving an RTT signal and a *wedge detector*: a half-open
  socket — peer gone, no FIN/RST ever delivered — stops answering
  pings and is torn down instead of wedging its requests forever;
* **fault injection** — :class:`SocketChaos` reuses the seeded
  :class:`~repro.service.chaos.ChaosInjector` decision function to
  kill connections mid-response, go half-open (swallow responses while
  keeping the socket up) or trickle response bytes out one at a time,
  so the socket chaos campaigns replay exactly like the worker ones.

The server side (:class:`SocketServer`) wraps anything exposing the
``submit_json(line) -> ResultSlot`` surface (a
:class:`~repro.service.api.StencilService` behind ``repro serve
--listen``); the client side (:func:`connect_with_backoff` +
:class:`SocketConnection`) is what the router's TCP node endpoints are
built from.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .chaos import ChaosConfig, ChaosInjector
from .proto import PROTO_VERSION, error_response

__all__ = [
    "BackoffPolicy",
    "HANDSHAKE_VERSION",
    "HandshakeError",
    "Hello",
    "NodeUnavailableError",
    "SocketChaos",
    "SocketConnection",
    "SocketServer",
    "TransportError",
    "connect_with_backoff",
    "parse_address",
]

#: Bump on any incompatible change to the connect-time hello exchange.
HANDSHAKE_VERSION = 1

#: How long each side waits for the peer's hello line before giving up.
HANDSHAKE_TIMEOUT_S = 5.0


class TransportError(RuntimeError):
    """A socket-transport failure with a typed ``error.kind``."""

    kind = "internal"


class HandshakeError(TransportError):
    """The peer spoke an incompatible proto/handshake dialect."""

    kind = "handshake_failed"


class NodeUnavailableError(TransportError):
    """The reconnect/backoff budget exhausted without a connection."""

    kind = "node_unavailable"


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (the only address syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must look like HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad port in address {text!r}")


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Hello:
    """The connect-time hello each peer sends as its first line.

    Both directions use the same document; ``role`` says which side is
    speaking.  Validation is strict on the two version fields and
    permissive on everything else (extra keys are future extensions,
    not errors).
    """

    node_id: str
    role: str  # "server" | "client"
    backends: Tuple[str, ...] = ()
    proto: int = PROTO_VERSION
    handshake: int = HANDSHAKE_VERSION

    def to_json(self) -> dict:
        return {
            "proto": self.proto,
            "handshake": self.handshake,
            "node_id": self.node_id,
            "role": self.role,
            "backends": list(self.backends),
        }

    @classmethod
    def from_json(cls, data: object) -> "Hello":
        if not isinstance(data, dict) or "handshake" not in data:
            raise HandshakeError(
                "peer's first line is not a handshake hello"
            )
        try:
            return cls(
                node_id=str(data.get("node_id", "?")),
                role=str(data.get("role", "?")),
                backends=tuple(
                    str(b) for b in data.get("backends", ())
                ),
                proto=int(data["proto"]),
                handshake=int(data["handshake"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HandshakeError(f"malformed hello: {exc}") from exc

    def check_peer(self, peer: "Hello") -> None:
        """Reject a peer this transport cannot speak with."""
        if peer.proto != PROTO_VERSION:
            raise HandshakeError(
                f"peer {peer.node_id!r} speaks proto {peer.proto}, "
                f"this transport speaks proto {PROTO_VERSION}"
            )
        if peer.handshake != HANDSHAKE_VERSION:
            raise HandshakeError(
                f"peer {peer.node_id!r} speaks handshake dialect "
                f"{peer.handshake}, expected {HANDSHAKE_VERSION}"
            )


def default_node_id(role: str) -> str:
    return f"{role}-{socket.gethostname()}-{os.getpid()}"


# ---------------------------------------------------------------------------
# backoff
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic *full jitter*.

    ``delay(attempt, key)`` draws uniformly in ``[0, ceiling)`` where
    ``ceiling = min(cap_s, base_s * multiplier ** attempt)``.  The draw
    is a pure function of ``(seed, key, attempt)`` — the same trick the
    chaos injector uses — so reconnect storms decorrelate *and* replay
    exactly under a fixed seed.
    """

    base_s: float = 0.05
    cap_s: float = 2.0
    multiplier: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.cap_s <= 0:
            raise ValueError("backoff base/cap must be positive")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")

    def ceiling(self, attempt: int) -> float:
        """The un-jittered exponential envelope for ``attempt``."""
        return min(
            self.cap_s, self.base_s * self.multiplier ** max(0, attempt)
        )

    def delay(self, attempt: int, key: str = "") -> float:
        """Jittered delay before retry ``attempt`` (full jitter)."""
        payload = f"{self.seed}:{key}:{attempt}"
        digest = hashlib.sha256(payload.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw * self.ceiling(attempt)


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------
class SocketConnection:
    """One live, handshaken JSONL connection.

    ``send`` is locked (whole lines only, never interleaved);
    ``readline`` returns ``""`` at EOF like a file.  ``closed`` flips
    exactly once, whichever side tears the connection down first.
    """

    def __init__(self, sock: socket.socket, peer: Hello) -> None:
        self.peer = peer
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._write_lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, document: dict) -> None:
        data = (json.dumps(document, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        with self._write_lock:
            if self._closed:
                raise BrokenPipeError("connection is closed")
            self._sock.sendall(data)

    def readline(self) -> str:
        try:
            return self._reader.readline()
        except (OSError, ValueError):
            return ""

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            self._reader.close()
        except (OSError, ValueError):
            pass


def _exchange_client_hello(
    sock: socket.socket, hello: Hello, timeout_s: float
) -> Hello:
    """Client half of the handshake: send ours, validate theirs.

    The server may answer our hello with a typed error response
    (``handshake_failed``) instead of a hello — surface its detail.
    """
    sock.settimeout(timeout_s)
    sock.sendall(
        (json.dumps(hello.to_json(), sort_keys=True) + "\n").encode(
            "utf-8"
        )
    )
    reader = sock.makefile("r", encoding="utf-8", newline="\n")
    try:
        line = reader.readline()
    except (OSError, ValueError) as exc:
        raise HandshakeError(f"no hello from peer: {exc}") from exc
    finally:
        try:
            reader.detach()
        except (OSError, ValueError):
            pass
    if not line:
        raise HandshakeError("peer closed during handshake")
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise HandshakeError(f"peer hello is not JSON: {exc}") from exc
    if isinstance(data, dict) and data.get("status") and (
        "handshake" not in data
    ):
        detail = (data.get("error") or {}).get("detail", "rejected")
        raise HandshakeError(f"server rejected handshake: {detail}")
    peer = Hello.from_json(data)
    hello.check_peer(peer)
    sock.settimeout(None)
    return peer


def connect_once(
    address: Tuple[str, int],
    hello: Hello,
    timeout_s: float = HANDSHAKE_TIMEOUT_S,
) -> SocketConnection:
    """One connect + handshake attempt; raises on any failure."""
    sock = socket.create_connection(address, timeout=timeout_s)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        peer = _exchange_client_hello(sock, hello, timeout_s)
    except BaseException:
        try:
            sock.close()
        except OSError:
            pass
        raise
    return SocketConnection(sock, peer)


def connect_with_backoff(
    address: Tuple[str, int],
    hello: Hello,
    backoff: BackoffPolicy,
    max_attempts: int = 5,
    deadline: Optional[float] = None,
    sleep: Callable[[float], None] = time.sleep,
    connect: Callable[..., SocketConnection] = connect_once,
    on_attempt: Optional[Callable[[int, Exception], None]] = None,
) -> SocketConnection:
    """Connect + handshake within a reconnect budget.

    Retries transport-level failures (refused, reset, timed out) up to
    ``max_attempts`` times with full-jitter backoff, bounded by the
    optional monotonic ``deadline``.  A :class:`HandshakeError` is
    *not* retried — an incompatible peer will not become compatible by
    waiting — and propagates typed.  Budget exhaustion raises
    :class:`NodeUnavailableError` (``error.kind = node_unavailable``).

    ``sleep``/``connect`` are injectable so the backoff machinery is
    unit-testable against scripted fakes with no real network.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    key = f"{address[0]}:{address[1]}"
    last: Optional[Exception] = None
    for attempt in range(max_attempts):
        if deadline is not None and time.monotonic() > deadline:
            break
        try:
            return connect(address, hello)
        except HandshakeError:
            raise
        except (OSError, ValueError) as exc:
            last = exc
            if on_attempt is not None:
                on_attempt(attempt, exc)
        if attempt + 1 < max_attempts:
            pause = backoff.delay(attempt, key)
            if deadline is not None:
                pause = min(
                    pause, max(0.0, deadline - time.monotonic())
                )
            if pause > 0:
                sleep(pause)
    raise NodeUnavailableError(
        f"could not connect to {key} after {max_attempts} attempts"
        + (f" (last error: {last})" if last else "")
    )


# ---------------------------------------------------------------------------
# heartbeats (client side)
# ---------------------------------------------------------------------------
class Heartbeat:
    """Wedge detection over ping/pong round trips.

    The owner calls :meth:`due` on its supervision tick; when a ping is
    due it sends ``make_ping()`` down the connection and the response
    path feeds pongs back through :meth:`observe_pong`.  A connection
    whose *outstanding* ping goes unanswered past ``timeout_s`` is
    declared **wedged** — exactly what a half-open socket looks like:
    writes still succeed into the kernel buffer, nothing ever answers.
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        timeout_s: float = 5.0,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0 or timeout_s <= 0:
            raise ValueError("heartbeat interval/timeout must be > 0")
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self._now = now
        self._seq = 0
        self._last_sent = -float("inf")
        #: ping id -> monotonic send time, for RTT + wedge detection.
        self._outstanding: Dict[str, float] = {}

    def due(self) -> bool:
        return self._now() - self._last_sent >= self.interval_s

    def make_ping(self, scope: str = "hb") -> dict:
        self._seq += 1
        ping_id = f"{scope}-{self._seq}"
        self._last_sent = self._now()
        self._outstanding[ping_id] = self._last_sent
        return {
            "proto": PROTO_VERSION,
            "id": ping_id,
            "control": "ping",
        }

    def observe_pong(self, ping_id: str) -> Optional[float]:
        """RTT in seconds, or None for an unknown/duplicate pong."""
        sent = self._outstanding.pop(ping_id, None)
        if sent is None:
            return None
        return self._now() - sent

    def wedged(self) -> bool:
        """True when any outstanding ping is older than ``timeout_s``."""
        now = self._now()
        return any(
            now - sent > self.timeout_s
            for sent in self._outstanding.values()
        )

    def reset(self) -> None:
        """Forget outstanding pings (a fresh connection starts clean)."""
        self._outstanding.clear()
        self._last_sent = -float("inf")


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SocketChaos:
    """Seeded socket-level fault rates for one campaign.

    Reuses the :class:`ChaosInjector` decision function keyed on each
    response's request id, mapping its verbs onto transport faults:
    ``kill`` → close the connection abruptly before the response line
    is written; ``hang`` → go *half-open* (swallow this and all later
    responses on the connection while keeping the socket up — the
    classic silent peer); ``slow`` → trickle the response out a few
    bytes at a time.  All decisions replay exactly under one seed.
    """

    seed: int = 0
    conn_kill_rate: float = 0.0
    half_open_rate: float = 0.0
    trickle_rate: float = 0.0
    trickle_chunk: int = 7
    trickle_delay_s: float = 0.005

    def enabled(self) -> bool:
        return bool(
            self.conn_kill_rate
            or self.half_open_rate
            or self.trickle_rate
        )

    def injector(self) -> ChaosInjector:
        return ChaosInjector(
            ChaosConfig(
                seed=self.seed,
                kill_rate=self.conn_kill_rate,
                hang_rate=self.half_open_rate,
                slow_rate=self.trickle_rate,
            )
        )


class _Connection:
    """Server-side state of one accepted client connection."""

    def __init__(self, sock: socket.socket, address) -> None:
        self.sock = sock
        self.address = address
        self.write_lock = threading.Lock()
        self.half_open = False  # chaos: swallow all further responses
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketServer:
    """A JSONL-over-TCP front end for one service node.

    Accepts any number of client connections; each gets the handshake
    exchange, then a request/response stream where responses are
    written *as they resolve* (requests and responses match by ``id``,
    like everywhere else in the fabric — no head-of-line blocking).
    ``{"control": "ping"}`` documents are answered at this layer,
    immediately and out of band, so heartbeats stay honest while a
    slow compile occupies the service.

    ``submit_json`` is the service surface
    (``line -> ResultSlot``); everything reaching it is already
    newline-stripped.  The server never drops a request without a
    response: a request accepted before a connection dies still runs,
    and its response write failure is counted, not raised.
    """

    def __init__(
        self,
        submit_json: Callable[[str], object],
        host: str = "127.0.0.1",
        port: int = 0,
        node_id: Optional[str] = None,
        backends: Tuple[str, ...] = ("interpreted", "compiled"),
        registry=None,
        chaos: Optional[SocketChaos] = None,
        handshake_timeout_s: float = HANDSHAKE_TIMEOUT_S,
    ) -> None:
        self._submit_json = submit_json
        self._host = host
        self._port = port
        self.hello = Hello(
            node_id=node_id or default_node_id("server"),
            role="server",
            backends=backends,
        )
        self._registry = registry
        self._chaos = (
            chaos.injector() if chaos and chaos.enabled() else None
        )
        self._chaos_config = chaos
        self._handshake_timeout_s = handshake_timeout_s
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: List[_Connection] = []
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self.address: Optional[Tuple[str, int]] = None

    # -- telemetry -----------------------------------------------------
    def _count(self, name: str, labels=None) -> None:
        if self._registry is not None:
            self._registry.counter(name, labels).inc()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="socket-server-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "SocketServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- accept / handshake --------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            conn = _Connection(sock, address)
            with self._conn_lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"socket-server-conn-{address}",
                daemon=True,
            ).start()

    def _write_line(self, conn: _Connection, document: dict) -> bool:
        data = (
            json.dumps(document, sort_keys=True) + "\n"
        ).encode("utf-8")
        try:
            with conn.write_lock:
                if conn.closed or conn.half_open:
                    return False
                conn.sock.sendall(data)
            return True
        except OSError:
            return False

    def _handshake(self, conn: _Connection) -> bool:
        """Exchange hellos; on mismatch answer with a typed error."""
        try:
            conn.sock.settimeout(self._handshake_timeout_s)
            reader = conn.sock.makefile(
                "r", encoding="utf-8", newline="\n"
            )
            try:
                line = reader.readline()
            finally:
                try:
                    reader.detach()
                except (OSError, ValueError):
                    pass
            if not line:
                raise HandshakeError("client closed during handshake")
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise HandshakeError(
                    f"client hello is not JSON: {exc}"
                ) from exc
            peer = Hello.from_json(data)
            self.hello.check_peer(peer)
            conn.sock.settimeout(None)
        except HandshakeError as exc:
            self._count("service_handshake_failures_total")
            self._write_line(
                conn,
                error_response(
                    None, "invalid", str(exc), kind="handshake_failed"
                ).to_json(),
            )
            conn.close()
            return False
        except OSError:
            self._count("service_handshake_failures_total")
            conn.close()
            return False
        self._write_line(conn, self.hello.to_json())
        self._count("service_connections_total")
        return True

    # -- request plumbing ----------------------------------------------
    def _chaos_decision(self, request_id: str) -> str:
        if self._chaos is None:
            return "none"
        return self._chaos.decision(request_id or "?", 0)

    def _respond(self, conn: _Connection, slot, request_id: str) -> None:
        """Write one resolved response, applying seeded socket chaos."""
        response = slot.result()
        document = response.to_json()
        action = self._chaos_decision(request_id)
        if action == "kill":
            # The worst moment: the result exists, the client never
            # sees it on this connection.  It must fail over.
            self._count("service_conn_chaos_total", {"fault": "kill"})
            conn.close()
            return
        if action == "hang":
            # Half-open: this connection silently stops answering but
            # stays up — only heartbeats can tell.
            self._count(
                "service_conn_chaos_total", {"fault": "half_open"}
            )
            conn.half_open = True
            return
        if action == "slow":
            self._count(
                "service_conn_chaos_total", {"fault": "trickle"}
            )
            self._trickle(conn, document)
            return
        if not self._write_line(conn, document):
            self._count("service_conn_write_failures_total")

    def _trickle(self, conn: _Connection, document: dict) -> None:
        """Write a response a few bytes at a time (slow-byte fault)."""
        assert self._chaos_config is not None
        chunk = max(1, self._chaos_config.trickle_chunk)
        delay = self._chaos_config.trickle_delay_s
        data = (
            json.dumps(document, sort_keys=True) + "\n"
        ).encode("utf-8")
        try:
            with conn.write_lock:
                for k in range(0, len(data), chunk):
                    if conn.closed or conn.half_open:
                        return
                    conn.sock.sendall(data[k:k + chunk])
                    time.sleep(delay)
        except OSError:
            self._count("service_conn_write_failures_total")

    def _serve_connection(self, conn: _Connection) -> None:
        if not self._handshake(conn):
            return
        reader = conn.sock.makefile("r", encoding="utf-8", newline="\n")
        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                document = None
                try:
                    document = json.loads(line)
                except ValueError:
                    pass
                if (
                    isinstance(document, dict)
                    and document.get("control") == "ping"
                ):
                    # Transport-level pong: immediate, out of band, so
                    # a slow compile never masks connection liveness.
                    pong = {
                        "proto": PROTO_VERSION,
                        "id": document.get("id"),
                        "status": "ok",
                        "summary": {"pong": True},
                    }
                    if "t" in document:
                        pong["summary"]["t"] = document["t"]
                    self._write_line(conn, pong)
                    continue
                slot = self._submit_json(line)
                request_id = (
                    str(document.get("id"))
                    if isinstance(document, dict)
                    and document.get("id") is not None
                    else ""
                )
                threading.Thread(
                    target=self._respond,
                    args=(conn, slot, request_id),
                    daemon=True,
                ).start()
        except (OSError, ValueError):
            pass
        finally:
            try:
                reader.close()
            except (OSError, ValueError):
                pass
            conn.close()
            with self._conn_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
