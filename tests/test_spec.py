"""Unit tests for stencil windows and specs."""

import pytest

from repro.polyhedral.domain import BoxDomain, IntegerPolyhedron
from repro.stencil.expr import Ref, weighted_sum
from repro.stencil.spec import StencilSpec, StencilWindow


class TestStencilWindow:
    def test_offsets_sorted_descending(self):
        w = StencilWindow.from_offsets(
            [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)]
        )
        assert w.offsets == ((1, 0), (0, 1), (0, 0), (0, -1), (-1, 0))

    def test_n_points_and_dim(self):
        w = StencilWindow.von_neumann(2, 1)
        assert w.n_points == 5
        assert w.dim == 2

    def test_von_neumann_without_center(self):
        w = StencilWindow.von_neumann(2, 1, include_center=False)
        assert w.n_points == 4
        assert (0, 0) not in w

    def test_von_neumann_3d_radius_1(self):
        w = StencilWindow.von_neumann(3, 1)
        assert w.n_points == 7

    def test_moore_2d(self):
        w = StencilWindow.moore(2, 1)
        assert w.n_points == 9
        w8 = StencilWindow.moore(2, 1, include_center=False)
        assert w8.n_points == 8

    def test_span(self):
        w = StencilWindow.from_offsets([(0, 0), (2, -1), (-1, 3)])
        mins, maxs = w.span()
        assert mins == (-1, -1)
        assert maxs == (2, 3)

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(ValueError):
            StencilWindow.from_offsets([(0, 0), (0, 0)])

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            StencilWindow.from_offsets([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            StencilWindow.from_offsets([(0, 0), (0, 0, 0)])

    def test_contains(self):
        w = StencilWindow.von_neumann(2, 1)
        assert (1, 0) in w
        assert (1, 1) not in w


class TestStencilSpec:
    def _window(self):
        return StencilWindow.von_neumann(2, 1)

    def test_default_iteration_domain_is_interior(self):
        spec = StencilSpec("T", (8, 10), self._window())
        dom = spec.iteration_domain
        assert dom.lows == (1, 1)
        assert dom.highs == (6, 8)

    def test_default_expression_is_window_average(self):
        spec = StencilSpec("T", (8, 10), self._window())
        from repro.stencil.expr import collect_refs

        assert len(collect_refs(spec.expression)) == 5

    def test_expression_window_mismatch_rejected(self):
        expr = Ref((0, 0)) + Ref((0, 5))
        with pytest.raises(ValueError):
            StencilSpec("T", (8, 10), self._window(), expression=expr)

    def test_grid_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StencilSpec("T", (8,), self._window())

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            StencilSpec("T", (2, 2), self._window())

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError):
            StencilSpec("T", (0, 10), self._window())

    def test_with_grid_changes_domain(self):
        spec = StencilSpec("T", (8, 10), self._window())
        bigger = spec.with_grid((20, 30))
        assert bigger.iteration_domain.highs == (18, 28)
        assert bigger.name == spec.name
        assert bigger.window is spec.window

    def test_scaled_keeps_window_valid(self):
        spec = StencilSpec("T", (768, 1024), self._window())
        small = spec.scaled(64)
        assert small.grid == (12, 16)
        small.analysis()  # must not raise

    def test_scaled_never_below_window_span(self):
        spec = StencilSpec("T", (8, 10), self._window())
        tiny = spec.scaled(1000)
        assert all(g >= 4 for g in tiny.grid)

    def test_scale_factor_must_be_positive(self):
        spec = StencilSpec("T", (8, 10), self._window())
        with pytest.raises(ValueError):
            spec.scaled(0)

    def test_references_in_filter_order(self):
        spec = StencilSpec("T", (8, 10), self._window())
        offsets = [r.offset for r in spec.references()]
        assert offsets == sorted(offsets, reverse=True)

    def test_custom_iteration_domain(self):
        skew = IntegerPolyhedron(
            coefficients=[(1, 0), (-1, 0), (1, -1), (-1, 1)],
            bounds=[4, -1, -1, 3],
        )
        spec = StencilSpec(
            "SKEW",
            (8, 12),
            self._window(),
            iteration_domain=skew,
        )
        assert spec.iteration_domain is skew

    def test_grid_domain(self):
        spec = StencilSpec("T", (8, 10), self._window())
        g = spec.grid_domain()
        assert g.lows == (0, 0)
        assert g.highs == (7, 9)

    def test_str(self):
        spec = StencilSpec("T", (8, 10), self._window())
        assert "5-point" in str(spec)
        assert "8x10" in str(spec)

    def test_stride2_window_interior(self):
        w = StencilWindow.from_offsets(
            [(0, 0), (0, 2), (2, 0), (2, 2)]
        )
        spec = StencilSpec("B", (8, 8), w)
        assert spec.iteration_domain.lows == (0, 0)
        assert spec.iteration_domain.highs == (5, 5)
