"""Expression AST for stencil computation kernels.

The kernel body of a stencil application (e.g. Fig 1's DENOISE update) is
represented as a small arithmetic AST over array references and constants.
The same tree serves three consumers:

* the golden NumPy executor (:mod:`repro.stencil.golden`) evaluates it
  with vectorized array views,
* the cycle-level simulator evaluates it per iteration on scalars,
* HLS-lite (:mod:`repro.hls`) schedules its operation DAG onto a pipelined
  datapath.

Nodes are immutable; Python operators are overloaded so kernels read like
the original C (``0.2 * (c + n + s + e + w)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from ..polyhedral.lexorder import Vector, as_vector

Number = Union[int, float]

#: Binary operators supported by the kernel datapath.
BINARY_OPS = ("add", "sub", "mul", "div", "min", "max")
#: Unary operators supported by the kernel datapath.
UNARY_OPS = ("neg", "abs", "sqrt")

_OP_SYMBOLS = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


class Expr:
    """Base class for kernel expressions."""

    def __add__(self, other: "ExprLike") -> "Expr":
        return BinOp("add", self, wrap(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return BinOp("add", wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return BinOp("sub", self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return BinOp("sub", wrap(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return BinOp("mul", self, wrap(other))

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return BinOp("mul", wrap(other), self)

    def __truediv__(self, other: "ExprLike") -> "Expr":
        return BinOp("div", self, wrap(other))

    def __rtruediv__(self, other: "ExprLike") -> "Expr":
        return BinOp("div", wrap(other), self)

    def __neg__(self) -> "Expr":
        return UnOp("neg", self)


ExprLike = Union[Expr, Number]


def wrap(value: ExprLike) -> Expr:
    """Coerce a Python number to a :class:`Const` node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {type(value).__name__} in an expression")


@dataclass(frozen=True)
class Ref(Expr):
    """A read of the input array at a constant window offset."""

    offset: Vector
    array: str = "A"

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", as_vector(self.offset))

    def __str__(self) -> str:
        return f"{self.array}{list(self.offset)}"


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time floating-point constant."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def __str__(self) -> str:
        if self.op in _OP_SYMBOLS:
            return f"({self.left} {_OP_SYMBOLS[self.op]} {self.right})"
        return f"{self.op}({self.left}, {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary arithmetic operation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def __str__(self) -> str:
        if self.op == "neg":
            return f"(-{self.operand})"
        return f"{self.op}({self.operand})"


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    """Elementwise minimum node."""
    return BinOp("min", wrap(a), wrap(b))


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    """Elementwise maximum node."""
    return BinOp("max", wrap(a), wrap(b))


def absolute(a: ExprLike) -> Expr:
    """Absolute-value node."""
    return UnOp("abs", wrap(a))


def square_root(a: ExprLike) -> Expr:
    """Square-root node."""
    return UnOp("sqrt", wrap(a))


def weighted_sum(
    terms: Sequence[Tuple[Sequence[int], Number]], array: str = "A"
) -> Expr:
    """Build ``sum(coeff * A[offset])`` — the typical stencil body."""
    if not terms:
        raise ValueError("weighted_sum of zero terms")
    acc: Expr = None  # type: ignore[assignment]
    for offset, coeff in terms:
        term: Expr = Ref(as_vector(offset), array)
        if coeff != 1:
            term = BinOp("mul", Const(float(coeff)), term)
        acc = term if acc is None else BinOp("add", acc, term)
    return acc


def collect_refs(expr: Expr) -> List[Ref]:
    """All distinct :class:`Ref` leaves in first-appearance order."""
    seen: Dict[Tuple[str, Vector], Ref] = {}

    def visit(node: Expr) -> None:
        if isinstance(node, Ref):
            seen.setdefault((node.array, node.offset), node)
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnOp):
            visit(node.operand)
        elif isinstance(node, Const):
            pass
        else:
            raise TypeError(f"unknown expression node {node!r}")

    visit(expr)
    return list(seen.values())


def count_operations(expr: Expr) -> Dict[str, int]:
    """Histogram of arithmetic operations in the tree (HLS resource
    pre-estimate; shared sub-trees are counted once per appearance,
    matching a fully spatial pipelined datapath)."""
    counts: Dict[str, int] = {}

    def visit(node: Expr) -> None:
        if isinstance(node, BinOp):
            counts[node.op] = counts.get(node.op, 0) + 1
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnOp):
            counts[node.op] = counts.get(node.op, 0) + 1
            visit(node.operand)

    visit(expr)
    return counts


def evaluate(expr: Expr, env: Mapping[Tuple[str, Vector], object]):
    """Evaluate the tree with values (scalars or NumPy arrays) bound to
    each ``(array, offset)`` reference."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        key = (expr.array, expr.offset)
        if key not in env:
            raise KeyError(f"no value bound for reference {expr}")
        return env[key]
    if isinstance(expr, UnOp):
        value = evaluate(expr.operand, env)
        if expr.op == "neg":
            return -value
        if expr.op == "abs":
            return abs(value)
        if expr.op == "sqrt":
            try:
                return math.sqrt(value)  # type: ignore[arg-type]
            except TypeError:
                import numpy as np

                return np.sqrt(value)
        raise ValueError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        if expr.op == "add":
            return left + right
        if expr.op == "sub":
            return left - right
        if expr.op == "mul":
            return left * right
        if expr.op == "div":
            return left / right
        if expr.op in ("min", "max"):
            import numpy as np

            fn = np.minimum if expr.op == "min" else np.maximum
            return fn(left, right)
        raise ValueError(f"unknown binary op {expr.op!r}")
    raise TypeError(f"unknown expression node {expr!r}")


def depth(expr: Expr) -> int:
    """Height of the expression tree (proxy for unpipelined latency)."""
    if isinstance(expr, (Const, Ref)):
        return 0
    if isinstance(expr, UnOp):
        return 1 + depth(expr.operand)
    if isinstance(expr, BinOp):
        return 1 + max(depth(expr.left), depth(expr.right))
    raise TypeError(f"unknown expression node {expr!r}")


def expr_to_json(expr: Expr) -> dict:
    """A JSON-safe tree description (inverse of :func:`expr_from_json`)."""
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, Ref):
        return {
            "kind": "ref",
            "array": expr.array,
            "offset": list(expr.offset),
        }
    if isinstance(expr, UnOp):
        return {
            "kind": "unop",
            "op": expr.op,
            "operand": expr_to_json(expr.operand),
        }
    if isinstance(expr, BinOp):
        return {
            "kind": "binop",
            "op": expr.op,
            "left": expr_to_json(expr.left),
            "right": expr_to_json(expr.right),
        }
    raise TypeError(f"unknown expression node {expr!r}")


def expr_from_json(data: dict) -> Expr:
    """Rebuild an expression tree from :func:`expr_to_json` output."""
    kind = data.get("kind")
    if kind == "const":
        return Const(float(data["value"]))
    if kind == "ref":
        return Ref(as_vector(data["offset"]), data.get("array", "A"))
    if kind == "unop":
        return UnOp(data["op"], expr_from_json(data["operand"]))
    if kind == "binop":
        return BinOp(
            data["op"],
            expr_from_json(data["left"]),
            expr_from_json(data["right"]),
        )
    raise ValueError(f"unknown expression kind {kind!r}")


def to_c_source(expr: Expr, index_names: Sequence[str]) -> str:
    """Render the tree as C-like source with explicit index arithmetic
    (used by the Fig 4-style kernel code generator)."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Ref):
        parts = []
        for name, d in zip(index_names, expr.offset):
            if d == 0:
                parts.append(f"[{name}]")
            elif d > 0:
                parts.append(f"[{name}+{d}]")
            else:
                parts.append(f"[{name}{d}]")
        return expr.array + "".join(parts)
    if isinstance(expr, UnOp):
        inner = to_c_source(expr.operand, index_names)
        if expr.op == "neg":
            return f"(-{inner})"
        if expr.op == "abs":
            return f"fabs({inner})"
        return f"sqrt({inner})"
    if isinstance(expr, BinOp):
        left = to_c_source(expr.left, index_names)
        right = to_c_source(expr.right, index_names)
        if expr.op in _OP_SYMBOLS:
            return f"({left} {_OP_SYMBOLS[expr.op]} {right})"
        fn = "fmin" if expr.op == "min" else "fmax"
        return f"{fn}({left}, {right})"
    raise TypeError(f"unknown expression node {expr!r}")
