"""System integration: off-chip prefetching and accelerator chaining
(Fig 13 / Appendix 9.3)."""

from .chaining import (
    ChainedRun,
    ChainingError,
    ForwardingAnalysis,
    chain_accelerators,
    compose_consumer,
    forwarding_analysis,
    golden_chain,
    intermediate_grid_shape,
)
from .prefetcher import BurstPrefetcher, simulate_with_prefetch

__all__ = [
    "BurstPrefetcher",
    "ChainedRun",
    "ChainingError",
    "ForwardingAnalysis",
    "chain_accelerators",
    "compose_consumer",
    "forwarding_analysis",
    "golden_chain",
    "intermediate_grid_shape",
    "simulate_with_prefetch",
]
