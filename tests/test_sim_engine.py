"""Integration tests: the cycle-level simulator vs the golden reference.

These are the function-correctness experiments of Section 3.3.1: for
every benchmark (scaled down), the streaming microarchitecture must emit
exactly the golden output sequence, fully pipelined, from a single
lexicographic input stream.
"""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE

from conftest import small_spec


class TestFunctionCorrectness:
    def test_every_benchmark_matches_golden(self, small_benchmark):
        spec = small_benchmark
        grid = make_input(spec)
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, grid).run()
        golden = golden_output_sequence(spec, grid)
        assert len(result.outputs) == len(golden)
        assert np.allclose(result.output_values(), golden)

    def test_outputs_in_lexicographic_iteration_order(
        self, small_benchmark
    ):
        spec = small_benchmark
        grid = make_input(spec)
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, grid).run()
        iters = result.output_iterations()
        assert iters == sorted(iters)

    def test_two_stream_variant_matches_golden(self, small_benchmark):
        spec = small_benchmark
        grid = make_input(spec)
        base = build_memory_system(spec.analysis())
        system = with_offchip_streams(base, 2)
        result = ChainSimulator(spec, system, grid).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )


class TestThroughput:
    def test_total_cycles_equal_stream_length(self, denoise_small):
        """With one off-chip access per cycle the run is stream-bound:
        exactly one cycle per streamed element (full pipelining)."""
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ChainSimulator(denoise_small, system, grid).run()
        assert (
            result.stats.total_cycles
            == system.stream_domain.count()
        )

    def test_kernel_consumes_every_cycle_in_steady_rows(
        self, denoise_small
    ):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ChainSimulator(denoise_small, system, grid).run()
        # Within a row, outputs are back-to-back: worst gap happens at
        # row turnarounds only (<= window column span + 1).
        assert result.stats.worst_output_gap <= 3

    def test_first_output_after_fill(self, denoise_small):
        grid = make_input(denoise_small)
        analysis = denoise_small.analysis()
        system = build_memory_system(analysis)
        result = ChainSimulator(denoise_small, system, grid).run()
        # The first output fires the cycle after the earliest
        # reference's first element arrives, i.e. after its stream rank
        # has been streamed in (Table 3: all ports valid at cycle
        # rank+1).
        first_needed = analysis.data_domain(
            analysis.earliest
        ).lex_first()
        rank = system.stream_domain.lex_rank(first_needed)
        assert result.stats.first_output_cycle == rank + 1

    def test_more_streams_do_not_slow_down(self, denoise_small):
        grid = make_input(denoise_small)
        base = build_memory_system(denoise_small.analysis())
        t1 = ChainSimulator(denoise_small, base, grid).run()
        t2 = ChainSimulator(
            denoise_small, with_offchip_streams(base, 2), grid
        ).run()
        assert (
            t2.stats.total_cycles <= t1.stats.total_cycles + 1
        )


class TestFifoBehaviour:
    def test_occupancy_never_exceeds_capacity(self, small_benchmark):
        spec = small_benchmark
        grid = make_input(spec)
        system = build_memory_system(spec.analysis())
        result = ChainSimulator(spec, system, grid).run()
        for fid, occ in result.stats.fifo_max_occupancy.items():
            assert occ <= result.stats.fifo_capacity[fid]

    def test_minimum_fifos_fill_completely(self, denoise_small):
        """Capacities equal max reuse distances, so the large FIFOs
        must reach exactly full occupancy during execution — the
        capacities are tight, not conservative."""
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ChainSimulator(denoise_small, system, grid).run()
        for fid, cap in result.stats.fifo_capacity.items():
            assert result.stats.fifo_max_occupancy[fid] == cap

    def test_each_filter_forwards_its_domain_size(self, denoise_small):
        grid = make_input(denoise_small)
        analysis = denoise_small.analysis()
        system = build_memory_system(analysis)
        result = ChainSimulator(denoise_small, system, grid).run()
        n_iter = denoise_small.iteration_domain.count()
        for fid, count in result.stats.filter_forwarded.items():
            assert count == n_iter

    def test_forwarded_plus_discarded_bounded_by_stream(
        self, denoise_small
    ):
        """Each filter processes at most the whole stream (elements
        still in flight when the last output fires never traverse the
        tail of the chain)."""
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        result = ChainSimulator(denoise_small, system, grid).run()
        stream_len = system.stream_domain.count()
        n_iter = denoise_small.iteration_domain.count()
        for fid in result.stats.filter_forwarded:
            total = (
                result.stats.filter_forwarded[fid]
                + result.stats.filter_discarded[fid]
            )
            assert n_iter <= total <= stream_len


class TestInputValidation:
    def test_wrong_grid_shape(self, denoise_small):
        system = build_memory_system(denoise_small.analysis())
        with pytest.raises(ValueError):
            ChainSimulator(
                denoise_small, system, np.zeros((3, 3))
            )

    def test_bad_filter_order_permutation(self, denoise_small):
        system = build_memory_system(denoise_small.analysis())
        grid = make_input(denoise_small)
        with pytest.raises(ValueError):
            ChainSimulator(
                denoise_small,
                system,
                grid,
                filter_order_override=[0, 0, 1, 2, 3],
            )

    def test_cycle_budget_enforced(self, denoise_small):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        sim = ChainSimulator(denoise_small, system, grid)
        with pytest.raises(RuntimeError):
            sim.run(max_cycles=3)


class TestStreamLatency:
    def test_initial_latency_shifts_but_preserves_output(
        self, denoise_small
    ):
        grid = make_input(denoise_small)
        system = build_memory_system(denoise_small.analysis())
        base = ChainSimulator(denoise_small, system, grid).run()
        system2 = build_memory_system(denoise_small.analysis())
        delayed = ChainSimulator(
            denoise_small, system2, grid, stream_latency=10
        ).run()
        assert delayed.output_values() == base.output_values()
        assert (
            delayed.stats.total_cycles
            == base.stats.total_cycles + 10
        )
