"""Clock-period estimation (the CP column of Table 5).

The paper targets 200 MHz (5.0 ns).  Both designs meet timing; ours
"generally has larger slacks ... mainly due to the distributed structure"
(Section 5.2).  The model reflects the mechanism:

* our critical path is a domain counter increment + equality compare +
  handshake — short, and it grows only with the counter width
  (log2 of the largest grid extent);
* the baseline's critical path runs through the address transformer
  (stride multiply, then modulo by the bank count) and the read
  crossbar — longer, and it grows with the bank count and with
  non-power-of-two moduli.

Both estimates are clipped at the 5.0 ns target, because the paper notes
the backend "will stop optimization as long as it meets the 200 MHz
target".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..microarch.memory_system import MemorySystem
from ..partitioning.base import UniformPlan

#: Timing target used in the paper's experiments.
TARGET_CLOCK_NS = 5.0

# 7-series-flavoured delay constants (ns).
_FF_CLK_TO_Q = 0.5
_LUT_DELAY = 0.25
_CARRY_PER_4BITS = 0.06
_ROUTE = 0.8
_BRAM_SETUP = 0.6
_DSP_MUL = 1.9
_MUX_LEVEL = 0.3
#: Clock skew + uncertainty margin applied to every path.
_CLOCK_MARGIN = 1.0
#: Per-filter cost of the combinational ready/valid chain through the
#: splitters (the price of the distributed handshake).
_HANDSHAKE_PER_FILTER = 0.11


@dataclass(frozen=True)
class TimingEstimate:
    """Critical path and slack against the 5.0 ns target."""

    critical_path_ns: float
    target_ns: float = TARGET_CLOCK_NS

    @property
    def slack_ns(self) -> float:
        return self.target_ns - self.critical_path_ns

    @property
    def meets_target(self) -> bool:
        return self.critical_path_ns <= self.target_ns + 1e-9


def estimate_timing_ours(system: MemorySystem) -> TimingEstimate:
    """Counter-increment + compare + handshake path."""
    counter_bits = max(
        max(1, (extent - 1).bit_length())
        for extent in system.stream_domain.shape
    )
    path = (
        _FF_CLK_TO_Q
        + _CARRY_PER_4BITS * math.ceil(counter_bits / 4)  # increment
        + _LUT_DELAY * 2  # equality compare + switch enable
        + _HANDSHAKE_PER_FILTER * system.n_references
        + _ROUTE
        + _BRAM_SETUP
        + _CLOCK_MARGIN
    )
    return TimingEstimate(critical_path_ns=min(path, TARGET_CLOCK_NS))


def estimate_timing_baseline(plan: UniformPlan) -> TimingEstimate:
    """Address transformer + crossbar path."""
    n_banks = plan.num_banks
    mul_stages = 0
    for stride in _strides(plan.mapping.padded_extents)[:-1]:
        if not _is_pow2(stride):
            mul_stages += 1
    mod_cost = 0.0 if _is_pow2(n_banks) else _DSP_MUL + _LUT_DELAY
    mux_levels = max(1, math.ceil(math.log2(max(2, n_banks))) - 1)
    path = (
        _FF_CLK_TO_Q
        + (_DSP_MUL if mul_stages else _LUT_DELAY)
        + mod_cost
        + _MUX_LEVEL * mux_levels
        + _ROUTE
        + _BRAM_SETUP
        + _CLOCK_MARGIN
    )
    return TimingEstimate(critical_path_ns=min(path, TARGET_CLOCK_NS))


def _strides(extents) -> list:
    strides = [1] * len(extents)
    for j in range(len(extents) - 2, -1, -1):
        strides[j] = strides[j + 1] * extents[j + 1]
    return strides


def _is_pow2(v: int) -> bool:
    return v > 0 and (v & (v - 1)) == 0
