"""Padded multidimensional cyclic partitioning — baseline [7, 8].

Models the generalized memory-partitioning (GMP) flow of Wang et al.
(DAC'13), the paper's experimental baseline: a uniform cyclic banking of
the linearized address space, *with grid padding* — the "padding
technique in [8] which increases the grid size at certain dimensions to
relax the partitioning complexity" (Section 5.2).

Search: for increasing bank counts ``N`` (from the lower bound ``n``), try
all inner-dimension paddings within a bounded budget; a candidate is
feasible when all pairwise linear-offset differences are non-zero mod
``N``.  Among feasible candidates for the smallest feasible ``N``, the one
with the smallest padded storage wins.  The bounded padding budget is what
a real flow imposes (padding costs both on-chip storage and off-chip
layout changes); it is why some windows need ``n + 1`` banks here while
the paper's non-uniform chain always needs ``n - 1``.

The resulting :class:`~repro.partitioning.base.UniformPlan` carries the
padded extents, the bank mapping (used by the conflict checker and the
baseline simulator) and the uniform bank sizes (``N * ceil(span / N)``
total storage, where the span is measured in the *padded* address space —
the padding overhead visible in the paper's Table 4).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..obs.tracing import traced
from ..polyhedral.analysis import StencilAnalysis
from ..polyhedral.lexorder import Vector, as_vector
from .base import (
    BankSpec,
    PartitioningInfeasibleError,
    UniformBankMapping,
    UniformPlan,
)
from .cyclic import (
    DEFAULT_MAX_BANKS,
    is_conflict_free,
    linear_offsets,
    _is_power_of_two,
    _row_major_strides,
)

#: Default relative padding budget per dimension (15 %, plus a small
#: absolute floor so tiny grids can still pad a few elements).
DEFAULT_PADDING_BUDGET = 0.15
DEFAULT_PADDING_FLOOR = 4


@dataclass(frozen=True)
class GmpCandidate:
    """One feasible (banks, padding) point found by the search."""

    num_banks: int
    padded_extents: Vector
    span: int

    @property
    def total_storage(self) -> int:
        return self.num_banks * math.ceil(self.span / self.num_banks)


def padding_candidates(
    extents: Sequence[int],
    budget: float = DEFAULT_PADDING_BUDGET,
    floor: int = DEFAULT_PADDING_FLOOR,
) -> List[Tuple[int, ...]]:
    """All padded-extent combinations within the budget.

    Only inner dimensions (index >= 1) influence the linearization
    strides, so the outermost extent is never padded.
    """
    extents = as_vector(extents)
    ranges = [range(extents[0], extents[0] + 1)]
    for e in extents[1:]:
        max_pad = max(floor, int(e * budget))
        ranges.append(range(e, e + max_pad + 1))
    return list(itertools.product(*ranges))


def search_gmp(
    offsets: Sequence[Sequence[int]],
    extents: Sequence[int],
    max_banks: int = DEFAULT_MAX_BANKS,
    budget: float = DEFAULT_PADDING_BUDGET,
    floor: int = DEFAULT_PADDING_FLOOR,
) -> GmpCandidate:
    """Find the minimum-bank, then minimum-storage GMP banking."""
    n = len(offsets)
    candidates = padding_candidates(extents, budget, floor)
    for num_banks in range(n, max_banks + 1):
        feasible: List[GmpCandidate] = []
        for padded in candidates:
            values = linear_offsets(offsets, padded)
            if is_conflict_free(values, num_banks):
                span = max(values) - min(values) + 1
                feasible.append(
                    GmpCandidate(num_banks, as_vector(padded), span)
                )
        if feasible:
            return min(
                feasible,
                key=lambda c: (c.total_storage, c.padded_extents),
            )
    raise PartitioningInfeasibleError(
        f"no conflict-free GMP banking with <= {max_banks} banks within "
        f"the padding budget"
    )


@traced("partition.gmp")
def plan_gmp(
    analysis: StencilAnalysis,
    max_banks: int = DEFAULT_MAX_BANKS,
    budget: float = DEFAULT_PADDING_BUDGET,
    floor: int = DEFAULT_PADDING_FLOOR,
) -> UniformPlan:
    """Build the [8]-style plan for one analyzed array."""
    extents = analysis.stream_domain().shape
    offsets = analysis.offsets()
    cand = search_gmp(offsets, extents, max_banks, budget, floor)
    bank_depth = math.ceil(cand.span / cand.num_banks)
    mapping = UniformBankMapping(
        num_banks=cand.num_banks,
        weights=_row_major_strides(cand.padded_extents),
        padded_extents=cand.padded_extents,
        original_extents=as_vector(extents),
    )
    banks = tuple(
        BankSpec(bank_id=k, capacity=bank_depth, role="cyclic_bank")
        for k in range(cand.num_banks)
    )
    return UniformPlan(
        scheme="gmp_padded",
        array=analysis.array,
        n_references=analysis.n_references,
        banks=banks,
        achieved_ii=1,
        mapping=mapping,
        window_span=cand.span,
        uses_dsp_address_transform=not _is_power_of_two(cand.num_banks),
    )
