"""Service acceptance tests: load, cache speedup, and the sim canary.

Covers the three service-level guarantees from the roadmap:

* **load** — >= 500 concurrent submissions of mixed paper benchmarks
  through a queue much smaller than the request count (bounded memory
  via backpressure), with zero dropped-without-response requests and a
  clean drain on shutdown;
* **speedup** — the warm cache-hit compile path is >= 10x faster than a
  cold compile, asserted from the ``service_compile_ms`` histograms in
  :mod:`repro.obs`;
* **canary** — a fault-injection test flips a FIFO depth inside a
  cached plan and the sampled cycle-sim validation catches it, counts
  it, and evicts the poisoned entry from both cache tiers.
"""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import CachedPlan, ServiceConfig, StencilService

from conftest import SMALL_GRIDS

N_REQUESTS = 520
N_SUBMITTERS = 8


def _mixed_requests(n):
    names = sorted(SMALL_GRIDS)
    return [
        {
            "id": f"load-{k}",
            "benchmark": names[k % len(names)],
            "grid": list(SMALL_GRIDS[names[k % len(names)]]),
            "seed": k % 17,
            "timeout_s": 120.0,
        }
        for k in range(n)
    ]


def _hist(snapshot, name, **labels):
    pairs = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    key = f"{name}{{{pairs}}}" if pairs else name
    return snapshot["histograms"].get(key)


class TestServiceLoad:
    def test_500_concurrent_submissions(self):
        registry = MetricsRegistry()
        config = ServiceConfig(
            workers=8,
            max_queue=64,  # bounded: far fewer slots than requests
            max_batch=16,
            validate_every=0,
        )
        requests = _mixed_requests(N_REQUESTS)
        slots = [None] * len(requests)

        with StencilService(config, registry=registry) as svc:
            lanes = [
                requests[k::N_SUBMITTERS] for k in range(N_SUBMITTERS)
            ]
            offsets = list(range(N_SUBMITTERS))

            def submitter(lane, offset):
                for j, req in enumerate(lane):
                    # block=True: backpressure, never an unbounded queue
                    slots[offset + j * N_SUBMITTERS] = svc.submit(req)

            threads = [
                threading.Thread(target=submitter, args=(lane, off))
                for lane, off in zip(lanes, offsets)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120.0)
            replies = [slot.result(120.0) for slot in slots]

        # Zero dropped-without-response: every slot resolved, id intact.
        assert len(replies) == N_REQUESTS
        assert [r["id"] for r in replies] == [
            r["id"] for r in requests
        ]
        statuses = {r["status"] for r in replies}
        assert statuses == {"ok"}, statuses

        # Clean drain: context-manager shutdown left nothing behind.
        assert svc.scheduler.idle()
        assert svc.scheduler.queue_depth() == 0
        assert svc.scheduler.unresolved == 0

        snap = registry.snapshot()
        assert snap["counters"][
            'service_requests_total{status="ok"}'
        ] == N_REQUESTS

        # Exactly one cold compile per distinct benchmark; everything
        # else was served from the cache or coalesced onto a flight.
        counters = snap["counters"]
        misses = counters.get('service_cache_total{outcome="miss"}', 0)
        hits = counters.get('service_cache_total{outcome="hit"}', 0)
        assert misses == len(SMALL_GRIDS)
        assert hits > misses

        # Determinism under concurrency: same spec+seed, same checksum.
        by_key = {}
        for req, reply in zip(requests, replies):
            key = (req["benchmark"], req["seed"])
            by_key.setdefault(key, set()).add(reply["checksum"])
        assert all(len(sums) == 1 for sums in by_key.values())

    def test_warm_hit_10x_faster_than_cold_compile(self):
        registry = MetricsRegistry()
        config = ServiceConfig(workers=2, max_batch=1)
        with StencilService(config, registry=registry) as svc:
            for k in range(24):
                req = {
                    "benchmark": "DENOISE",
                    "grid": list(SMALL_GRIDS["DENOISE"]),
                    "seed": k,
                }
                assert svc.handle(req, 60.0)["status"] == "ok"

        snap = registry.snapshot()
        cold = _hist(snap, "service_compile_ms", cache="miss")
        warm = _hist(snap, "service_compile_ms", cache="hit")
        assert cold is not None and warm is not None
        assert cold["count"] == 1
        assert warm["count"] >= 20
        cold_mean = cold["sum"] / cold["count"]
        warm_mean = warm["sum"] / warm["count"]
        assert cold_mean >= 10.0 * warm_mean, (
            f"cold {cold_mean:.3f} ms vs warm {warm_mean:.3f} ms"
        )


class TestCanaryFaultInjection:
    def _corrupt(self, plan):
        """Flip the widest FIFO depth down — the classic bad plan.

        Shrinking a reuse FIFO below the inter-bank reuse distance
        violates deadlock-free condition 2, so the cycle-sim canary
        must either deadlock or diverge from the golden reference.
        """
        data = plan.to_json()
        depths = data["fifo_capacities"]
        widest = max(range(len(depths)), key=lambda i: depths[i])
        assert depths[widest] > 1, "need a shrinkable FIFO"
        depths[widest] = 1
        return CachedPlan.from_json(data)

    def test_canary_catches_flipped_fifo_depth(self, tmp_path):
        registry = MetricsRegistry()
        config = ServiceConfig(
            workers=2, validate_every=1, cache_dir=str(tmp_path)
        )
        req = {
            "benchmark": "DENOISE",
            "grid": list(SMALL_GRIDS["DENOISE"]),
        }
        with StencilService(config, registry=registry) as svc:
            first = svc.handle(dict(req), 60.0)
            assert first["status"] == "ok"
            assert first["validated"] is True
            fp = first["fingerprint"]

            # Fault injection: poison the cached plan in both tiers.
            poisoned = self._corrupt(svc.cache.get(fp))
            svc.cache.put(poisoned)
            disk = tmp_path / f"{fp}.json"
            assert json.loads(disk.read_text())["fifo_capacities"] == (
                poisoned.fifo_capacities
            )

            flagged = svc.handle({**req, "validate": True}, 60.0)
            assert flagged["status"] == "validation_failed"
            assert flagged["validated"] is False
            assert (
                "deadlock" in flagged["error"]["detail"]
                or "diverge" in flagged["error"]["detail"]
            )

            # The poisoned entry was evicted from memory *and* disk...
            assert svc.cache.get(fp) is None
            assert not disk.exists()

            # ...so the next request recompiles and passes validation.
            healed = svc.handle({**req, "validate": True}, 60.0)
            assert healed["status"] == "ok"
            assert healed["cache"] == "miss"
            assert healed["validated"] is True

        snap = registry.snapshot()
        assert snap["counters"]["service_validation_failures_total"] == 1
        assert snap["counters"]["service_validation_total"] == 3

    def test_corrupt_disk_entry_survives_until_canary(self, tmp_path):
        """The cache trusts disk content by design; the canary doesn't."""
        registry = MetricsRegistry()
        req = {
            "benchmark": "SOBEL",
            "grid": list(SMALL_GRIDS["SOBEL"]),
        }
        config = ServiceConfig(
            workers=1, validate_every=1, cache_dir=str(tmp_path)
        )
        with StencilService(config, registry=registry) as svc:
            fp = svc.handle(dict(req), 60.0)["fingerprint"]

        # Corrupt the persisted plan between service restarts.
        disk = tmp_path / f"{fp}.json"
        data = json.loads(disk.read_text())
        widest = max(
            range(len(data["fifo_capacities"])),
            key=lambda i: data["fifo_capacities"][i],
        )
        data["fifo_capacities"][widest] = 1
        disk.write_text(json.dumps(data))

        with StencilService(config, registry=MetricsRegistry()) as svc:
            reply = svc.handle({**req, "validate": True}, 60.0)
            assert reply["status"] == "validation_failed"
            assert not disk.exists()  # canary evicted the disk tier too
