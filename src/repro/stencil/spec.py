"""Stencil application specifications (the DSL front end of Fig 11).

A :class:`StencilSpec` fully describes one stencil kernel: the grid, the
stencil window (equivalently the set of array-reference offsets), and the
computation expression.  It derives the iteration domain — by default the
grid *interior* on which every window point stays inside the grid, exactly
as in the paper's Fig 1 DENOISE loop (``i in [1, 766]``, ``j in
[1, 1022]`` for a 768x1024 grid with a 5-point window) — and exposes the
polyhedral analysis used by every downstream stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..polyhedral.access import ArrayReference
from ..polyhedral.analysis import StencilAnalysis
from ..polyhedral.domain import BoxDomain, IntegerPolyhedron
from ..polyhedral.lexorder import Vector, as_vector
from .expr import (
    Expr,
    Ref,
    collect_refs,
    expr_from_json,
    expr_to_json,
    weighted_sum,
)


@dataclass(frozen=True)
class StencilWindow:
    """A stencil window: the set of constant access offsets.

    Offsets are stored sorted in *descending* lexicographic order (the
    paper's filter order: lexicographically earliest reference first).
    """

    offsets: Tuple[Vector, ...]

    def __post_init__(self) -> None:
        pts = [as_vector(p) for p in self.offsets]
        if not pts:
            raise ValueError("stencil window must contain at least 1 point")
        dims = {len(p) for p in pts}
        if len(dims) != 1:
            raise ValueError("window offsets disagree on dimensionality")
        if len(set(pts)) != len(pts):
            raise ValueError("duplicate offsets in stencil window")
        object.__setattr__(
            self, "offsets", tuple(sorted(pts, reverse=True))
        )

    @property
    def n_points(self) -> int:
        """Window size ``n`` — also the original pipeline II before
        partitioning (Table 4's "Original II")."""
        return len(self.offsets)

    @property
    def dim(self) -> int:
        return len(self.offsets[0])

    def span(self) -> Tuple[Vector, Vector]:
        """Per-dimension (min, max) offset extents."""
        mins = tuple(
            min(p[j] for p in self.offsets) for j in range(self.dim)
        )
        maxs = tuple(
            max(p[j] for p in self.offsets) for j in range(self.dim)
        )
        return mins, maxs

    def __iter__(self):
        return iter(self.offsets)

    def __contains__(self, offset: Sequence[int]) -> bool:
        return as_vector(offset) in self.offsets

    # ------------------------------------------------------------------
    # Common window shapes
    # ------------------------------------------------------------------
    @classmethod
    def von_neumann(
        cls, dim: int, radius: int = 1, include_center: bool = True
    ) -> "StencilWindow":
        """Diamond window: all points with L1 norm <= radius."""
        points = []

        def rec(prefix: List[int], budget: int) -> None:
            if len(prefix) == dim:
                points.append(tuple(prefix))
                return
            for v in range(-budget, budget + 1):
                rec(prefix + [v], budget - abs(v))

        rec([], radius)
        if not include_center:
            points.remove((0,) * dim)
        return cls(tuple(points))

    @classmethod
    def moore(
        cls, dim: int, radius: int = 1, include_center: bool = True
    ) -> "StencilWindow":
        """Box window: all points with L-inf norm <= radius."""
        import itertools

        rng = range(-radius, radius + 1)
        points = list(itertools.product(rng, repeat=dim))
        if not include_center:
            points.remove((0,) * dim)
        return cls(tuple(points))

    @classmethod
    def from_offsets(
        cls, offsets: Sequence[Sequence[int]]
    ) -> "StencilWindow":
        return cls(tuple(as_vector(o) for o in offsets))


@dataclass(frozen=True)
class StencilSpec:
    """A complete stencil application.

    Parameters
    ----------
    name:
        Benchmark name (e.g. ``"DENOISE"``).
    grid:
        Extents of the data grid per dimension, outermost first.
    window:
        The stencil window.
    expression:
        Kernel body; defaults to the unweighted average over the window.
    input_array / output_array:
        Array names used in generated code and reports.
    iteration_domain:
        Custom (possibly non-rectangular) iteration domain.  Defaults to
        the grid interior where the whole window is in bounds.
    """

    name: str
    grid: Vector
    window: StencilWindow
    expression: Optional[Expr] = None
    input_array: str = "A"
    output_array: str = "B"
    iteration_domain: Optional[IntegerPolyhedron] = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", as_vector(self.grid))
        if len(self.grid) != self.window.dim:
            raise ValueError(
                f"grid dimensionality {len(self.grid)} does not match "
                f"window dimensionality {self.window.dim}"
            )
        if any(g <= 0 for g in self.grid):
            raise ValueError("grid extents must be positive")
        if self.expression is None:
            n = self.window.n_points
            object.__setattr__(
                self,
                "expression",
                weighted_sum(
                    [(o, 1.0 / n) for o in self.window.offsets],
                    self.input_array,
                ),
            )
        expr_offsets = {
            r.offset
            for r in collect_refs(self.expression)
            if r.array == self.input_array
        }
        window_offsets = set(self.window.offsets)
        if expr_offsets != window_offsets:
            raise ValueError(
                "expression references "
                f"{sorted(expr_offsets)} but the window declares "
                f"{sorted(window_offsets)}"
            )
        if self.iteration_domain is None:
            object.__setattr__(
                self, "iteration_domain", self.default_iteration_domain()
            )
        if self.iteration_domain.dim != self.window.dim:
            raise ValueError("iteration domain dimensionality mismatch")

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.window.dim

    @property
    def n_points(self) -> int:
        return self.window.n_points

    def default_iteration_domain(self) -> BoxDomain:
        """Grid interior: iterations where every window point is in
        bounds.  Raises if the grid is smaller than the window span."""
        mins, maxs = self.window.span()
        lows = []
        highs = []
        for j, extent in enumerate(self.grid):
            lo = -mins[j]
            hi = extent - 1 - maxs[j]
            if lo > hi:
                raise ValueError(
                    f"grid extent {extent} in dim {j} is too small for a "
                    f"window spanning [{mins[j]}, {maxs[j]}]"
                )
            lows.append(lo)
            highs.append(hi)
        return BoxDomain(lows, highs)

    def references(self) -> List[ArrayReference]:
        """One :class:`ArrayReference` per window point, in descending
        lexicographic offset order."""
        return [
            ArrayReference(self.input_array, o)
            for o in self.window.offsets
        ]

    def analysis(self, stream_mode: str = "hull") -> StencilAnalysis:
        """Polyhedral stencil analysis of this spec.

        ``stream_mode="union"`` streams the exact input data domain
        instead of its bounding box (see
        :class:`~repro.polyhedral.analysis.StencilAnalysis`).
        """
        return StencilAnalysis(
            self.input_array,
            self.references(),
            self.iteration_domain,
            stream_mode=stream_mode,
        )

    def grid_domain(self) -> BoxDomain:
        """The full data grid as a box domain."""
        return BoxDomain(
            [0] * len(self.grid), [g - 1 for g in self.grid]
        )

    def with_grid(self, grid: Sequence[int]) -> "StencilSpec":
        """Same stencil on a different grid (iteration domain re-derived).

        Used to scale paper-sized benchmarks down for simulation."""
        return StencilSpec(
            name=self.name,
            grid=as_vector(grid),
            window=self.window,
            expression=self.expression,
            input_array=self.input_array,
            output_array=self.output_array,
        )

    def scaled(self, factor: int) -> "StencilSpec":
        """Shrink every grid extent by ``factor`` (minimum size keeps the
        window span valid)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        mins, maxs = self.window.span()
        new_grid = []
        for j, g in enumerate(self.grid):
            need = maxs[j] - mins[j] + 1
            new_grid.append(max(need + 1, g // factor))
        return self.with_grid(new_grid)

    # ------------------------------------------------------------------
    # JSON round trip (the service API's wire format)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-safe dict fully describing this spec.

        The default (derived) iteration domain serializes as ``None`` so
        the representation stays canonical: two specs that differ only
        in whether the default domain was passed explicitly produce the
        same JSON, and :meth:`from_json` re-derives it.
        """
        from ..polyhedral.domain import domain_to_json

        domain_json = None
        domain = self.iteration_domain
        if isinstance(domain, BoxDomain):
            default = self.default_iteration_domain()
            if (
                domain.lows == default.lows
                and domain.highs == default.highs
            ):
                domain = None
        if domain is not None:
            domain_json = domain_to_json(domain)
        return {
            "name": self.name,
            "grid": list(self.grid),
            "window": [list(o) for o in self.window.offsets],
            "expression": expr_to_json(self.expression),
            "input_array": self.input_array,
            "output_array": self.output_array,
            "iteration_domain": domain_json,
        }

    @classmethod
    def from_json(cls, data: dict) -> "StencilSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        from ..polyhedral.domain import domain_from_json

        domain_json = data.get("iteration_domain")
        return cls(
            name=data["name"],
            grid=as_vector(data["grid"]),
            window=StencilWindow.from_offsets(data["window"]),
            expression=expr_from_json(data["expression"]),
            input_array=data.get("input_array", "A"),
            output_array=data.get("output_array", "B"),
            iteration_domain=(
                domain_from_json(domain_json)
                if domain_json is not None
                else None
            ),
        )

    def __str__(self) -> str:
        dims = "x".join(str(g) for g in self.grid)
        return (
            f"{self.name}: {self.n_points}-point {self.dim}D stencil "
            f"on a {dims} grid"
        )
