"""Unit tests for code generation (Fig 4 kernels + RTL netlists) and
functional-unit binding."""

import pytest

from repro.hls.bind import BindingError, bind_units
from repro.hls.codegen import (
    generate_kernel_source,
    generate_memory_system_rtl,
    generate_original_source,
)
from repro.hls.ir import DataflowGraph
from repro.hls.schedule import (
    FIXED32_LIBRARY,
    modulo_schedule,
    schedule_kernel,
)
from repro.microarch.memory_system import build_memory_system
from repro.stencil.kernels import DENOISE, SOBEL

from conftest import small_spec


@pytest.fixture
def denoise_system():
    return build_memory_system(DENOISE.analysis())


class TestOriginalSource:
    def test_loop_bounds_match_iteration_domain(self):
        src = generate_original_source(DENOISE)
        assert "for (int i = 1; i <= 766; i++)" in src
        assert "for (int j = 1; j <= 1022; j++)" in src

    def test_array_accesses_present(self):
        src = generate_original_source(DENOISE)
        assert "A[i-1][j]" in src
        assert "A[i+1][j]" in src
        assert "B[i][j] =" in src

    def test_3d_loop_nest(self):
        from repro.stencil.kernels import DENOISE_3D

        src = generate_original_source(DENOISE_3D)
        assert "for (int k" in src
        assert "A[i][j][k+1]" in src or "A[i][j][k-1]" in src


class TestTransformedKernel:
    def test_volatile_ports_in_filter_order(self, denoise_system):
        src = generate_kernel_source(DENOISE, denoise_system)
        sig = src.splitlines()[3]
        assert sig.index("A_ip1_j") < sig.index("A_i_jp1")
        assert sig.index("A_i_jp1") < sig.index("A_im1_j")
        assert "volatile float *" in sig

    def test_pipeline_pragma(self, denoise_system):
        src = generate_kernel_source(DENOISE, denoise_system)
        assert "#pragma HLS pipeline II=1" in src

    def test_no_addressed_array_accesses_remain(self, denoise_system):
        src = generate_kernel_source(DENOISE, denoise_system)
        assert "A[i" not in src  # all loads go through ports

    def test_every_port_read_once(self, denoise_system):
        src = generate_kernel_source(DENOISE, denoise_system)
        for f in denoise_system.filters:
            label = f.reference.label
            port = (
                label.replace("[", "_")
                .replace("]", "")
                .replace("+", "p")
                .replace("-", "m")
            )
            assert src.count(f"*{port};") == 1


class TestRtlNetlist:
    def test_fifo_instances_with_depth_and_style(self, denoise_system):
        rtl = generate_memory_system_rtl(denoise_system)
        assert 'reuse_fifo #(.DEPTH(1023), .WIDTH(32), .STYLE("block"))' in rtl
        assert '.STYLE("registers")' in rtl
        assert rtl.count("reuse_fifo #") == 4

    def test_splitters_and_filters_counted(self, denoise_system):
        rtl = generate_memory_system_rtl(denoise_system)
        assert rtl.count("data_path_splitter #") == 5
        assert rtl.count("data_filter #") == 5

    def test_last_splitter_fanout_1(self, denoise_system):
        rtl = generate_memory_system_rtl(denoise_system)
        assert ".FANOUT(1)) splitter_4" in rtl
        assert ".FANOUT(2)) splitter_0" in rtl

    def test_stream_ports_per_segment(self, denoise_system):
        from repro.microarch.tradeoff import with_offchip_streams

        rtl1 = generate_memory_system_rtl(denoise_system)
        assert rtl1.count("stream_in_") == 1
        rtl2 = generate_memory_system_rtl(
            with_offchip_streams(denoise_system, 2)
        )
        assert rtl2.count("stream_in_") == 2

    def test_module_name_and_balanced(self, denoise_system):
        rtl = generate_memory_system_rtl(denoise_system)
        assert rtl.strip().startswith("// Memory system")
        assert "module mem_system_a (" in rtl
        assert rtl.strip().endswith("endmodule")

    def test_custom_width(self, denoise_system):
        rtl = generate_memory_system_rtl(denoise_system, data_width=16)
        assert "[15:0]" in rtl
        assert ".WIDTH(16)" in rtl


class TestBinding:
    def test_spatial_binding_one_op_per_unit(self):
        g = DataflowGraph.from_expression(DENOISE.expression)
        sched = schedule_kernel(g, ii=1, library=FIXED32_LIBRARY)
        binding = bind_units(g, sched)
        assert len(binding.assignments) == len(g.arithmetic_ops())

    def test_shared_binding_within_claim(self):
        g = DataflowGraph.from_expression(SOBEL.expression)
        sched = modulo_schedule(g, ii=3, library=FIXED32_LIBRARY)
        binding = bind_units(g, sched)
        for opcode, used in binding.units_used.items():
            assert used <= sched.unit_counts[opcode]

    def test_no_unit_double_booked(self):
        g = DataflowGraph.from_expression(SOBEL.expression)
        sched = modulo_schedule(g, ii=2, library=FIXED32_LIBRARY)
        binding = bind_units(g, sched)
        seen = set()
        for op in g.arithmetic_ops():
            unit = binding.unit_of(op.node_id)
            slot = sched.start_times[op.node_id] % sched.ii
            key = (unit, slot)
            assert key not in seen
            seen.add(key)

    def test_overclaim_detected(self):
        g = DataflowGraph.from_expression(SOBEL.expression)
        sched = modulo_schedule(g, ii=2, library=FIXED32_LIBRARY)
        # Tamper: claim fewer units than the schedule actually needs.
        sched.unit_counts["add"] = 1
        with pytest.raises(BindingError):
            bind_units(g, sched)
