"""Tests for multi-array stencil kernels (Fig 3: one memory system per
data array)."""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.sim.multi import MultiArraySimulator
from repro.stencil.expr import Ref
from repro.stencil.multi import (
    MultiArraySpec,
    golden_multi_sequence,
    make_inputs,
    run_golden_multi,
)


def rician_full(grid=(14, 18)):
    """The full RICIAN-style update: smoothed image U plus the noisy
    data term F — two independent input arrays."""
    expr = (
        0.6 * Ref((0, 0), "U")
        + 0.08
        * (
            Ref((-1, 0), "U")
            + Ref((1, 0), "U")
            + Ref((0, -1), "U")
            + Ref((0, 1), "U")
        )
        + 0.08 * Ref((0, 0), "F")
    )
    return MultiArraySpec("RICIAN_FULL", grid, expr)


def frame_difference(grid=(12, 16)):
    """|gradient| of the difference of two video frames."""
    from repro.stencil.expr import absolute

    diff_c = Ref((0, 0), "F0") - Ref((0, 0), "F1")
    diff_e = Ref((0, 1), "F0") - Ref((0, 1), "F1")
    return MultiArraySpec(
        "FRAMEDIFF", grid, absolute(diff_c - diff_e)
    )


class TestSpec:
    def test_input_arrays_discovered(self):
        spec = rician_full()
        assert spec.input_arrays == ("F", "U")

    def test_per_array_windows(self):
        spec = rician_full()
        assert spec.window("U").n_points == 5
        assert spec.window("F").n_points == 1
        with pytest.raises(KeyError):
            spec.window("Z")

    def test_total_references(self):
        assert rician_full().total_references() == 6

    def test_iteration_domain_is_joint_interior(self):
        spec = rician_full((14, 18))
        assert spec.iteration_domain.lows == (1, 1)
        assert spec.iteration_domain.highs == (12, 16)

    def test_output_name_collision_rejected(self):
        with pytest.raises(ValueError):
            MultiArraySpec(
                "X", (8, 8), Ref((0, 0), "U"), output_array="U"
            )

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            MultiArraySpec(
                "X",
                (8, 8),
                Ref((0, 0), "A") + Ref((0, 0, 0), "B"),
            )

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            rician_full((2, 2))

    def test_str(self):
        assert "U:5pt" in str(rician_full())


class TestGolden:
    def test_hand_check(self):
        spec = rician_full((8, 9))
        grids = make_inputs(spec)
        out = run_golden_multi(spec, grids)
        i, j = 3, 4
        u, f = grids["U"], grids["F"]
        expected = 0.6 * u[i, j] + 0.08 * (
            u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1]
        ) + 0.08 * f[i, j]
        assert out[i - 1, j - 1] == pytest.approx(expected)

    def test_missing_grid_rejected(self):
        spec = rician_full((8, 9))
        with pytest.raises(ValueError):
            run_golden_multi(spec, {"U": np.zeros((8, 9))})

    def test_wrong_shape_rejected(self):
        spec = rician_full((8, 9))
        grids = make_inputs(spec)
        grids["F"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            run_golden_multi(spec, grids)


class TestSimulation:
    def test_rician_full_matches_golden(self):
        spec = rician_full((14, 18))
        grids = make_inputs(spec)
        result = MultiArraySimulator(spec, grids).run()
        assert np.allclose(
            result.output_values(), golden_multi_sequence(spec, grids)
        )
        assert result.stats.outputs_produced == (
            spec.iteration_domain.count()
        )

    def test_frame_difference_matches_golden(self):
        spec = frame_difference()
        grids = make_inputs(spec)
        result = MultiArraySimulator(spec, grids).run()
        assert np.allclose(
            result.output_values(), golden_multi_sequence(spec, grids)
        )

    def test_each_array_gets_its_own_chain(self):
        spec = rician_full((14, 18))
        grids = make_inputs(spec)
        systems = {
            a: build_memory_system(spec.analysis(a))
            for a in spec.input_arrays
        }
        assert systems["U"].num_banks == 4
        assert systems["F"].num_banks == 0
        result = MultiArraySimulator(
            spec, grids, systems=systems
        ).run()
        assert result.stats.outputs_produced > 0

    def test_streams_are_independent(self):
        spec = rician_full((14, 18))
        grids = make_inputs(spec)
        result = MultiArraySimulator(spec, grids).run()
        # Two chains, each streamed its own copy of the domain.
        assert len(result.stats.elements_streamed_per_segment) == 2

    def test_missing_grid_rejected(self):
        spec = rician_full((14, 18))
        grids = make_inputs(spec)
        del grids["F"]
        with pytest.raises(ValueError):
            MultiArraySimulator(spec, grids)

    def test_outputs_in_iteration_order(self):
        spec = rician_full((10, 12))
        grids = make_inputs(spec)
        result = MultiArraySimulator(spec, grids).run()
        iters = [i for i, _ in result.outputs]
        assert iters == sorted(iters)
