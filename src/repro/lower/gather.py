"""Lazy, chunked enumeration of gather domains.

The eager gather path (:class:`repro.lower.convert.CompiledKernel`)
materializes the full ``reads x points`` index table once per
fingerprint, which is exactly right below
:data:`~repro.lower.bufferize.GATHER_POINT_LIMIT` and exactly wrong
above it: the table stops fitting in cache and the per-process Python
point walk (``domain.iter_points``) stops being a one-off cost.

This module is the chunked alternative.  The domain's bounding box is
swept in row-major (ascending lexicographic) order in fixed-size
chunks of :data:`GATHER_CHUNK_POINTS` flat indices; each chunk is
unraveled to coordinates, membership-tested *vectorized* against the
polyhedron's ``A x <= b`` rows (or box bounds / union parts), and only
the surviving flat grid indices are kept.  Because the sweep order is
the lexicographic order of ``iter_points``, the surviving indices are
exactly the golden emission order — chunking changes where the work
happens, never a single output bit.

Zohouri et al.'s combined-blocking argument (PAPERS.md) is the design
driver: keep the working set a fixed-size block so the gather path
stays cache-resident instead of being refused outright.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..polyhedral.domain import BoxDomain, DomainUnion, IntegerPolyhedron

__all__ = [
    "GATHER_CHUNK_POINTS",
    "count_points",
    "gather_base",
    "iter_point_chunks",
    "membership_mask",
]

#: Bounding-box flat indices tested per sweep step.  At 2^14 points a
#: chunk's coordinate block plus one ``reads``-wide gather slab stays
#: well inside L2 for any realistic read count.
GATHER_CHUNK_POINTS = 1 << 14


def membership_mask(domain, pts: np.ndarray) -> np.ndarray:
    """Vectorized ``domain.contains`` over an ``(n, dim)`` int block."""
    if isinstance(domain, BoxDomain):
        lows = np.asarray(domain.lows, dtype=np.int64)
        highs = np.asarray(domain.highs, dtype=np.int64)
        return np.logical_and(
            (pts >= lows).all(axis=1), (pts <= highs).all(axis=1)
        )
    if isinstance(domain, DomainUnion):
        mask = np.zeros(pts.shape[0], dtype=bool)
        for part in domain.parts:
            mask |= membership_mask(part, pts)
        return mask
    if isinstance(domain, IntegerPolyhedron):
        rows = np.asarray(
            [coeffs for coeffs, _ in domain.constraints],
            dtype=np.int64,
        )
        bounds = np.asarray(
            [bound for _, bound in domain.constraints],
            dtype=np.int64,
        )
        return (pts @ rows.T <= bounds).all(axis=1)
    raise TypeError(f"cannot membership-test domain {domain!r}")


def iter_point_chunks(
    domain, chunk_points: int = GATHER_CHUNK_POINTS
) -> Iterator[np.ndarray]:
    """Yield ``(k, dim)`` int64 blocks of domain points, lex order.

    The concatenation of the yielded blocks is exactly
    ``list(domain.iter_points())`` — same points, same order — but no
    more than ``chunk_points`` bounding-box candidates are ever live
    at once.
    """
    lows, highs = domain.bounding_box()
    lows_v = np.asarray(lows, dtype=np.int64)
    extents = np.asarray(
        [hi - lo + 1 for lo, hi in zip(lows, highs)], dtype=np.int64
    )
    if (extents <= 0).any():
        return
    volume = int(np.prod(extents))
    for start in range(0, volume, chunk_points):
        stop = min(start + chunk_points, volume)
        flat = np.arange(start, stop, dtype=np.int64)
        pts = np.empty((flat.size, len(lows)), dtype=np.int64)
        rem = flat
        for j in range(len(lows) - 1, -1, -1):
            pts[:, j] = rem % extents[j] + lows_v[j]
            rem = rem // extents[j]
        mask = membership_mask(domain, pts)
        if mask.any():
            yield pts[mask]


def count_points(
    domain, chunk_points: int = GATHER_CHUNK_POINTS
) -> int:
    """``domain.count()`` without the Python point walk (and without
    its enumeration limit — the caller bounds the bounding box)."""
    return sum(
        int(chunk.shape[0])
        for chunk in iter_point_chunks(domain, chunk_points)
    )


def gather_base(
    domain,
    grid: Tuple[int, ...],
    reads,
    n_outputs: int,
    chunk_points: int = GATHER_CHUNK_POINTS,
) -> np.ndarray:
    """Flat grid indices of every domain point, OOB-checked per read.

    Returns an ``(n_outputs,)`` int64 array ``base`` such that read
    ``r``'s value for output ``p`` lives at flat grid index
    ``base[p] + r.flat`` — one output row's worth of indices, never
    the full ``reads x points`` table.  Raises
    :class:`~repro.lower.program.LoweringUnsupported` (reason
    ``out_of_bounds``) when any read leaves the grid over the domain,
    exactly like the eager path, and
    :class:`~repro.lower.program.LoweringError` when the enumeration
    disagrees with the program's claimed output count.
    """
    from .program import LoweringError, LoweringUnsupported

    grid_v = np.asarray(grid, dtype=np.int64)
    strides = np.ones(len(grid), dtype=np.int64)
    for j in range(len(grid) - 2, -1, -1):
        strides[j] = strides[j + 1] * grid[j + 1]
    pieces: List[np.ndarray] = []
    total = 0
    for pts in iter_point_chunks(domain, chunk_points):
        for read in reads:
            shifted = pts + np.asarray(read.offset, dtype=np.int64)
            if (shifted < 0).any() or (shifted >= grid_v).any():
                raise LoweringUnsupported(
                    "out_of_bounds",
                    f"read {read.array}{list(read.offset)} leaves "
                    "the grid over the gathered domain",
                )
        pieces.append(pts @ strides)
        total += pts.shape[0]
    if total != n_outputs:
        raise LoweringError(
            f"chunked gather enumeration yields {total} points but "
            f"the program claims {n_outputs}"
        )
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces)
