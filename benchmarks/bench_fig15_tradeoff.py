"""Fig 15 — bandwidth/memory trade-off for the 19-point SEGMENTATION
stencil: on-chip buffer size as off-chip accesses per cycle sweep from
1 to 18 (chain breaking at the largest remaining FIFO, Fig 14).

Paper shape: three phases — give up inter-plane reuse first (large
buffers), then inter-row reuse (medium), finally intra-row reuse
(tiny) — with a graceful, monotone degradation.
"""

import numpy as np

from conftest import emit

from repro.flow.report import fig15_report, format_table
from repro.microarch.memory_system import build_memory_system
from repro.microarch.tradeoff import with_offchip_streams
from repro.sim.engine import ChainSimulator
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import SEGMENTATION_3D

PLANE = 128 * 128
ROW = 128


def bench_fig15_curve(benchmark):
    """Benchmark the full 1..18 sweep at paper scale."""
    rows = benchmark(fig15_report, SEGMENTATION_3D)

    buffers = [r["onchip_buffer"] for r in rows]
    assert len(rows) == 18
    assert buffers == sorted(buffers, reverse=True)
    drops = [a - b for a, b in zip(buffers, buffers[1:])]
    # Three phases (the paper's reading of the curve).
    assert all(d > PLANE / 2 for d in drops[:2])
    assert all(ROW / 2 < d < PLANE / 2 for d in drops[2:8])
    assert all(d < ROW / 2 for d in drops[8:])

    emit(
        "Fig 15 — on-chip buffer vs off-chip accesses per cycle "
        "(SEGMENTATION, 19-point)",
        format_table(
            [
                {
                    "offchip_accesses": r["offchip_accesses"],
                    "onchip_buffer": r["onchip_buffer"],
                }
                for r in rows
            ]
        ),
    )


def bench_fig15_broken_chain_still_correct(benchmark):
    """Simulate the 3-stream configuration at reduced scale and verify
    functional correctness is preserved across chain breaking."""
    spec = SEGMENTATION_3D.with_grid((7, 8, 9))
    grid = make_input(spec)

    def run():
        system = with_offchip_streams(
            build_memory_system(spec.analysis()), 3
        )
        return ChainSimulator(spec, system, grid).run()

    result = benchmark(run)
    assert np.allclose(
        result.output_values(), golden_output_sequence(spec, grid)
    )
