"""Compiled execution backend: bufferize → convert → batched kernels.

The value-lowering pipeline that turns a compiled stencil plan into a
flat, backend-neutral :class:`~repro.lower.program.BufferProgram` and
then into a vectorized NumPy kernel executed once per request batch —
see the module docstrings of :mod:`repro.lower.program`,
:mod:`repro.lower.bufferize`, :mod:`repro.lower.convert`,
:mod:`repro.lower.engine` and :mod:`repro.lower.executor`.
"""

from .bufferize import GATHER_POINT_LIMIT, bufferize, bufferize_plan
from .convert import CompiledKernel, convert, kernel_from_plan
from .engine import CompiledEngine, LowerResult
from .executor import CompiledPlanExecutor
from .program import (
    BUFFER_PROGRAM_VERSION,
    BufferProgram,
    BufferRead,
    LoweringError,
    LoweringUnsupported,
    ProgramMismatchError,
    program_from_json,
    program_to_json,
    validate_program,
)

__all__ = [
    "BUFFER_PROGRAM_VERSION",
    "GATHER_POINT_LIMIT",
    "BufferProgram",
    "BufferRead",
    "CompiledEngine",
    "CompiledKernel",
    "CompiledPlanExecutor",
    "LowerResult",
    "LoweringError",
    "LoweringUnsupported",
    "ProgramMismatchError",
    "bufferize",
    "bufferize_plan",
    "convert",
    "kernel_from_plan",
    "program_from_json",
    "program_to_json",
    "validate_program",
]
