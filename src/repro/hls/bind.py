"""Functional-unit binding for shared-unit (II > 1) schedules.

At II = 1 the datapath is fully spatial and binding is the identity; at
larger IIs, operations scheduled in different modulo slots can share a
unit.  Left-edge binding assigns each operation the lowest-numbered unit
of its opcode that is free in its modulo slot, and verifies the resource
claim of the scheduler (never more units than ``unit_counts``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .ir import DataflowGraph
from .schedule import Schedule


@dataclass(frozen=True)
class Binding:
    """Operation-to-unit assignment."""

    assignments: Dict[int, Tuple[str, int]]  # node -> (opcode, unit idx)
    units_used: Dict[str, int]

    def unit_of(self, node_id: int) -> Tuple[str, int]:
        return self.assignments[node_id]


class BindingError(RuntimeError):
    """The schedule over-subscribes its own resource claim."""


def bind_units(graph: DataflowGraph, schedule: Schedule) -> Binding:
    """Left-edge binding of arithmetic operations to functional units."""
    ii = schedule.ii
    # opcode -> unit index -> set of occupied modulo slots
    occupancy: Dict[str, List[set]] = {}
    assignments: Dict[int, Tuple[str, int]] = {}
    used: Dict[str, int] = {}
    for op in graph.arithmetic_ops():
        slot = schedule.start_times[op.node_id] % ii
        units = occupancy.setdefault(op.opcode, [])
        placed = False
        for idx, slots in enumerate(units):
            if slot not in slots:
                slots.add(slot)
                assignments[op.node_id] = (op.opcode, idx)
                placed = True
                break
        if not placed:
            units.append({slot})
            idx = len(units) - 1
            assignments[op.node_id] = (op.opcode, idx)
        used[op.opcode] = max(
            used.get(op.opcode, 0), assignments[op.node_id][1] + 1
        )
    for opcode, count in used.items():
        claimed = schedule.unit_counts.get(opcode, 0)
        if count > claimed:
            raise BindingError(
                f"binding needs {count} {opcode!r} units but the "
                f"schedule claimed {claimed}"
            )
    return Binding(assignments=assignments, units_used=used)
