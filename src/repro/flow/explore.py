"""Capacity-driven design-space exploration.

Appendix 9.4 opens the trade-off space when "the maximum reuse distance
is so large that the buffer sizes exceed the on-chip memory capacity".
This explorer automates the decision: given a BRAM budget and an
off-chip bandwidth budget, it enumerates

* the pure non-uniform chain (1 access/cycle, minimum traffic),
* chain-broken variants (Fig 14: k accesses/cycle, k x traffic rate),
* tiled variants (1 access/cycle, halo traffic overhead),

costs each with the Virtex-7 model, filters by the budgets, and returns
the feasible set sorted by total off-chip traffic (the paper's primary
system-level cost), plus the Pareto frontier on the (BRAM, traffic)
plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..microarch.memory_system import build_memory_system
from ..microarch.tiling import plan_tiling
from ..microarch.tradeoff import tradeoff_curve, with_offchip_streams
from ..obs.tracing import span
from ..resources.estimate import estimate_memory_system
from ..stencil.spec import StencilSpec


@dataclass(frozen=True)
class DesignPoint:
    """One candidate organization of the reuse buffering."""

    technique: str  # "chain", "break", "tile"
    parameter: int  # streams for break, strip width for tile
    onchip_buffer: int  # elements
    bram_18k: int
    offchip_words_per_pass: int  # total traffic for one grid pass
    offchip_accesses_per_cycle: int

    @property
    def label(self) -> str:
        if self.technique == "chain":
            return "chain"
        if self.technique == "break":
            return f"break x{self.parameter}"
        return f"tile w{self.parameter}"

    def as_row(self) -> dict:
        return {
            "design": self.label,
            "onchip_buffer": self.onchip_buffer,
            "bram_18k": self.bram_18k,
            "offchip_words": self.offchip_words_per_pass,
            "accesses_per_cycle": self.offchip_accesses_per_cycle,
        }


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of one exploration run."""

    candidates: Tuple[DesignPoint, ...]
    feasible: Tuple[DesignPoint, ...]
    best: Optional[DesignPoint]
    pareto: Tuple[DesignPoint, ...]


def enumerate_candidates(
    spec: StencilSpec,
    strip_widths: Sequence[int] = (32, 64, 128, 256, 512),
) -> List[DesignPoint]:
    """All candidate organizations for one 2D/3D stencil spec."""
    system = build_memory_system(spec.analysis())
    stream_words = system.stream_domain.count()
    points: List[DesignPoint] = []

    # Pure chain + chain-broken variants.
    for p in tradeoff_curve(system):
        streams = p.offchip_accesses_per_cycle
        if streams == 1:
            variant = system
            technique = "chain"
        else:
            variant = with_offchip_streams(system, streams)
            technique = "break"
        with span(
            "explore.candidate", technique=technique, parameter=streams
        ):
            usage = estimate_memory_system(variant)
            points.append(
                DesignPoint(
                    technique=technique,
                    parameter=streams,
                    onchip_buffer=p.total_buffer_size,
                    bram_18k=usage.bram_18k,
                    offchip_words_per_pass=streams * stream_words,
                    offchip_accesses_per_cycle=streams,
                )
            )

    # Tiled variants (strips along the innermost axis; any dim).
    axis = spec.dim - 1
    max_width = (
        spec.iteration_domain.highs[axis]
        - spec.iteration_domain.lows[axis]
        + 1
    )
    for width in strip_widths:
        if width >= max_width:
            continue
        with span(
            "explore.candidate", technique="tile", parameter=width
        ):
            plan = plan_tiling(spec, width)
            widest = max(s.in_width for s in plan.strips)
            strip = spec.with_grid(spec.grid[:axis] + (widest,))
            usage = estimate_memory_system(
                build_memory_system(strip.analysis())
            )
            points.append(
                DesignPoint(
                    technique="tile",
                    parameter=width,
                    onchip_buffer=plan.buffer_per_strip,
                    bram_18k=usage.bram_18k,
                    offchip_words_per_pass=plan.total_offchip_words,
                    offchip_accesses_per_cycle=1,
                )
            )
    return points


def pareto_frontier(
    points: Sequence[DesignPoint],
) -> List[DesignPoint]:
    """Non-dominated points on the (bram, traffic) plane."""
    frontier = []
    for p in points:
        dominated = any(
            (q.bram_18k <= p.bram_18k)
            and (
                q.offchip_words_per_pass <= p.offchip_words_per_pass
            )
            and (
                (q.bram_18k, q.offchip_words_per_pass)
                != (p.bram_18k, p.offchip_words_per_pass)
            )
            for q in points
        )
        if not dominated:
            frontier.append(p)
    frontier.sort(key=lambda p: (p.bram_18k, p.offchip_words_per_pass))
    return frontier


def explore(
    spec: StencilSpec,
    bram_budget: int,
    bandwidth_budget: int = 1,
    strip_widths: Sequence[int] = (32, 64, 128, 256, 512),
) -> ExplorationResult:
    """Pick the lowest-traffic organization within the budgets.

    ``bram_budget`` is in 18 Kb blocks; ``bandwidth_budget`` is the
    sustainable off-chip accesses per cycle.
    """
    if bram_budget < 0 or bandwidth_budget < 1:
        raise ValueError("budgets must be non-negative / positive")
    with span(
        "flow.explore",
        benchmark=spec.name,
        bram_budget=bram_budget,
        bandwidth_budget=bandwidth_budget,
    ):
        candidates = enumerate_candidates(spec, strip_widths)
        feasible = [
            p
            for p in candidates
            if p.bram_18k <= bram_budget
            and p.offchip_accesses_per_cycle <= bandwidth_budget
        ]
        feasible.sort(
            key=lambda p: (p.offchip_words_per_pass, p.bram_18k)
        )
        return ExplorationResult(
            candidates=tuple(candidates),
            feasible=tuple(feasible),
            best=feasible[0] if feasible else None,
            pareto=tuple(pareto_frontier(candidates)),
        )
