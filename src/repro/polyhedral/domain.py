"""Integer polyhedral domains (Definitions 1, 5, 6 of the paper).

The paper models iteration domains and data domains as sets of integer
points ``{x in Z^m : A x <= b}``.  Grid shapes can be arbitrary polyhedra
(rectangles, triangles, skewed parallelograms, ...), so this module
implements a small but exact integer-polyhedron library:

* :class:`IntegerPolyhedron` — general ``A x <= b`` sets with membership
  tests, exact bounding boxes via Fourier–Motzkin elimination, and
  lexicographic-order point enumeration.
* :class:`BoxDomain` — axis-aligned boxes with O(1) counting and
  lexicographic ranking (the common case for stencil grids; used as the
  fast path throughout the simulator).
* :class:`DomainUnion` — finite unions, used for input data domains
  (Definition 6: the union of all array-reference data domains).

Enumeration is always in lexicographic order, outermost dimension most
significant, matching Property 1 (lexicographic access pattern).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .lexorder import Vector, as_vector, lex_le

# A linear constraint sum_j coeffs[j] * x[j] <= bound.
Constraint = Tuple[Tuple[int, ...], int]

#: Safety cap for exact whole-domain enumeration of general polyhedra.
ENUMERATION_LIMIT = 5_000_000


class EmptyDomainError(ValueError):
    """Raised when an operation requires a non-empty domain."""


def _eliminate_variable(
    constraints: List[Constraint], var: int
) -> List[Constraint]:
    """One step of Fourier–Motzkin elimination (rational relaxation).

    Removes variable ``var`` from the constraint system.  Combining a
    lower-bound row with an upper-bound row uses integer cross
    multiplication, so coefficients stay integral.
    """
    zero_rows: List[Constraint] = []
    pos_rows: List[Constraint] = []
    neg_rows: List[Constraint] = []
    for coeffs, bound in constraints:
        c = coeffs[var]
        if c == 0:
            zero_rows.append((coeffs, bound))
        elif c > 0:
            pos_rows.append((coeffs, bound))
        else:
            neg_rows.append((coeffs, bound))
    result = list(zero_rows)
    for (pc, pb) in pos_rows:
        for (nc, nb) in neg_rows:
            a = pc[var]
            b = -nc[var]
            combined = tuple(b * p + a * q for p, q in zip(pc, nc))
            result.append((combined, b * pb + a * nb))
    return result


def _dedup_constraints(constraints: List[Constraint]) -> List[Constraint]:
    """Drop duplicate rows and rows scaled by a positive common factor."""
    seen = set()
    out: List[Constraint] = []
    for coeffs, bound in constraints:
        g = 0
        for c in coeffs:
            g = math.gcd(g, abs(c))
        g = math.gcd(g, abs(bound))
        if g > 1:
            coeffs = tuple(c // g for c in coeffs)
            bound = bound // g if bound % g == 0 else bound // g
        key = (coeffs, bound)
        if key not in seen:
            seen.add(key)
            out.append((coeffs, bound))
    return out


class IntegerPolyhedron:
    """The set of integer points ``{x in Z^m : A x <= b}``.

    Parameters
    ----------
    coefficients:
        Iterable of coefficient rows, one per constraint.
    bounds:
        Right-hand side, one value per constraint.

    The polyhedron must be bounded for counting/enumeration to be usable;
    unbounded directions raise :class:`ValueError` at those call sites.
    """

    def __init__(
        self,
        coefficients: Iterable[Sequence[int]],
        bounds: Iterable[int],
    ) -> None:
        rows = [tuple(int(c) for c in row) for row in coefficients]
        rhs = [int(b) for b in bounds]
        if len(rows) != len(rhs):
            raise ValueError(
                f"{len(rows)} coefficient rows but {len(rhs)} bounds"
            )
        if rows:
            dim = len(rows[0])
            for row in rows:
                if len(row) != dim:
                    raise ValueError("inconsistent constraint dimensions")
        else:
            raise ValueError(
                "a polyhedron needs at least one constraint to fix its "
                "dimension; use BoxDomain for simple shapes"
            )
        self._constraints: List[Constraint] = _dedup_constraints(
            list(zip(rows, rhs))
        )
        self._dim = len(rows[0])
        self._count_cache: Optional[int] = None
        self._bbox_cache: Optional[Tuple[Vector, Vector]] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions ``m``."""
        return self._dim

    @property
    def constraints(self) -> List[Constraint]:
        """The (deduplicated) constraint rows ``(coeffs, bound)``."""
        return list(self._constraints)

    def contains(self, point: Sequence[int]) -> bool:
        """True iff ``point`` satisfies every constraint."""
        p = as_vector(point)
        if len(p) != self._dim:
            return False
        for coeffs, bound in self._constraints:
            if sum(c * x for c, x in zip(coeffs, p)) > bound:
                return False
        return True

    def __contains__(self, point: Sequence[int]) -> bool:
        return self.contains(point)

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _variable_bounds(
        self, constraints: List[Constraint], var: int
    ) -> Tuple[Optional[int], Optional[int]]:
        """Integer (lo, hi) bounds of one variable after eliminating all
        later variables.  ``None`` means unbounded in that direction."""
        remaining = constraints
        for later in range(self._dim - 1, var, -1):
            remaining = _eliminate_variable(remaining, later)
            if len(remaining) > 4000:
                remaining = _dedup_constraints(remaining)
        lo: Optional[int] = None
        hi: Optional[int] = None
        feasible = True
        for coeffs, bound in remaining:
            c = coeffs[var]
            if c > 0:
                ub = math.floor(bound / c)
                hi = ub if hi is None else min(hi, ub)
            elif c < 0:
                lb = math.ceil(bound / c)
                lo = lb if lo is None else max(lo, lb)
            elif bound < 0:
                feasible = False
        if not feasible:
            return (1, 0)  # empty marker: lo > hi
        return (lo, hi)

    def bounding_box(self) -> Tuple[Vector, Vector]:
        """Exact rational bounding box, rounded inward to integers.

        Returns ``(lows, highs)``.  Raises :class:`ValueError` if any
        dimension is unbounded and :class:`EmptyDomainError` if the
        (relaxed) polyhedron is empty.
        """
        if self._bbox_cache is not None:
            return self._bbox_cache
        lows = []
        highs = []
        for var in range(self._dim):
            # Eliminate all variables except `var`.
            remaining = list(self._constraints)
            for other in range(self._dim - 1, -1, -1):
                if other != var:
                    remaining = _eliminate_variable(remaining, other)
                    remaining = _dedup_constraints(remaining)
            lo: Optional[int] = None
            hi: Optional[int] = None
            for coeffs, bound in remaining:
                c = coeffs[var]
                if c > 0:
                    ub = math.floor(bound / c)
                    hi = ub if hi is None else min(hi, ub)
                elif c < 0:
                    lb = math.ceil(bound / c)
                    lo = lb if lo is None else max(lo, lb)
                elif bound < 0:
                    raise EmptyDomainError("polyhedron is empty")
            if lo is None or hi is None:
                raise ValueError(
                    f"polyhedron is unbounded in dimension {var}"
                )
            if lo > hi:
                raise EmptyDomainError("polyhedron is empty")
            lows.append(lo)
            highs.append(hi)
        self._bbox_cache = (tuple(lows), tuple(highs))
        return self._bbox_cache

    # ------------------------------------------------------------------
    # Enumeration (lexicographic order)
    # ------------------------------------------------------------------
    def _substitute(
        self, constraints: List[Constraint], var: int, value: int
    ) -> List[Constraint]:
        """Fix ``x[var] = value``, folding it into the bounds."""
        out: List[Constraint] = []
        for coeffs, bound in constraints:
            c = coeffs[var]
            new_coeffs = coeffs[:var] + (0,) + coeffs[var + 1:]
            out.append((new_coeffs, bound - c * value))
        return out

    def iter_points(self) -> Iterator[Vector]:
        """Yield all integer points in ascending lexicographic order."""
        try:
            self.bounding_box()
        except EmptyDomainError:
            return
        yield from self._iter_rec(list(self._constraints), 0, ())

    def _iter_rec(
        self, constraints: List[Constraint], var: int, prefix: Vector
    ) -> Iterator[Vector]:
        lo, hi = self._variable_bounds(constraints, var)
        if lo is None or hi is None:
            raise ValueError("cannot enumerate an unbounded polyhedron")
        if var == self._dim - 1:
            for v in range(lo, hi + 1):
                point = prefix + (v,)
                if self.contains(point):
                    yield point
            return
        for v in range(lo, hi + 1):
            fixed = self._substitute(constraints, var, v)
            yield from self._iter_rec(fixed, var + 1, prefix + (v,))

    def count(self) -> int:
        """Exact number of integer points (cached)."""
        if self._count_cache is None:
            total = 0
            for _ in self.iter_points():
                total += 1
                if total > ENUMERATION_LIMIT:
                    raise ValueError(
                        "domain too large for exact enumeration; "
                        f"limit is {ENUMERATION_LIMIT}"
                    )
            self._count_cache = total
        return self._count_cache

    def is_empty(self) -> bool:
        """True iff the domain contains no integer point."""
        for _ in self.iter_points():
            return False
        return True

    def lex_first(self) -> Vector:
        """Lexicographically smallest point."""
        for p in self.iter_points():
            return p
        raise EmptyDomainError("lex_first of an empty domain")

    def lex_last(self) -> Vector:
        """Lexicographically greatest point."""
        last = None
        for p in self.iter_points():
            last = p
        if last is None:
            raise EmptyDomainError("lex_last of an empty domain")
        return last

    def lex_rank(self, point: Sequence[int]) -> int:
        """Number of domain points ``g`` with ``g <=_l point``.

        ``point`` itself need not belong to the domain.
        """
        p = as_vector(point)
        total = 0
        for g in self.iter_points():
            if lex_le(g, p):
                total += 1
            else:
                break
        return total

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def translate(self, offset: Sequence[int]) -> "IntegerPolyhedron":
        """The translated set ``{x + offset : x in self}``.

        ``A x <= b`` becomes ``A (y - f) <= b``, i.e. ``A y <= b + A f``.
        """
        f = as_vector(offset)
        if len(f) != self._dim:
            raise ValueError("offset dimension mismatch")
        coeffs = [c for c, _ in self._constraints]
        bounds = [
            b + sum(c * x for c, x in zip(row, f))
            for row, b in self._constraints
        ]
        return IntegerPolyhedron(coeffs, bounds)

    def intersect(self, other: "IntegerPolyhedron") -> "IntegerPolyhedron":
        """Intersection of two polyhedra of equal dimension."""
        if other.dim != self._dim:
            raise ValueError("dimension mismatch in intersection")
        coeffs = [c for c, _ in self._constraints]
        bounds = [b for _, b in self._constraints]
        for c, b in other.constraints:
            coeffs.append(c)
            bounds.append(b)
        return IntegerPolyhedron(coeffs, bounds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntegerPolyhedron):
            return NotImplemented
        if self.dim != other.dim:
            return False
        mine = set(self.iter_points())
        theirs = set(other.iter_points())
        return mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        return (
            f"IntegerPolyhedron(dim={self._dim}, "
            f"constraints={len(self._constraints)})"
        )


class BoxDomain(IntegerPolyhedron):
    """Axis-aligned box ``lows[j] <= x[j] <= highs[j]`` with fast paths.

    Boxes are the dominant domain shape in stencil computation (the paper's
    DENOISE example streams ``A[0..767][0..1023]``), so counting, ranking
    and enumeration get closed-form / vectorizable implementations.
    """

    def __init__(self, lows: Sequence[int], highs: Sequence[int]) -> None:
        lows_v = as_vector(lows)
        highs_v = as_vector(highs)
        if len(lows_v) != len(highs_v):
            raise ValueError("lows and highs must have equal length")
        if not lows_v:
            raise ValueError("box must have at least one dimension")
        dim = len(lows_v)
        coeffs: List[Tuple[int, ...]] = []
        bounds: List[int] = []
        for j in range(dim):
            unit = tuple(1 if k == j else 0 for k in range(dim))
            neg = tuple(-1 if k == j else 0 for k in range(dim))
            coeffs.append(unit)
            bounds.append(highs_v[j])
            coeffs.append(neg)
            bounds.append(-lows_v[j])
        super().__init__(coeffs, bounds)
        self.lows = lows_v
        self.highs = highs_v

    @property
    def shape(self) -> Vector:
        """Extent per dimension (0 for an empty box)."""
        return tuple(
            max(0, h - l + 1) for l, h in zip(self.lows, self.highs)
        )

    def contains(self, point: Sequence[int]) -> bool:
        p = tuple(point)
        if len(p) != self.dim:
            return False
        return all(
            l <= x <= h for l, x, h in zip(self.lows, p, self.highs)
        )

    def count(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def is_empty(self) -> bool:
        return self.count() == 0

    def iter_points(self) -> Iterator[Vector]:
        if self.is_empty():
            return iter(())
        ranges = [
            range(l, h + 1) for l, h in zip(self.lows, self.highs)
        ]
        return iter(itertools.product(*ranges))

    def lex_first(self) -> Vector:
        if self.is_empty():
            raise EmptyDomainError("lex_first of an empty box")
        return self.lows

    def lex_last(self) -> Vector:
        if self.is_empty():
            raise EmptyDomainError("lex_last of an empty box")
        return self.highs

    def lex_rank(self, point: Sequence[int]) -> int:
        """Closed-form count of box points ``<=_l point``.

        Works in O(m): mixed-radix position of the clamped point.
        """
        p = as_vector(point)
        if len(p) != self.dim:
            raise ValueError("point dimension mismatch")
        if self.is_empty():
            return 0
        # Suffix products of extents.
        extents = self.shape
        suffix = [1] * (self.dim + 1)
        for j in range(self.dim - 1, -1, -1):
            suffix[j] = suffix[j + 1] * extents[j]
        total = 0
        for j in range(self.dim):
            if p[j] < self.lows[j]:
                return total
            if p[j] > self.highs[j]:
                return total + (self.highs[j] - self.lows[j] + 1) * (
                    suffix[j + 1]
                )
            total += (p[j] - self.lows[j]) * suffix[j + 1]
        # point is inside the box; include it.
        return total + 1

    def translate(self, offset: Sequence[int]) -> "BoxDomain":
        f = as_vector(offset)
        if len(f) != self.dim:
            raise ValueError("offset dimension mismatch")
        return BoxDomain(
            tuple(l + d for l, d in zip(self.lows, f)),
            tuple(h + d for h, d in zip(self.highs, f)),
        )

    def __repr__(self) -> str:
        return f"BoxDomain(lows={self.lows}, highs={self.highs})"


class DomainUnion:
    """Finite union of domains (Definition 6: input data domains).

    The paper notes that input data domains like DENOISE's are "almost" a
    box (a box minus four corners) and streams the bounding box instead;
    :meth:`hull_box` provides that pragmatic approximation while
    :meth:`count` / :meth:`iter_points` stay exact.
    """

    def __init__(self, parts: Sequence[IntegerPolyhedron]) -> None:
        if not parts:
            raise ValueError("union of zero domains")
        dim = parts[0].dim
        for p in parts:
            if p.dim != dim:
                raise ValueError("union parts must share dimension")
        self.parts = list(parts)
        self._dim = dim

    @property
    def dim(self) -> int:
        return self._dim

    def contains(self, point: Sequence[int]) -> bool:
        return any(p.contains(point) for p in self.parts)

    def __contains__(self, point: Sequence[int]) -> bool:
        return self.contains(point)

    def hull_box(self) -> BoxDomain:
        """Bounding box of the union (the streaming domain of Fig 7)."""
        lows = None
        highs = None
        for p in self.parts:
            lo, hi = p.bounding_box()
            if lows is None:
                lows, highs = list(lo), list(hi)
            else:
                lows = [min(a, b) for a, b in zip(lows, lo)]
                highs = [max(a, b) for a, b in zip(highs, hi)]
        assert lows is not None and highs is not None
        return BoxDomain(lows, highs)

    def bounding_box(self) -> Tuple[Vector, Vector]:
        """Bounding box of the union (``(lows, highs)``)."""
        hull = self.hull_box()
        return hull.lows, hull.highs

    def iter_points(self) -> Iterator[Vector]:
        """Exact union enumeration in lexicographic order."""
        for point in self.hull_box().iter_points():
            if self.contains(point):
                yield point

    def count(self) -> int:
        """Exact number of points in the union."""
        total = 0
        for _ in self.iter_points():
            total += 1
            if total > ENUMERATION_LIMIT:
                raise ValueError("union too large for exact enumeration")
        return total

    def lex_rank(self, point: Sequence[int]) -> int:
        """Number of union points ``g`` with ``g <=_l point``."""
        p = as_vector(point)
        total = 0
        for g in self.iter_points():
            if lex_le(g, p):
                total += 1
            else:
                break
        return total

    def __repr__(self) -> str:
        return f"DomainUnion({len(self.parts)} parts, dim={self._dim})"


def domain_from_extents(*extents: int) -> BoxDomain:
    """Convenience constructor: a box ``[0, e_j - 1]`` per dimension.

    ``domain_from_extents(768, 1024)`` is the DENOISE iteration grid.
    """
    if not extents:
        raise ValueError("at least one extent required")
    for e in extents:
        if e <= 0:
            raise ValueError(f"extents must be positive, got {e}")
    return BoxDomain([0] * len(extents), [e - 1 for e in extents])


# ----------------------------------------------------------------------
# JSON serialization (used by StencilSpec.to_json and the service layer)
# ----------------------------------------------------------------------

def domain_to_json(domain) -> dict:
    """A JSON-safe description of any domain kind.

    Boxes keep their ``lows``/``highs`` form (the round trip preserves
    the fast paths); general polyhedra serialize their constraint rows;
    unions serialize each part.
    """
    if isinstance(domain, BoxDomain):
        return {
            "kind": "box",
            "lows": list(domain.lows),
            "highs": list(domain.highs),
        }
    if isinstance(domain, IntegerPolyhedron):
        return {
            "kind": "polyhedron",
            "coefficients": [
                list(coeffs) for coeffs, _ in domain.constraints
            ],
            "bounds": [bound for _, bound in domain.constraints],
        }
    if isinstance(domain, DomainUnion):
        return {
            "kind": "union",
            "parts": [domain_to_json(p) for p in domain.parts],
        }
    raise TypeError(f"cannot serialize domain {domain!r}")


def domain_from_json(data: dict):
    """Inverse of :func:`domain_to_json`."""
    kind = data.get("kind")
    if kind == "box":
        return BoxDomain(data["lows"], data["highs"])
    if kind == "polyhedron":
        return IntegerPolyhedron(data["coefficients"], data["bounds"])
    if kind == "union":
        return DomainUnion(
            [domain_from_json(p) for p in data["parts"]]
        )
    raise ValueError(f"unknown domain kind {kind!r}")
