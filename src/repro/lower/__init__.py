"""Compiled execution backend: bufferize → convert → batched kernels.

The value-lowering pipeline that turns a compiled stencil plan into a
flat, backend-neutral :class:`~repro.lower.program.BufferProgram` and
then into a vectorized NumPy kernel executed once per request batch —
see the module docstrings of :mod:`repro.lower.program`,
:mod:`repro.lower.bufferize`, :mod:`repro.lower.convert`,
:mod:`repro.lower.engine` and :mod:`repro.lower.executor`.
"""

from .bufferize import (
    GATHER_HARD_LIMIT,
    GATHER_POINT_LIMIT,
    bufferize,
    bufferize_plan,
    stream_parts,
)
from .convert import (
    CompiledKernel,
    ConverterUnavailable,
    convert,
    converter_names,
    get_converter,
    kernel_from_plan,
    register_converter,
)
from .engine import CompiledEngine, LowerResult, LoweringConfig
from .executor import CompiledPlanExecutor
from .gather import GATHER_CHUNK_POINTS, iter_point_chunks
from .program import (
    BUFFER_PROGRAM_VERSION,
    BufferProgram,
    BufferRead,
    LoweringError,
    LoweringUnsupported,
    ProgramMismatchError,
    ProgramPart,
    program_from_json,
    program_to_json,
    validate_program,
)

__all__ = [
    "BUFFER_PROGRAM_VERSION",
    "GATHER_CHUNK_POINTS",
    "GATHER_HARD_LIMIT",
    "GATHER_POINT_LIMIT",
    "BufferProgram",
    "BufferRead",
    "CompiledEngine",
    "CompiledKernel",
    "CompiledPlanExecutor",
    "ConverterUnavailable",
    "LowerResult",
    "LoweringConfig",
    "LoweringError",
    "LoweringUnsupported",
    "ProgramMismatchError",
    "ProgramPart",
    "bufferize",
    "bufferize_plan",
    "convert",
    "converter_names",
    "get_converter",
    "iter_point_chunks",
    "kernel_from_plan",
    "program_from_json",
    "program_to_json",
    "register_converter",
    "stream_parts",
    "validate_program",
]
