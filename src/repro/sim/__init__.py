"""Cycle-level simulation of both microarchitectures: the paper's
distributed streaming chain and the centralized uniform-banked baseline."""

from .baseline import (
    BaselineResult,
    BaselineStats,
    UniformBankedSimulator,
    run_forced_bank_count,
    run_uniform_plan,
)
from .engine import (
    ChainSimulator,
    DeadlockError,
    SimulationResult,
    SimulationStats,
)
from .modulo_chain import (
    ModuloChainResult,
    ModuloChainSimulator,
    ModuloChainStats,
)
from .multi import MultiArraySimulator
from .offchip import DramTimingModel, OffchipBus, ThrottledDataStream
from .modules import Element, KernelOutput, SimFifo, SimFilter, SimKernel
from .stream import DataStream
from .trace import TraceRecorder, TraceRow

__all__ = [
    "BaselineResult",
    "BaselineStats",
    "ChainSimulator",
    "DataStream",
    "DeadlockError",
    "DramTimingModel",
    "Element",
    "KernelOutput",
    "ModuloChainResult",
    "ModuloChainSimulator",
    "ModuloChainStats",
    "MultiArraySimulator",
    "OffchipBus",
    "SimFifo",
    "SimFilter",
    "SimKernel",
    "SimulationResult",
    "SimulationStats",
    "ThrottledDataStream",
    "TraceRecorder",
    "TraceRow",
    "UniformBankedSimulator",
    "run_forced_bank_count",
    "run_uniform_plan",
]
