"""Design-space exploration for a custom stencil.

Shows the library as a downstream user would drive it: define your own
stencil window and grid, then compare the paper's non-uniform chain
against both uniform baselines ([5] linear cyclic, [8] padded GMP) in
banks, storage, modelled FPGA resources and timing — and watch how the
uniform schemes' bank counts wobble with the grid's row size (Fig 5)
while the non-uniform chain does not.

Run:  python examples/design_space_exploration.py
"""

from repro import build_memory_system, plan_cyclic, plan_gmp, plan_nonuniform
from repro.flow.report import format_table
from repro.partitioning.cyclic import bank_count_vs_row_size
from repro.resources.estimate import (
    estimate_memory_system,
    estimate_uniform_memory_system,
)
from repro.resources.timing import (
    estimate_timing_baseline,
    estimate_timing_ours,
)
from repro.stencil.expr import Ref
from repro.stencil.spec import StencilSpec, StencilWindow


def make_custom_stencil() -> StencilSpec:
    """An anisotropic 7-point window: wide horizontally (e.g. motion
    estimation along scanlines), on a 480x640 frame."""
    window = StencilWindow.from_offsets(
        [(0, -3), (0, -1), (0, 0), (0, 1), (0, 3), (-1, 0), (1, 0)]
    )
    expr = (
        0.4 * Ref((0, 0))
        + 0.15 * (Ref((0, -1)) + Ref((0, 1)))
        + 0.1 * (Ref((0, -3)) + Ref((0, 3)))
        + 0.05 * (Ref((-1, 0)) + Ref((1, 0)))
    )
    return StencilSpec(
        "MOTION7", (480, 640), window, expression=expr
    )


def main() -> None:
    spec = make_custom_stencil()
    analysis = spec.analysis()
    print(spec)
    print(f"window offsets (filter order): {analysis.offsets()}")
    print()

    ours = plan_nonuniform(analysis)
    cyclic = plan_cyclic(analysis)
    gmp = plan_gmp(analysis)
    system = build_memory_system(analysis)

    rows = []
    for label, plan in [
        ("ours (non-uniform)", ours),
        ("[5] linear cyclic", cyclic),
        ("[8] padded GMP", gmp),
    ]:
        rows.append(
            {
                "scheme": label,
                "banks": plan.num_banks,
                "total_size": plan.total_size,
            }
        )
    print(format_table(rows))

    print()
    u_ours = estimate_memory_system(system)
    u_base = estimate_uniform_memory_system(gmp)
    t_ours = estimate_timing_ours(system)
    t_base = estimate_timing_baseline(gmp)
    print("modelled memory-system resources (XC7VX485T):")
    print(
        f"  ours: {u_ours.bram_18k} BRAM18, {u_ours.slices} slices, "
        f"{u_ours.dsp} DSP, CP {t_ours.critical_path_ns:.2f} ns"
    )
    print(
        f"  GMP : {u_base.bram_18k} BRAM18, {u_base.slices} slices, "
        f"{u_base.dsp} DSP, CP {t_base.critical_path_ns:.2f} ns"
    )

    print()
    print("Fig 5 behaviour — uniform banks vs frame width "
          "(window fixed):")
    sweep = bank_count_vs_row_size(spec.window, range(636, 646))
    for width, banks in sweep:
        marker = "#" * banks
        print(f"  width {width}: [5] needs {banks:2d} banks  {marker}")
    print(
        f"  ours at every width: {ours.num_banks} banks "
        "(grid-shape independent)"
    )


if __name__ == "__main__":
    main()
