"""Cycle-level simulation of multi-array accelerators (Fig 3).

One independent splitter/FIFO/filter chain per input array, all feeding
a single computation kernel that consumes every data port of every
array in one cycle.  The chains share nothing (the paper: "there are no
reuse opportunities among different data arrays"), so each has its own
off-chip stream; the kernel synchronizes them implicitly through
backpressure, exactly as within a single chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..microarch.memory_system import MemorySystem, build_memory_system
from ..stencil.multi import MultiArraySpec
from .engine import (
    DeadlockError,
    SimulationResult,
    SimulationStats,
    _SegmentRuntime,
)
from .modules import SimFifo, SimFilter, SimKernel
from .stream import DataStream
from .trace import TraceRecorder


class MultiArraySimulator:
    """Executes one chain per input array plus the shared kernel."""

    def __init__(
        self,
        spec: MultiArraySpec,
        grids: Dict[str, np.ndarray],
        systems: Optional[Dict[str, MemorySystem]] = None,
        kernel_latency: int = 4,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if systems is None:
            systems = {
                array: build_memory_system(spec.analysis(array))
                for array in spec.input_arrays
            }
        missing = set(spec.input_arrays) - set(systems)
        if missing:
            raise ValueError(f"missing memory systems: {sorted(missing)}")
        missing = set(spec.input_arrays) - set(grids)
        if missing:
            raise ValueError(f"missing input grids: {sorted(missing)}")
        self.spec = spec
        self.systems = systems
        self.trace = trace
        self._filters: List[SimFilter] = []
        self._chains: List[Tuple[str, List[_SegmentRuntime], List[int]]]
        self._chains = []
        references = []
        for array in spec.input_arrays:
            system = systems[array]
            grid = grids[array]
            if tuple(grid.shape) != tuple(spec.grid):
                raise ValueError(
                    f"grid for {array!r} has shape {grid.shape}, "
                    f"expected {spec.grid}"
                )
            base = len(self._filters)
            filter_ids = []
            for f in system.filters:
                sim_filter = SimFilter(
                    filter_id=base + f.filter_id,
                    reference=f.reference,
                    output_domain=f.output_domain,
                )
                self._filters.append(sim_filter)
                references.append(f.reference)
                filter_ids.append(sim_filter.filter_id)
            segments = []
            for seg in system.segments:
                fifos = [
                    SimFifo(fifo_id=f.fifo_id, capacity=f.capacity)
                    for f in seg.fifos
                ]
                segments.append(
                    _SegmentRuntime(
                        first=base + seg.first_filter,
                        last=base + seg.last_filter,
                        fifos=fifos,
                        stream=DataStream(system.stream_domain, grid),
                    )
                )
            self._chains.append((array, segments, filter_ids))
        self._kernel = SimKernel(
            references=references,
            expression=spec.expression,
            latency=kernel_latency,
        )
        self._expected = spec.iteration_domain.count()
        self.cycle = 0

    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None) -> SimulationResult:
        if max_cycles is None:
            longest = max(
                sys.stream_domain.count() for sys in self.systems.values()
            )
            buffering = sum(
                sys.total_buffer_size for sys in self.systems.values()
            )
            max_cycles = 4 * (
                longest + self._expected + buffering + 64
            )
        while self._kernel.consumed_iterations < self._expected:
            self.cycle += 1
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"multi-array simulation exceeded {max_cycles} "
                    "cycles"
                )
            if not self._step():
                raise DeadlockError(
                    f"multi-array deadlock at cycle {self.cycle}: "
                    f"{self._kernel.consumed_iterations}/"
                    f"{self._expected} outputs"
                )
        return self._result()

    def _step(self) -> bool:
        progress = False
        accepted: Dict[int, bool] = {}
        if self._kernel.try_fire(self._filters, self.cycle):
            progress = True
        for _, segments, _ in self._chains:
            for seg in segments:
                for k in range(seg.last, seg.first - 1, -1):
                    flt = self._filters[k]
                    if not flt.ready:
                        accepted[k] = False
                        continue
                    upstream = seg.upstream_of(k)
                    if upstream is None:
                        accepted[k] = False
                        continue
                    fifo_out = seg.fifo_after(k)
                    if fifo_out is not None and fifo_out.full:
                        accepted[k] = False
                        continue
                    element = seg.pop_upstream(k)
                    if fifo_out is not None:
                        fifo_out.push(element)
                    flt.accept(element)
                    accepted[k] = True
                    progress = True
                seg.stream.tick()
        for k, flt in enumerate(self._filters):
            if not accepted.get(k, False):
                flt.mark_no_input()
        if self.trace is not None:
            self.trace.record(
                cycle=self.cycle,
                stream_label=None,
                filter_statuses=[f.status for f in self._filters],
                fifo_occupancy={
                    f.fifo_id: len(f)
                    for _, segments, _ in self._chains
                    for seg in segments
                    for f in seg.fifos
                },
            )
        return progress

    def _result(self) -> SimulationResult:
        outputs = [(o.iteration, o.value) for o in self._kernel.outputs]
        issue = [o.issue_cycle for o in self._kernel.outputs]
        gaps = [b - a for a, b in zip(issue, issue[1:])]
        stats = SimulationStats(
            total_cycles=self.cycle,
            outputs_produced=len(outputs),
            first_output_cycle=issue[0] if issue else None,
            steady_state_ii=(
                sum(gaps) / len(gaps) if gaps else 1.0
            ),
            worst_output_gap=max(gaps) if gaps else 1,
            fifo_max_occupancy={},
            fifo_capacity={},
            elements_streamed_per_segment=[
                seg.stream.elements_streamed
                for _, segments, _ in self._chains
                for seg in segments
            ],
            filter_forwarded={
                f.filter_id: f.forwarded for f in self._filters
            },
            filter_discarded={
                f.filter_id: f.discarded for f in self._filters
            },
        )
        return SimulationResult(
            outputs=outputs, stats=stats, trace=self.trace
        )
