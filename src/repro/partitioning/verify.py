"""Conflict-freedom verification of partition plans.

Uniform cyclic plans claim that the ``n`` simultaneous window accesses of
every iteration land in pairwise different banks.  This module *checks*
that claim by walking iterations and mapping every access through the
plan's bank function — the same check an RTL testbench would do — and
measures the achieved initiation interval when the claim fails (accesses
to the same bank must serialize on the single read port left after the
write port is consumed by element replacement; Section 2.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Counter as CounterType
from collections import Counter
from typing import Iterator, List, Optional, Sequence, Tuple

from ..polyhedral.analysis import StencilAnalysis
from ..polyhedral.lexorder import Vector
from .base import UniformPlan


@dataclass(frozen=True)
class ConflictReport:
    """Outcome of a conflict scan over (a sample of) the iterations."""

    iterations_checked: int
    conflict_iterations: int
    worst_accesses_per_bank: int
    first_conflict: Optional[Tuple[Vector, Tuple[int, ...]]]

    @property
    def conflict_free(self) -> bool:
        return self.conflict_iterations == 0

    @property
    def achieved_ii(self) -> int:
        """Cycles per iteration: the busiest bank's access count."""
        return max(1, self.worst_accesses_per_bank)


def _sample_iterations(
    analysis: StencilAnalysis, limit: int
) -> Iterator[Vector]:
    """Iterations to scan: everything for small domains, otherwise a
    deterministic stride sample that still covers domain boundaries."""
    domain = analysis.iteration_domain
    try:
        total = domain.count()
    except ValueError:
        total = limit + 1
    if total <= limit:
        yield from domain.iter_points()
        return
    stride = max(1, total // limit)
    for k, point in enumerate(domain.iter_points()):
        if k % stride == 0 or k < 64 or k >= total - 64:
            yield point


def scan_conflicts(
    plan: UniformPlan,
    analysis: StencilAnalysis,
    sample_limit: int = 20000,
) -> ConflictReport:
    """Scan iterations and verify per-cycle bank exclusivity."""
    refs = analysis.references
    conflicts = 0
    worst = 1
    checked = 0
    first: Optional[Tuple[Vector, Tuple[int, ...]]] = None
    for i in _sample_iterations(analysis, sample_limit):
        banks = tuple(
            plan.mapping.bank_of(ref.access_index(i)) for ref in refs
        )
        counts: CounterType[int] = Counter(banks)
        busiest = max(counts.values())
        worst = max(worst, busiest)
        checked += 1
        if busiest > 1:
            conflicts += 1
            if first is None:
                first = (i, banks)
    return ConflictReport(
        iterations_checked=checked,
        conflict_iterations=conflicts,
        worst_accesses_per_bank=worst,
        first_conflict=first,
    )


def measure_ii_for_bank_count(
    analysis: StencilAnalysis,
    num_banks: int,
    padded_extents: Optional[Sequence[int]] = None,
    sample_limit: int = 20000,
) -> int:
    """Achieved II if one *forces* a given uniform bank count (ablation:
    what happens below the conflict-free minimum)."""
    from .base import UniformBankMapping
    from .cyclic import _row_major_strides

    extents = tuple(
        padded_extents
        if padded_extents is not None
        else analysis.stream_domain().shape
    )
    mapping = UniformBankMapping(
        num_banks=num_banks,
        weights=_row_major_strides(extents),
        padded_extents=extents,
        original_extents=analysis.stream_domain().shape,
    )
    refs = analysis.references
    worst = 1
    for i in _sample_iterations(analysis, sample_limit):
        banks = Counter(
            mapping.bank_of(ref.access_index(i)) for ref in refs
        )
        worst = max(worst, max(banks.values()))
    return worst


def verify_uniform_plan(
    plan: UniformPlan,
    analysis: StencilAnalysis,
    sample_limit: int = 20000,
) -> ConflictReport:
    """Assert a uniform plan is conflict-free; returns the report."""
    report = scan_conflicts(plan, analysis, sample_limit)
    if not report.conflict_free:
        point, banks = report.first_conflict  # type: ignore[misc]
        raise AssertionError(
            f"plan {plan.scheme} with {plan.num_banks} banks has a bank "
            f"conflict at iteration {point}: banks {banks}"
        )
    return report
