"""Skewed iteration domains and automatic reuse adaptation (Fig 9).

After a 45-degree loop skew (common before stencil pipelining), the
iteration domain is a parallelogram and the reuse distance between
references changes as execution advances.  Centralized designs need
explicit control logic for this; in the paper's distributed chain the
adaptation is emergent — this example makes it visible by tracing FIFO
occupancy over time with the exact input data domain streamed.

Run:  python examples/skewed_grid.py
"""

import numpy as np

from repro import ChainSimulator, build_memory_system, skewed_denoise
from repro.sim.trace import TraceRecorder
from repro.stencil.golden import golden_output_sequence, make_input


def main() -> None:
    spec = skewed_denoise(rows=10, cols=14)
    grid = make_input(spec)
    print(spec)
    print(
        f"iteration domain: {spec.iteration_domain.count()} points "
        "(parallelogram, each row shifted one column right)"
    )

    hull = build_memory_system(spec.analysis())
    union = build_memory_system(spec.analysis(stream_mode="union"))
    print()
    print("reuse-buffer sizing:")
    print(
        f"  hull-box streaming : FIFOs {hull.fifo_capacities()}, "
        f"total {hull.total_buffer_size}"
    )
    print(
        f"  exact-union streaming: FIFOs {union.fifo_capacities()}, "
        f"total {union.total_buffer_size}"
    )

    trace = TraceRecorder(max_cycles=4000)
    result = ChainSimulator(spec, union, grid, trace=trace).run()
    assert np.allclose(
        result.output_values(), golden_output_sequence(spec, grid)
    )
    print()
    print(
        f"simulated exact-union chain: {result.stats.total_cycles} "
        f"cycles, {result.stats.outputs_produced} outputs, matches "
        "golden ✓"
    )

    big = max(union.fifos, key=lambda f: f.capacity)
    first = result.stats.first_output_cycle
    series = [
        row.fifo_occupancy[big.fifo_id]
        for row in trace.rows
        if row.cycle >= first
    ]
    print()
    print(
        f"FIFO {big.fifo_id} occupancy after the pipeline fills "
        f"(capacity {big.capacity}):"
    )
    # Compress the series into runs for readability.
    runs = []
    for v in series:
        if runs and runs[-1][0] == v:
            runs[-1][1] += 1
        else:
            runs.append([v, 1])
    print(
        "  "
        + " -> ".join(f"{v} (x{n})" for v, n in runs[:14])
        + (" -> ..." if len(runs) > 14 else "")
    )
    distinct = sorted({v for v, _ in runs})
    print(
        f"  occupancy takes {len(distinct)} distinct values "
        f"{distinct}: the distributed modules adapt the stored data "
        "amount automatically (Fig 9 / Section 3.4.2)"
    )


if __name__ == "__main__":
    main()
