"""Unit tests for lexicographic-order helpers (Definition 2)."""

import pytest

from repro.polyhedral.lexorder import (
    as_vector,
    is_strictly_descending,
    lex_compare,
    lex_ge,
    lex_gt,
    lex_le,
    lex_lt,
    lex_max,
    lex_min,
    lex_sorted,
)


class TestLexCompare:
    def test_equal_vectors(self):
        assert lex_compare((1, 2), (1, 2)) == 0

    def test_first_dimension_dominates(self):
        assert lex_compare((1, 0), (0, 9)) == 1
        assert lex_compare((0, 9), (1, 0)) == -1

    def test_tie_broken_by_inner_dimension(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((1, 3), (1, 2)) == 1

    def test_paper_example_order(self):
        # (1,0) >_l (0,1) >_l (0,0) >_l (-1,0) — Table 1's example.
        assert lex_gt((1, 0), (0, 1))
        assert lex_gt((0, 1), (0, 0))
        assert lex_gt((0, 0), (-1, 0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            lex_compare((1, 2), (1, 2, 3))

    def test_three_dimensional(self):
        assert lex_lt((0, 5, 5), (1, 0, 0))
        assert lex_gt((0, 0, 1), (0, 0, 0))


class TestPredicates:
    def test_lt_le_consistency(self):
        assert lex_lt((0, 1), (1, 0))
        assert lex_le((0, 1), (1, 0))
        assert lex_le((0, 1), (0, 1))
        assert not lex_lt((0, 1), (0, 1))

    def test_gt_ge_consistency(self):
        assert lex_gt((2,), (1,))
        assert lex_ge((2,), (2,))
        assert not lex_gt((2,), (2,))

    def test_trichotomy(self):
        pairs = [((0, 0), (0, 1)), ((1, 1), (1, 1)), ((2, 0), (1, 9))]
        for a, b in pairs:
            outcomes = [lex_lt(a, b), a == b, lex_gt(a, b)]
            assert sum(outcomes) == 1


class TestMinMaxSort:
    def test_lex_min_and_max(self):
        pts = [(0, 1), (1, 0), (0, 0), (-1, 5)]
        assert lex_min(pts) == (-1, 5)
        assert lex_max(pts) == (1, 0)

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            lex_min([])
        with pytest.raises(ValueError):
            lex_max([])

    def test_sorted_ascending(self):
        pts = [(1, 0), (0, 1), (0, -1), (0, 0), (-1, 0)]
        assert lex_sorted(pts) == [
            (-1, 0),
            (0, -1),
            (0, 0),
            (0, 1),
            (1, 0),
        ]

    def test_sorted_descending_matches_filter_order(self):
        # DENOISE filter order of Fig 7.
        pts = [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]
        assert lex_sorted(pts, descending=True) == [
            (1, 0),
            (0, 1),
            (0, 0),
            (0, -1),
            (-1, 0),
        ]

    def test_as_vector_coerces_numpy(self):
        import numpy as np

        v = as_vector(np.array([1, 2, 3]))
        assert v == (1, 2, 3)
        assert all(isinstance(c, int) for c in v)


class TestStrictlyDescending:
    def test_descending_sequence(self):
        assert is_strictly_descending([(1, 0), (0, 1), (0, 0)])

    def test_equal_adjacent_fails(self):
        assert not is_strictly_descending([(1, 0), (1, 0)])

    def test_ascending_fails(self):
        assert not is_strictly_descending([(0, 0), (0, 1)])

    def test_single_and_empty_are_descending(self):
        assert is_strictly_descending([(0, 0)])
        assert is_strictly_descending([])
