"""Spans and tracing: where does the wall-clock time of a run go?

A :class:`Span` measures one named region of code with monotonic
timestamps (``time.perf_counter_ns``); spans nest, so a trace of one
``explore`` run shows each candidate evaluation inside the exploration,
each partitioning plan inside the candidate, and so on.  The
:class:`Tracer` collects finished spans thread-safely and exports them
in two formats:

* **JSONL** (:meth:`Tracer.export_jsonl`) — one span per line, trivially
  greppable and streamable;
* **Chrome trace_event JSON** (:meth:`Tracer.export_chrome`) — loadable
  directly in ``chrome://tracing`` or https://ui.perfetto.dev for a
  flame-chart view of the flow.

Instrumentation sites call the module-level :func:`span` helper, which
is a **no-op unless a tracer is installed** (:func:`install_tracer`):
without one it returns a shared stateless null context manager, so the
instrumented code pays a single global read per call site.

Distributed tracing
-------------------
One request to the router fabric crosses three process layers (router,
service node, pool worker), each with its own tracer.  Three pieces
make their spans stitch into one timeline:

* **trace context** — every span carries a ``trace_id`` plus its own
  ``span_id`` and ``parent_span_id`` (W3C-traceparent style).  The
  context rides the wire in the proto ``Request`` and is re-entered in
  the receiving process with :func:`trace_context`; spans opened under
  it link to the remote parent, so the whole fabric shares one tree.
* **a wall-clock anchor** — each tracer records ``time.time_ns`` next
  to its monotonic epoch at construction.  Timestamps stay monotonic
  in-process (immune to clock steps mid-run), but the anchor lets
  :mod:`repro.obs.stitch` place every process's spans on one absolute
  axis.  JSONL exports start with a ``trace_meta`` line carrying the
  anchor, the pid and a human process name.
* **foreign spans** (:meth:`Tracer.add_foreign`) — a process without
  its own export path (a pool worker that may be chaos-killed at any
  time) times its stages with absolute wall-clock timestamps and ships
  them home in its reply; the parent re-records them, preserving the
  worker's pid/tid so the stitched trace shows the worker as its own
  process row.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "current_trace_context",
    "get_tracer",
    "install_tracer",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "span",
    "trace_context",
    "traced",
    "uninstall_tracer",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, timing and structural position."""

    name: str
    start_us: float  # monotonic microseconds since the tracer epoch
    duration_us: float
    thread_id: int
    depth: int
    parent: Optional[str]
    args: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    pid: int = 0

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "ts_us": round(self.start_us, 3),
            "dur_us": round(self.duration_us, 3),
            "tid": self.thread_id,
            "depth": self.depth,
            "parent": self.parent,
            "args": self.args,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        if self.pid:
            out["pid"] = self.pid
        return out

    def as_chrome_event(self, pid: int) -> Dict[str, Any]:
        """A Chrome ``trace_event`` complete ("X") event."""
        args = dict(self.args)
        if self.trace_id is not None:
            args["trace_id"] = self.trace_id
        if self.span_id is not None:
            args["span_id"] = self.span_id
        if self.parent_span_id is not None:
            args["parent_span_id"] = self.parent_span_id
        return {
            "name": self.name,
            "ph": "X",
            "ts": round(self.start_us, 3),
            "dur": round(self.duration_us, 3),
            "pid": self.pid or pid,
            "tid": self.thread_id,
            "args": args,
        }


class _TraceContext:
    """Thread-local ``(trace_id, parent_span_id)`` the next span joins."""

    __slots__ = ("trace_id", "parent_span_id")

    def __init__(self, trace_id: str, parent_span_id: Optional[str]):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id


_context_local = threading.local()


def _context_stack() -> List[_TraceContext]:
    stack = getattr(_context_local, "stack", None)
    if stack is None:
        stack = []
        _context_local.stack = stack
    return stack


def current_trace_context() -> Optional[_TraceContext]:
    """The innermost active trace context on this thread, if any."""
    stack = getattr(_context_local, "stack", None)
    return stack[-1] if stack else None


class trace_context:
    """Context manager joining this thread's spans to a remote trace.

    While active, spans opened on this thread record ``trace_id`` and
    link their ``parent_span_id`` chain back to ``parent_span_id``
    (the caller's span id in another process).  Passing
    ``trace_id=None`` is a no-op — call sites can apply it
    unconditionally for requests with or without a wire context.
    """

    __slots__ = ("_ctx",)

    def __init__(
        self,
        trace_id: Optional[str],
        parent_span_id: Optional[str] = None,
    ) -> None:
        self._ctx = (
            _TraceContext(trace_id, parent_span_id)
            if trace_id is not None
            else None
        )

    def __enter__(self) -> "trace_context":
        if self._ctx is not None:
            _context_stack().append(self._ctx)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._ctx is not None:
            stack = _context_stack()
            if stack and stack[-1] is self._ctx:
                stack.pop()
        return False


class Span:
    """Context manager timing one named region (created by a tracer)."""

    __slots__ = (
        "_tracer", "name", "args", "_start_ns", "_depth", "_parent",
        "trace_id", "span_id", "parent_span_id",
    )

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self._depth = 0
        self._parent: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None

    def annotate(self, **kwargs: Any) -> "Span":
        """Attach extra key/value arguments to the span."""
        self.args.update(kwargs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            enclosing = stack[-1]
            self._parent = enclosing.name
            self.trace_id = enclosing.trace_id
            self.parent_span_id = enclosing.span_id
        else:
            ctx = current_trace_context()
            if ctx is not None:
                self.trace_id = ctx.trace_id
                self.parent_span_id = ctx.parent_span_id
        if self.trace_id is not None:
            self.span_id = self._tracer._next_span_id()
        self._depth = len(stack)
        stack.append(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self, self._start_ns, end_ns)
        return False


class _NullSpan:
    """Shared stateless no-op span used when no tracer is installed."""

    __slots__ = ()

    def annotate(self, **kwargs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe in-process span collector.

    All timestamps are monotonic nanoseconds relative to the tracer's
    construction, exported as microseconds (the trace_event unit).
    ``epoch_unix_us`` records the wall clock at the same instant, so a
    stitcher can align several processes' traces on one absolute axis
    (see :func:`repro.obs.stitch.stitch_traces`).
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._epoch_ns = time.perf_counter_ns()
        self.epoch_unix_us = time.time_ns() / 1e3
        self.name = name or f"pid-{os.getpid()}"
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        # Span ids only need uniqueness across the processes of one
        # fabric run: pid plus a random salt plus a counter is cheap
        # enough for hot spans and unique enough for stitching.
        self._id_prefix = f"{os.getpid() & 0xFFFF:04x}{os.urandom(2).hex()}"
        self._id_seq = itertools.count(1)

    def _next_span_id(self) -> str:
        return f"{self._id_prefix}{next(self._id_seq) & 0xFFFFFFFF:08x}"

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args: Any) -> Span:
        """A new (not yet entered) span owned by this tracer."""
        return Span(self, name, args)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span_obj: Span, start_ns: int, end_ns: int) -> None:
        record = SpanRecord(
            name=span_obj.name,
            start_us=(start_ns - self._epoch_ns) / 1e3,
            duration_us=(end_ns - start_ns) / 1e3,
            thread_id=threading.get_ident() & 0xFFFFFFFF,
            depth=span_obj._depth,
            parent=span_obj._parent,
            args=dict(span_obj.args),
            trace_id=span_obj.trace_id,
            span_id=span_obj.span_id,
            parent_span_id=span_obj.parent_span_id,
            # pid stays 0 for locally recorded spans: the exporter's
            # trace_meta header names the owning process once, and
            # only foreign (relayed) spans need a per-record pid.
        )
        with self._lock:
            self._records.append(record)

    def add_complete(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record an externally timed region (no nesting bookkeeping).

        Used by call sites whose begin/end do not bracket a ``with``
        block (e.g. a request's full router residency, which starts at
        submission and ends when its response slot resolves on another
        thread).  Trace-context ids may be passed explicitly.
        """
        record = SpanRecord(
            name=name,
            start_us=(start_ns - self._epoch_ns) / 1e3,
            duration_us=(end_ns - start_ns) / 1e3,
            thread_id=threading.get_ident() & 0xFFFFFFFF,
            depth=0,
            parent=None,
            args=args,
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=parent_span_id,
        )
        with self._lock:
            self._records.append(record)

    def add_foreign(self, rec: Dict[str, Any]) -> None:
        """Re-record a span timed in *another* process.

        ``rec`` uses absolute wall-clock timestamps (``ts_unix_us``,
        ``dur_us``) plus the remote ``pid``/``tid`` and optional trace
        ids; this tracer converts the timestamp onto its own epoch so
        one export stays internally consistent, while the preserved
        pid keeps the remote process on its own row after stitching.
        """
        record = SpanRecord(
            name=str(rec["name"]),
            start_us=float(rec["ts_unix_us"]) - self.epoch_unix_us,
            duration_us=float(rec["dur_us"]),
            thread_id=int(rec.get("tid", 0)),
            depth=int(rec.get("depth", 0)),
            parent=rec.get("parent"),
            args=dict(rec.get("args", {})),
            trace_id=rec.get("trace_id"),
            span_id=rec.get("span_id"),
            parent_span_id=rec.get("parent_span_id"),
            pid=int(rec.get("pid", 0)),
        )
        with self._lock:
            self._records.append(record)

    # -- inspection ----------------------------------------------------
    @property
    def records(self) -> List[SpanRecord]:
        """A snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- exporters -----------------------------------------------------
    def meta(self) -> Dict[str, Any]:
        """The ``trace_meta`` header: who recorded this file, and how
        its monotonic timestamps map onto the wall clock."""
        return {
            "kind": "trace_meta",
            "process": self.name,
            "pid": self.pid,
            "epoch_unix_us": round(self.epoch_unix_us, 3),
        }

    def to_jsonl(self, fileobj: IO[str]) -> int:
        """Write a ``trace_meta`` header line, then one JSON object per
        span; returns the span count (the header is not counted)."""
        records = self.records
        fileobj.write(json.dumps(self.meta()) + "\n")
        for record in records:
            fileobj.write(json.dumps(record.as_dict()) + "\n")
        return len(records)

    def export_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            return self.to_jsonl(fh)

    def chrome_events(self) -> List[Dict[str, Any]]:
        pid = self.pid
        return [r.as_chrome_event(pid) for r in self.records]

    def to_chrome(self, fileobj: IO[str]) -> int:
        """Write a ``chrome://tracing``-loadable JSON document."""
        events = self.chrome_events()
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fileobj,
            indent=1,
        )
        return len(events)

    def export_chrome(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            return self.to_chrome(fh)


# ---------------------------------------------------------------------
# Global installation: one process-wide tracer, read without locking on
# the hot path (module-global load), written under a lock.
_install_lock = threading.Lock()
_tracer: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _tracer
    with _install_lock:
        _tracer = tracer if tracer is not None else Tracer()
        return _tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove and return the installed tracer (if any)."""
    global _tracer
    with _install_lock:
        tracer, _tracer = _tracer, None
        return tracer


def get_tracer() -> Optional[Tracer]:
    return _tracer


def span(name: str, **args: Any):
    """A span on the installed tracer, or a shared no-op without one."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


def record_span(name: str, start_ns: int, end_ns: int, **args: Any) -> None:
    """Record an externally timed span if a tracer is installed.

    ``trace_id``/``span_id``/``parent_span_id`` keyword arguments are
    promoted onto the record itself; everything else lands in ``args``.
    """
    tracer = _tracer
    if tracer is not None:
        tracer.add_complete(
            name,
            start_ns,
            end_ns,
            trace_id=args.pop("trace_id", None),
            span_id=args.pop("span_id", None),
            parent_span_id=args.pop("parent_span_id", None),
            **args,
        )


def traced(name: str):
    """Decorator: wrap every call of a function in a named span.

    With no tracer installed the wrapper short-circuits to the plain
    function call.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _tracer
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
