"""Unit tests for the golden NumPy executor."""

import numpy as np
import pytest

from repro.stencil.golden import (
    golden_output_sequence,
    iter_outputs_pointwise,
    make_input,
    run_golden,
    run_golden_pointwise,
)
from repro.stencil.kernels import DENOISE, SOBEL, skewed_denoise
from repro.stencil.spec import StencilSpec, StencilWindow

from conftest import small_spec


class TestMakeInput:
    def test_shape_matches_spec(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        assert grid.shape == tuple(spec.grid)

    def test_deterministic(self):
        spec = small_spec(DENOISE)
        assert np.array_equal(make_input(spec), make_input(spec))

    def test_seed_changes_data(self):
        spec = small_spec(DENOISE)
        assert not np.array_equal(
            make_input(spec, seed=1), make_input(spec, seed=2)
        )


class TestRunGolden:
    def test_denoise_hand_check(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        out = run_golden(spec, grid)
        i, j = 3, 4
        expected = 0.5 * grid[i, j] + 0.125 * (
            grid[i - 1, j]
            + grid[i + 1, j]
            + grid[i, j - 1]
            + grid[i, j + 1]
        )
        # iteration (3, 4) maps to output index (2, 3).
        assert out[2, 3] == pytest.approx(expected)

    def test_output_shape_is_iteration_domain(self):
        spec = small_spec(DENOISE)
        out = run_golden(spec, make_input(spec))
        assert out.shape == spec.iteration_domain.shape

    def test_sobel_nonnegative(self):
        spec = small_spec(SOBEL)
        out = run_golden(spec, make_input(spec))
        assert (out >= 0).all()

    def test_wrong_grid_shape_rejected(self):
        spec = small_spec(DENOISE)
        with pytest.raises(ValueError):
            run_golden(spec, np.zeros((3, 3)))

    def test_skewed_domain_rejected_by_vectorized_path(self):
        spec = skewed_denoise(rows=5, cols=6)
        with pytest.raises(TypeError):
            run_golden(spec, make_input(spec))

    def test_constant_input_average_kernel(self):
        w = StencilWindow.von_neumann(2, 1)
        spec = StencilSpec("AVG", (8, 9), w)  # default: window average
        grid = np.full((8, 9), 7.0)
        out = run_golden(spec, grid)
        assert np.allclose(out, 7.0)


class TestPointwise:
    def test_pointwise_matches_vectorized(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        vec = run_golden(spec, grid)
        for (i, j), value in run_golden_pointwise(spec, grid):
            lo = spec.iteration_domain.lows
            assert vec[i - lo[0], j - lo[1]] == pytest.approx(value)

    def test_pointwise_in_lex_order(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        iters = [i for i, _ in iter_outputs_pointwise(spec, grid)]
        assert iters == sorted(iters)

    def test_skewed_pointwise_runs(self):
        spec = skewed_denoise(rows=4, cols=5)
        grid = make_input(spec)
        outs = run_golden_pointwise(spec, grid)
        assert len(outs) == spec.iteration_domain.count()


class TestSequence:
    def test_sequence_matches_raveled_grid(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        seq = golden_output_sequence(spec, grid)
        assert np.allclose(seq, run_golden(spec, grid).ravel())

    def test_sequence_for_skewed_domain(self):
        spec = skewed_denoise(rows=4, cols=5)
        grid = make_input(spec)
        seq = golden_output_sequence(spec, grid)
        assert len(seq) == spec.iteration_domain.count()
