"""Off-chip data streams feeding the memory system.

The microarchitecture consumes each data array as a single lexicographic
stream (Section 3.3.1: the order "fits well with burst accesses to
external memory").  :class:`DataStream` walks the streamed domain in lex
order and produces ``(point, value)`` elements from a backing NumPy grid,
at most one per cycle per stream (one off-chip access per cycle per chain
segment); an optional initial latency models the DRAM/bus round trip
hidden by the prefetcher of Fig 13b.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..polyhedral.domain import IntegerPolyhedron
from ..polyhedral.lexorder import Vector


class DataStream:
    """One lexicographically ordered element stream over a domain.

    ``peek`` exposes the head element without consuming it; ``pop``
    consumes it.  ``pop`` may be called at most once per cycle by the
    chain (enforced structurally: only one splitter reads each stream).
    """

    def __init__(
        self,
        domain: IntegerPolyhedron,
        grid: np.ndarray,
        initial_latency: int = 0,
    ) -> None:
        if initial_latency < 0:
            raise ValueError("initial latency must be >= 0")
        self._domain = domain
        self._grid = grid
        self._iter: Iterator[Vector] = domain.iter_points()
        self._head: Optional[Tuple[Vector, float]] = None
        self._exhausted = False
        self._latency = initial_latency
        self.elements_streamed = 0
        self._advance()

    def _advance(self) -> None:
        try:
            point = next(self._iter)
        except StopIteration:
            self._head = None
            self._exhausted = True
            return
        value = float(self._grid[point])
        self._head = (point, value)

    def tick(self) -> None:
        """Advance one cycle of initial latency (no-op afterwards)."""
        if self._latency > 0:
            self._latency -= 1

    @property
    def available(self) -> bool:
        """True iff an element can be popped this cycle."""
        return self._latency == 0 and self._head is not None

    @property
    def waiting(self) -> bool:
        """True iff the stream is still serving its initial latency
        (progress is coming even though nothing can pop yet)."""
        return self._latency > 0 and self._head is not None

    @property
    def exhausted(self) -> bool:
        """True iff every element has been streamed."""
        return self._exhausted and self._head is None

    def peek(self) -> Tuple[Vector, float]:
        if not self.available:
            raise RuntimeError("peek on an unavailable stream")
        assert self._head is not None
        return self._head

    def pop(self) -> Tuple[Vector, float]:
        element = self.peek()
        self.elements_streamed += 1
        self._advance()
        return element
