"""Unit tests for access functions and array references (Defs 3-5)."""

import pytest

from repro.polyhedral.access import (
    AccessFunction,
    ArrayReference,
    NotAStencilAccessError,
    input_data_domain,
)
from repro.polyhedral.domain import BoxDomain


class TestAccessFunction:
    def test_stencil_constructor_is_identity_plus_offset(self):
        f = AccessFunction.stencil((1, -1))
        assert f.is_stencil()
        assert f.offset_only() == (1, -1)
        assert f.apply((2, 3)) == (3, 2)

    def test_paper_example_2(self):
        # Access function of A[i][j+1]: h = I*i + (0, 1).
        f = AccessFunction.stencil((0, 1))
        assert f.apply((5, 7)) == (5, 8)

    def test_non_identity_matrix_not_stencil(self):
        f = AccessFunction(((1, 0), (0, 2)), (0, 0))
        assert not f.is_stencil()
        with pytest.raises(NotAStencilAccessError):
            f.offset_only()

    def test_non_square_not_stencil(self):
        f = AccessFunction(((1, 0),), (0,))
        assert not f.is_stencil()
        assert f.array_dim == 1
        assert f.iter_dim == 2

    def test_apply_general_affine(self):
        # h = [[1,1],[0,1]] i + (1, 0)
        f = AccessFunction(((1, 1), (0, 1)), (1, 0))
        assert f.apply((2, 3)) == (6, 3)

    def test_apply_dimension_mismatch(self):
        with pytest.raises(ValueError):
            AccessFunction.stencil((0, 0)).apply((1,))

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            AccessFunction(((1, 0), (0,)), (0, 0))

    def test_rows_offset_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AccessFunction(((1, 0),), (0, 0))


class TestArrayReference:
    def test_default_label_2d(self):
        assert ArrayReference("A", (0, 1)).label == "A[i][j+1]"
        assert ArrayReference("A", (-1, 0)).label == "A[i-1][j]"
        assert ArrayReference("A", (0, 0)).label == "A[i][j]"

    def test_default_label_3d(self):
        assert (
            ArrayReference("A", (1, 0, -2)).label == "A[i+1][j][k-2]"
        )

    def test_explicit_label_preserved(self):
        ref = ArrayReference("A", (0, 0), label="center")
        assert ref.label == "center"
        assert str(ref) == "center"

    def test_access_index(self):
        ref = ArrayReference("A", (1, -1))
        assert ref.access_index((3, 3)) == (4, 2)

    def test_access_index_dimension_mismatch(self):
        with pytest.raises(ValueError):
            ArrayReference("A", (1, -1)).access_index((3,))

    def test_data_domain_is_translated_iteration_domain(self):
        iter_domain = BoxDomain((1, 1), (4, 6))
        ref = ArrayReference("A", (0, 1))
        dd = ref.data_domain(iter_domain)
        lo, hi = dd.bounding_box()
        assert lo == (1, 2)
        assert hi == (4, 7)

    def test_data_domain_dimension_mismatch(self):
        with pytest.raises(ValueError):
            ArrayReference("A", (0, 1)).data_domain(
                BoxDomain((0,), (5,))
            )

    def test_access_function_roundtrip(self):
        ref = ArrayReference("A", (2, -3))
        assert ref.access_function().offset_only() == (2, -3)

    def test_references_hashable_and_comparable(self):
        a = ArrayReference("A", (0, 1))
        b = ArrayReference("A", (0, 1))
        assert a == b
        assert hash(a) == hash(b)


class TestInputDataDomain:
    def test_union_covers_all_reference_domains(self):
        iter_domain = BoxDomain((1, 1), (3, 3))
        refs = [
            ArrayReference("A", o)
            for o in [(0, 0), (1, 0), (-1, 0)]
        ]
        union = input_data_domain(refs, iter_domain)
        for ref in refs:
            for p in ref.data_domain(iter_domain).iter_points():
                assert p in union

    def test_empty_reference_list_rejected(self):
        with pytest.raises(ValueError):
            input_data_domain([], BoxDomain((0,), (1,)))
