"""Register-level models of the chain modules.

Unlike :mod:`repro.sim.modules`, data here is *values only*: all
control decisions come from the counters, exactly as in the synthesized
hardware.  A data filter (Fig 10) owns

* an input counter iterating the streamed domain ``D_A`` (advances on
  every accepted element),
* an output counter iterating its reference's data domain ``D_Ax``,
* an equality comparator: when the counters agree the switch forwards
  the element to the kernel port, otherwise it discards it.

The computation kernel binds port values to reference offsets by
*position* (port k is reference k), evaluates the expression, and
pushes results through a shift register of ``latency`` stages.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..polyhedral.domain import IntegerPolyhedron
from ..stencil.expr import Expr, evaluate
from .core import DomainCounter, RtlModule, Signal


class RtlStreamSource(RtlModule):
    """Feeds raw values in lexicographic domain order, 1 per cycle."""

    def __init__(self, name: str, domain, grid) -> None:
        self.name = name
        self._iter = domain.iter_points()
        self._grid = grid
        self._head: Optional[float] = None
        self.valid = Signal(f"{name}_valid", 0)
        self.streamed = Signal(f"{name}_count", 0)
        self._load_next()

    def _load_next(self) -> None:
        try:
            point = next(self._iter)
        except StopIteration:
            self._head = None
            self.valid.value = 0
            return
        self._head = float(self._grid[point])
        self.valid.value = 1

    def peek(self) -> float:
        assert self._head is not None
        return self._head

    def pop(self) -> float:
        value = self.peek()
        self.streamed.value += 1
        self._load_next()
        return value

    def signals(self):
        return (self.valid, self.streamed)


class RtlFifo(RtlModule):
    """A value FIFO with occupancy signal."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("FIFO capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._queue: Deque[float] = deque()
        self.occupancy = Signal(f"{name}_occ", 0)
        self.max_occupancy = 0

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, value: float) -> None:
        if self.full:
            raise OverflowError(f"push to full {self.name}")
        self._queue.append(value)
        self.occupancy.value = len(self._queue)
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def pop(self) -> float:
        value = self._queue.popleft()
        self.occupancy.value = len(self._queue)
        return value

    def signals(self):
        return (self.occupancy,)


class RtlFilter(RtlModule):
    """The Fig 10 data filter: two domain counters and a comparator."""

    def __init__(
        self,
        name: str,
        stream_domain,
        output_domain: IntegerPolyhedron,
    ) -> None:
        self.name = name
        self.input_counter = DomainCounter(stream_domain, f"{name}_in")
        self.output_counter = DomainCounter(
            output_domain, f"{name}_out"
        )
        self.port_valid = Signal(f"{name}_port_valid", 0)
        self.port_value = Signal(f"{name}_port_value", 0.0)
        self.forwarded = Signal(f"{name}_forwarded", 0)
        self.discarded = Signal(f"{name}_discarded", 0)

    @property
    def ready(self) -> bool:
        """Accepts an element iff the port register is free."""
        return not self.port_valid.value

    def accept(self, value: float) -> None:
        """Process one element: compare counters, forward or discard."""
        if not self.ready:
            raise RuntimeError(f"{self.name} accepted while stalled")
        matches = (
            not self.output_counter.done.value
            and self.input_counter.current()
            == self.output_counter.current()
        )
        if matches:
            self.port_value.value = value
            self.port_valid.value = 1
            self.forwarded.value += 1
            self.output_counter.advance()
        else:
            self.discarded.value += 1
        self.input_counter.advance()

    def consume_port(self) -> float:
        if not self.port_valid.value:
            raise RuntimeError(f"{self.name} port read while invalid")
        self.port_valid.value = 0
        return float(self.port_value.value)

    def signals(self):
        return (
            tuple(self.input_counter.signals())
            + tuple(self.output_counter.signals())
            + (
                self.port_valid,
                self.port_value,
                self.forwarded,
                self.discarded,
            )
        )


class RtlKernel(RtlModule):
    """Pipelined datapath: fires when all ports valid, result appears
    ``latency`` cycles later."""

    def __init__(
        self,
        references,
        expression: Expr,
        latency: int = 4,
    ) -> None:
        self.name = "kernel"
        self._references = references
        self._expression = expression
        self.latency = latency
        self._pipeline: Deque[float] = deque()
        self._pipeline_ages: Deque[int] = deque()
        self.outputs: List[float] = []
        self.fired = Signal("kernel_fired", 0)
        self.out_count = Signal("kernel_outputs", 0)
        self._cycle = 0

    def try_fire(self, filters: List[RtlFilter]) -> bool:
        if any(not f.port_valid.value for f in filters):
            return False
        env = {}
        for ref, flt in zip(self._references, filters):
            env[(ref.array, ref.offset)] = flt.consume_port()
        value = float(evaluate(self._expression, env))
        self._pipeline.append(value)
        self._pipeline_ages.append(self._cycle + self.latency)
        self.fired.value += 1
        return True

    def drain(self) -> None:
        """Retire pipeline stages whose latency elapsed."""
        self._cycle += 1
        while (
            self._pipeline_ages
            and self._pipeline_ages[0] <= self._cycle
        ):
            self._pipeline_ages.popleft()
            self.outputs.append(self._pipeline.popleft())
            self.out_count.value += 1

    def all_retired(self) -> bool:
        return not self._pipeline

    def signals(self):
        return (self.fired, self.out_count)
