"""Bandwidth/memory trade-off for a 3D stencil (Fig 14/15).

When more off-chip bandwidth is available, the chain is broken at the
largest remaining reuse FIFO and the downstream sub-chain is fed by its
own off-chip stream.  This example sweeps 1..18 off-chip accesses per
cycle for the 19-point SEGMENTATION stencil (reproducing the Fig 15
curve with its three phases) and then actually simulates a 3-stream
configuration at reduced scale to show correctness is preserved.

Run:  python examples/bandwidth_memory_tradeoff.py
"""

import numpy as np

from repro import (
    SEGMENTATION_3D,
    ChainSimulator,
    build_memory_system,
    make_input,
    tradeoff_curve,
    with_offchip_streams,
)
from repro.stencil.golden import golden_output_sequence


def ascii_bar(value: int, maximum: int, width: int = 46) -> str:
    filled = round(width * value / maximum) if maximum else 0
    return "#" * max(filled, 0 if value == 0 else 1)


def main() -> None:
    system = build_memory_system(SEGMENTATION_3D.analysis())
    print(SEGMENTATION_3D)
    print(
        f"full chain: {system.num_banks} reuse FIFOs, "
        f"{system.total_buffer_size} elements, 1 off-chip access/cycle"
    )
    print()
    print("Fig 15 — on-chip buffer vs off-chip accesses per cycle:")
    curve = tradeoff_curve(system)
    peak = curve[0].total_buffer_size
    for point in curve:
        print(
            f"  {point.offchip_accesses_per_cycle:2d} access/cycle  "
            f"{point.total_buffer_size:6d} elems  "
            f"{ascii_bar(point.total_buffer_size, peak)}"
        )
    print()
    print("phases: 1-3 drop inter-plane reuse, 3-9 drop inter-row")
    print("reuse, 9-18 drop intra-row reuse (the paper's reading).")

    # Simulate the 3-stream configuration at reduced scale.
    spec = SEGMENTATION_3D.with_grid((8, 9, 10))
    grid = make_input(spec)
    base = build_memory_system(spec.analysis())
    broken = with_offchip_streams(base, 3)
    result = ChainSimulator(spec, broken, grid).run()
    assert np.allclose(
        result.output_values(), golden_output_sequence(spec, grid)
    )
    print()
    print(
        f"simulated 3-stream variant at {spec.grid}: buffer "
        f"{broken.total_buffer_size} vs {base.total_buffer_size} "
        f"elements, {result.stats.total_cycles} cycles, output "
        "matches golden ✓"
    )
    print(
        "off-chip words streamed per segment: "
        f"{result.stats.elements_streamed_per_segment}"
    )


if __name__ == "__main__":
    main()
