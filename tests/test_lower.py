"""Unit tests for repro.lower: bufferize, convert, engine, programs.

The compiled backend's contract is *bit identity*: a lowered kernel
must reproduce ``repro.stencil.golden`` exactly (same SHA-256 over the
same bytes), and anything it cannot lower must refuse loudly
(``LoweringUnsupported``) so the service falls back to the interpreted
path instead of answering wrong.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.lower import (
    BUFFER_PROGRAM_VERSION,
    CompiledEngine,
    LoweringConfig,
    LoweringError,
    LoweringUnsupported,
    ProgramMismatchError,
    bufferize,
    bufferize_plan,
    convert,
    program_from_json,
    program_to_json,
    validate_program,
)
from repro.service.executor import compile_plan, execute_stencil
from repro.service.fingerprint import CompileOptions, fingerprint
from repro.stencil import PAPER_BENCHMARKS, make_input, skewed_denoise
from repro.stencil.extra_kernels import EXTRA_BENCHMARKS
from repro.stencil.spec import StencilSpec, StencilWindow

from conftest import SMALL_GRIDS, small_spec

#: Small grids for the extra kernels (3D ones especially).
EXTRA_SMALL = {
    "JACOBI_3D": (6, 7, 8),
    "HEAT_3D": (6, 7, 8),
    "MOORE_27PT": (6, 7, 8),
    "GAUSSIAN_5X5": (9, 11),
    "FD4_LAPLACIAN": (10, 11),
}


def shrink(spec):
    if spec.name in SMALL_GRIDS:
        return small_spec(spec)
    if spec.name in EXTRA_SMALL:
        return spec.with_grid(EXTRA_SMALL[spec.name])
    if len(spec.grid) == 1:
        return spec.with_grid((24,))
    return spec.with_grid(tuple(12 for _ in spec.grid))


def plan_for(spec, streams=1):
    opts = CompileOptions(offchip_streams=streams)
    fp = fingerprint(spec, opts)
    return compile_plan(spec, opts, fp), opts, fp


ALL_KERNELS = [shrink(s) for s in PAPER_BENCHMARKS] + [
    shrink(s) for s in EXTRA_BENCHMARKS.values()
]


class TestBufferize:
    @pytest.mark.parametrize(
        "spec", ALL_KERNELS, ids=lambda s: s.name
    )
    def test_reuse_offsets_equal_partition_capacities(self, spec):
        """The program's flat reuse deltas ARE the paper's non-uniform
        FIFO capacities — the lowering cross-checks its own geometry
        against the compiled partition."""
        plan, _, _ = plan_for(spec)
        program = bufferize_plan(plan)
        assert program.reuse_offsets == list(plan.fifo_capacities)
        validate_program(program)

    def test_partition_mismatch_is_unsupported(self, denoise_small):
        plan, _, fp = plan_for(denoise_small)
        wrong = [c + 1 for c in plan.fifo_capacities]
        with pytest.raises(LoweringUnsupported) as excinfo:
            bufferize(denoise_small, fp, fifo_capacities=wrong)
        assert excinfo.value.reason == "partition_mismatch"

    @pytest.mark.parametrize("streams", [2, 3])
    def test_multi_stream_lowers_to_parts(
        self, denoise_small, streams
    ):
        """A multi-stream plan lowers to one sub-program per partition
        stream; concatenating the per-part reuse deltas reproduces the
        plan's (post-break) FIFO capacities exactly."""
        plan, _, _ = plan_for(denoise_small, streams=streams)
        program = bufferize_plan(plan)
        assert len(program.parts) == streams
        assert [p.stream for p in program.parts] == list(
            range(streams)
        )
        concat = [
            d for p in program.parts for d in p.reuse_offsets
        ]
        assert concat == list(plan.fifo_capacities)
        covered = sorted(
            s for p in program.parts for s in p.reads
        )
        assert covered == sorted(set(covered))  # disjoint slots
        validate_program(program)

    def test_too_many_streams_is_unsupported(self, denoise_small):
        fp = fingerprint(denoise_small, CompileOptions())
        with pytest.raises(LoweringUnsupported) as excinfo:
            bufferize(denoise_small, fp, offchip_streams=99)
        assert excinfo.value.reason == "multi_stream"

    def test_gather_hard_limit_is_unsupported(self):
        spec = skewed_denoise(rows=8, cols=10)
        fp = fingerprint(spec, CompileOptions())
        with pytest.raises(LoweringUnsupported) as excinfo:
            bufferize(spec, fp, gather_hard_limit=4)
        assert excinfo.value.reason == "gather_limit"

    def test_gather_limit_never_changes_the_program(self):
        """Chunking is a converter decision: the emitted program (and
        therefore the persisted sidecar) is identical whether the
        gather domain is enumerated eagerly or chunked."""
        spec = skewed_denoise(rows=8, cols=10)
        fp = fingerprint(spec, CompileOptions())
        eager = program_to_json(bufferize(spec, fp))
        chunked = program_to_json(bufferize(spec, fp, gather_limit=4))
        assert eager == chunked

    def test_out_of_bounds_reads_are_unsupported(self):
        """A domain whose window reaches past the grid edge must not
        lower (the interpreted path keeps its legacy semantics)."""
        from repro.polyhedral.domain import BoxDomain

        window = StencilWindow.from_offsets([(-1, 0), (0, 0)])
        spec = StencilSpec(
            "EDGE",
            (6, 6),
            window,
            iteration_domain=BoxDomain((0, 0), (5, 5)),
        )
        with pytest.raises(LoweringUnsupported) as excinfo:
            bufferize(spec, "f" * 64)
        assert excinfo.value.reason == "out_of_bounds"


class TestProgramCodec:
    def test_json_round_trip(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        program = bufferize_plan(plan)
        data = program_to_json(program)
        assert data["version"] == BUFFER_PROGRAM_VERSION
        again = program_from_json(data)
        assert program_to_json(again) == data

    def test_single_stream_json_has_no_parts_key(self, denoise_small):
        """Single-stream sidecars keep their pre-parts canonical JSON
        so programs persisted before this field existed still match
        byte-for-byte on re-lowering."""
        plan, _, _ = plan_for(denoise_small)
        data = program_to_json(bufferize_plan(plan))
        assert "parts" not in data

    def test_parts_round_trip(self, denoise_small):
        plan, _, _ = plan_for(denoise_small, streams=2)
        program = bufferize_plan(plan)
        data = program_to_json(program)
        assert len(data["parts"]) == 2
        again = program_from_json(data)
        assert again.parts == program.parts
        assert program_to_json(again) == data

    def test_validation_rejects_corrupt_parts(self, denoise_small):
        plan, _, _ = plan_for(denoise_small, streams=2)
        base = program_to_json(bufferize_plan(plan))

        def mutate(fn):
            data = json.loads(json.dumps(base))
            fn(data)
            return data

        bad_order = mutate(
            lambda d: d["parts"].reverse()
        )
        bad_slot = mutate(
            lambda d: d["parts"][0]["reads"].__setitem__(0, 99)
        )
        bad_reuse = mutate(
            lambda d: d["parts"][-1].update(reuse_offsets=[1, 2, 3])
        )
        for data in (bad_order, bad_slot, bad_reuse):
            with pytest.raises(LoweringError):
                validate_program(program_from_json(data))

    def test_validation_rejects_corrupt_programs(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        base = program_to_json(bufferize_plan(plan))

        wrong_version = dict(base, version=99)
        bad_reads = dict(base, reads=[])
        unbalanced = dict(base, ops=base["ops"][:-1])
        for data in (wrong_version, bad_reads, unbalanced):
            with pytest.raises(LoweringError):
                validate_program(program_from_json(data))

    def test_validation_rejects_bad_read_slot(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        data = program_to_json(bufferize_plan(plan))
        for op in data["ops"]:
            if op["op"] == "read":
                op["ref"] = len(data["reads"]) + 3
                break
        with pytest.raises(LoweringError):
            validate_program(program_from_json(data))


class TestBitIdentity:
    @pytest.mark.parametrize(
        "spec", ALL_KERNELS, ids=lambda s: s.name
    )
    def test_kernel_matches_golden_digest(self, spec):
        plan, _, _ = plan_for(spec)
        kernel = convert(bufferize_plan(plan))
        for seed in (2014, 7):
            row = kernel.run(make_input(spec, seed=seed))
            digest = hashlib.sha256(
                np.ascontiguousarray(row, dtype=np.float64).tobytes()
            ).hexdigest()
            _, _, golden_digest = execute_stencil(spec, seed)
            assert digest == golden_digest, spec.name

    def test_gather_domain_matches_golden(self):
        spec = skewed_denoise(rows=8, cols=10)
        plan, _, _ = plan_for(spec)
        kernel = convert(bufferize_plan(plan))
        row = kernel.run(make_input(spec, seed=3))
        digest = hashlib.sha256(
            np.ascontiguousarray(row, dtype=np.float64).tobytes()
        ).hexdigest()
        _, _, golden_digest = execute_stencil(spec, 3)
        assert digest == golden_digest

    @pytest.mark.parametrize("streams", [2, 3])
    def test_multi_stream_kernel_matches_golden(
        self, denoise_small, streams
    ):
        plan, _, _ = plan_for(denoise_small, streams=streams)
        kernel = convert(bufferize_plan(plan))
        for seed in (2014, 7):
            row = kernel.run(make_input(denoise_small, seed=seed))
            digest = hashlib.sha256(
                np.ascontiguousarray(row, dtype=np.float64).tobytes()
            ).hexdigest()
            _, _, golden_digest = execute_stencil(denoise_small, seed)
            assert digest == golden_digest

    def test_chunked_gather_matches_eager(self):
        """Forcing the chunked regime (tiny gather_limit) replays the
        gather table chunk by chunk and still reproduces the eager
        kernel bit for bit."""
        spec = skewed_denoise(rows=8, cols=10)
        plan, _, _ = plan_for(spec)
        program = bufferize_plan(plan)
        eager = convert(program)
        chunked = convert(program, gather_limit=4)
        grid = make_input(spec, seed=3)
        assert np.array_equal(chunked.run(grid), eager.run(grid))
        digest = hashlib.sha256(
            np.ascontiguousarray(
                chunked.run(grid), dtype=np.float64
            ).tobytes()
        ).hexdigest()
        _, _, golden_digest = execute_stencil(spec, 3)
        assert digest == golden_digest

    def test_batch_rows_match_single_runs(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        kernel = convert(bufferize_plan(plan))
        grids = [make_input(denoise_small, seed=s) for s in range(3)]
        batch = kernel.run_batch(np.stack(grids))
        assert batch.shape[0] == 3
        for grid, row in zip(grids, batch):
            assert np.array_equal(kernel.run(grid), row)


class TestEngine:
    def test_kernel_is_memoized(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        engine = CompiledEngine()
        first = engine.kernel_for(plan)
        assert first.built
        assert first.program_json is not None
        second = engine.kernel_for(plan)
        assert not second.built
        assert second.kernel is first.kernel

    def test_unsupported_verdict_is_cached(self):
        spec = skewed_denoise(rows=8, cols=10)
        plan, _, _ = plan_for(spec)
        tight = LoweringConfig(gather_limit=2, gather_hard_limit=4)
        engine = CompiledEngine(config=tight)
        for _ in range(2):
            with pytest.raises(LoweringUnsupported):
                engine.kernel_for(plan)

    def test_unsupported_memo_is_keyed_on_config(self):
        """Regression: the engine once memoized LoweringUnsupported by
        fingerprint alone, so a refusal under one lowering config
        (tiny gather hard limit) poisoned every other config of the
        same plan for the life of the engine."""
        spec = skewed_denoise(rows=8, cols=10)
        plan, _, _ = plan_for(spec)
        engine = CompiledEngine()
        tight = LoweringConfig(gather_limit=2, gather_hard_limit=4)
        with pytest.raises(LoweringUnsupported):
            engine.kernel_for(plan, config=tight)
        # The default config must still lower this plan.
        result = engine.kernel_for(plan)
        assert result.built
        # ... and the tight config's verdict survives alongside it.
        with pytest.raises(LoweringUnsupported):
            engine.kernel_for(plan, config=tight)

    def test_multi_stream_kernel_is_memoized(self, denoise_small):
        plan, _, _ = plan_for(denoise_small, streams=2)
        engine = CompiledEngine()
        first = engine.kernel_for(plan)
        assert first.built
        second = engine.kernel_for(plan)
        assert second.kernel is first.kernel

    def test_matching_sidecar_is_not_repersisted(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        engine = CompiledEngine()
        plan.buffer_program = engine.kernel_for(plan).program_json
        engine.forget(plan.fingerprint)
        again = engine.kernel_for(plan)
        assert again.built
        assert again.program_json is None  # stored sidecar matched

    def test_tampered_sidecar_raises_mismatch(self, denoise_small):
        plan, _, _ = plan_for(denoise_small)
        engine = CompiledEngine()
        program = dict(engine.kernel_for(plan).program_json)
        program["reads"] = [
            dict(r, flat=r["flat"] + 1) for r in program["reads"]
        ]
        plan.buffer_program = program
        engine.forget(plan.fingerprint)
        with pytest.raises(ProgramMismatchError):
            engine.kernel_for(plan)

    def test_input_grids_are_content_addressed(self, denoise_small):
        engine = CompiledEngine()
        a = engine.input_grid(denoise_small, 5)
        b = engine.input_grid(denoise_small, 5)
        assert a is b  # same (shape, seed) -> same array object
        assert not a.flags.writeable
        assert np.array_equal(a, make_input(denoise_small, seed=5))
        assert not np.shares_memory(
            a, engine.input_grid(denoise_small, 6)
        )

    def test_grid_cache_is_byte_bounded(self, denoise_small):
        one = make_input(denoise_small, seed=0).nbytes
        engine = CompiledEngine(grid_cache_bytes=2 * one)
        for seed in range(6):
            engine.input_grid(denoise_small, seed)
        assert len(engine._grids) <= 3  # 2 within budget + newest
