"""Disabled instrumentation must not slow the simulator cycle loop.

The contract: with no probe attached, :class:`ChainSimulator` pays one
attribute check per cycle.  This test measures that cost against a
baseline simulator whose ``_step`` is the pre-instrumentation loop
(verbatim, minus the probe hook) and asserts the slowdown stays within
5% plus a small absolute allowance that absorbs timer jitter on a busy
CI machine.  Trials are interleaved and the minimum per variant is
used, which cancels transient load almost entirely.
"""

import time
from typing import Dict, Optional

from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator, _element_label
from repro.stencil.golden import make_input
from repro.stencil.kernels import DENOISE

#: Mid-size grid: ~2.2k cycles per run, milliseconds of wall time.
GRID = (40, 56)
TRIALS = 5
#: Relative budget for the per-cycle probe check (the 5% contract)
#: plus an absolute millisecond of allowance for scheduler noise.
REL_BUDGET = 1.05
ABS_BUDGET_S = 1e-3


class _BaselineSimulator(ChainSimulator):
    """The cycle loop exactly as it was without probe plumbing."""

    def _step(self) -> bool:
        progress = False
        accepted: Dict[int, bool] = {}
        if self._bus is not None:
            self._bus.begin_cycle()

        if self._kernel.try_fire(self._filters, self.cycle):
            progress = True

        streamed_label: Optional[str] = None
        for seg in self._segments:
            for k in range(seg.last, seg.first - 1, -1):
                flt = self._filters[k]
                if not flt.ready:
                    accepted[k] = False
                    continue
                upstream = seg.upstream_of(k)
                if upstream is None:
                    accepted[k] = False
                    continue
                fifo_out = seg.fifo_after(k)
                if fifo_out is not None and fifo_out.full:
                    accepted[k] = False
                    continue
                element = seg.pop_upstream(k)
                if fifo_out is not None:
                    fifo_out.push(element)
                flt.accept(element)
                accepted[k] = True
                progress = True
                if seg is self._segments[0] and k == seg.first:
                    streamed_label = _element_label(
                        self.spec.input_array, element
                    )

        for seg in self._segments:
            seg.stream.tick()

        for k, flt in enumerate(self._filters):
            if not accepted.get(k, False):
                flt.mark_no_input()

        if self.trace is not None:
            self.trace.record(
                cycle=self.cycle,
                stream_label=streamed_label,
                filter_statuses=[f.status for f in self._filters],
                fifo_occupancy={
                    f.fifo_id: len(f)
                    for seg in self._segments
                    for f in seg.fifos
                },
            )
        return progress


def _timed_run(sim_cls, spec, system, grid) -> float:
    sim = sim_cls(spec, system, grid)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def test_disabled_instrumentation_overhead_within_budget():
    spec = DENOISE.with_grid(GRID)
    system = build_memory_system(spec.analysis())
    grid = make_input(spec)

    # Warm both paths once (allocator, caches, bytecode specializer).
    _timed_run(_BaselineSimulator, spec, system, grid)
    _timed_run(ChainSimulator, spec, system, grid)

    baseline = float("inf")
    instrumented = float("inf")
    for _ in range(TRIALS):
        baseline = min(
            baseline, _timed_run(_BaselineSimulator, spec, system, grid)
        )
        instrumented = min(
            instrumented, _timed_run(ChainSimulator, spec, system, grid)
        )

    budget = baseline * REL_BUDGET + ABS_BUDGET_S
    assert instrumented <= budget, (
        f"disabled-instrumentation cycle loop took {instrumented:.4f}s "
        f"vs baseline {baseline:.4f}s (budget {budget:.4f}s)"
    )


def test_baseline_and_instrumented_agree():
    """The baseline copy must stay behaviourally identical."""
    spec = DENOISE.with_grid((12, 16))
    system = build_memory_system(spec.analysis())
    grid = make_input(spec)
    a = _BaselineSimulator(spec, system, grid).run()
    b = ChainSimulator(spec, system, grid).run()
    assert a.output_values() == b.output_values()
    assert a.stats.total_cycles == b.stats.total_cycles
