"""Unit tests for linear cyclic partitioning (baseline [5, 6])."""

import pytest

from repro.partitioning.base import PartitioningInfeasibleError
from repro.partitioning.cyclic import (
    bank_count_vs_row_size,
    is_conflict_free,
    linear_offsets,
    minimum_banks_linear,
    pairwise_differences,
    plan_cyclic,
)
from repro.stencil.kernels import DENOISE, PAPER_BENCHMARKS


DENOISE_OFFSETS = [(0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)]


class TestLinearOffsets:
    def test_row_major_values(self):
        vals = linear_offsets(DENOISE_OFFSETS, (768, 1024))
        assert set(vals) == {0, 1, -1, 1024, -1024}

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            linear_offsets([(0, 0, 0)], (8, 8))

    def test_3d_strides(self):
        vals = linear_offsets(
            [(1, 0, 0), (0, 1, 0), (0, 0, 1)], (4, 5, 6)
        )
        assert vals == [30, 6, 1]


class TestConflictFreedom:
    def test_distinct_residues(self):
        assert is_conflict_free([0, 1, 2, 3], 4)
        assert not is_conflict_free([0, 4], 4)

    def test_pairwise_differences(self):
        diffs = pairwise_differences([0, 1, 1024])
        assert sorted(diffs) == [1, 1023, 1024]


class TestMinimumBanks:
    def test_denoise_at_row_1024_needs_6(self):
        # 1024 mod 5 == 4 == -1 -> the (0,-1)/(−1,0) pair collides, so
        # 5 banks are infeasible; 6 work (Fig 5's behaviour).
        assert (
            minimum_banks_linear(DENOISE_OFFSETS, (768, 1024)) == 6
        )

    def test_denoise_at_row_1022_needs_5(self):
        assert (
            minimum_banks_linear(DENOISE_OFFSETS, (768, 1022)) == 5
        )

    def test_lower_bound_is_n(self):
        for spec in PAPER_BENCHMARKS:
            analysis = spec.analysis()
            banks = minimum_banks_linear(
                analysis.offsets(), analysis.stream_domain().shape
            )
            assert banks >= spec.n_points, spec.name

    def test_infeasible_raises(self):
        # Offsets 0 and 12 with max_banks < 13 conflict for every N
        # dividing 12 ... use max_banks=4 and diffs {12}: 12 mod 2,3,4
        # are all 0.
        with pytest.raises(PartitioningInfeasibleError):
            minimum_banks_linear(
                [(0, 0), (0, 12)], (8, 24), max_banks=4
            )


class TestFig5Sweep:
    def test_range_matches_paper(self):
        """The paper's Fig 5: for the constant 5-point window the bank
        count ranges from 5 to 8 as the row size changes (checked over
        the rows around the DENOISE grid; pathological rows divisible
        by many bank counts can exceed 8 — see bench_fig5)."""
        sweep = bank_count_vs_row_size(
            DENOISE.window, range(1020, 1033)
        )
        banks = [b for _, b in sweep]
        assert min(banks) == 5
        assert max(banks) == 8

    def test_bank_count_varies_with_row_size(self):
        sweep = bank_count_vs_row_size(
            DENOISE.window, range(1020, 1031)
        )
        assert len({b for _, b in sweep}) > 1

    def test_requires_2d_window(self):
        from repro.stencil.spec import StencilWindow

        w3 = StencilWindow.von_neumann(3, 1)
        with pytest.raises(ValueError):
            bank_count_vs_row_size(w3, [16])

    def test_too_small_row_rejected(self):
        with pytest.raises(ValueError):
            bank_count_vs_row_size(DENOISE.window, [2])


class TestPlanCyclic:
    def test_plan_is_conflict_free_by_construction(self):
        from repro.partitioning.verify import verify_uniform_plan

        analysis = DENOISE.with_grid((16, 20)).analysis()
        plan = plan_cyclic(analysis)
        report = verify_uniform_plan(plan, analysis)
        assert report.conflict_free
        assert report.achieved_ii == 1

    def test_banks_uniform(self):
        plan = plan_cyclic(DENOISE.analysis())
        sizes = {b.capacity for b in plan.banks}
        assert len(sizes) == 1

    def test_total_size_at_least_window(self):
        analysis = DENOISE.analysis()
        plan = plan_cyclic(analysis)
        assert plan.total_size >= analysis.minimum_total_buffer()

    def test_scheme_label(self):
        plan = plan_cyclic(DENOISE.analysis())
        assert plan.scheme == "cyclic_linear"

    def test_dsp_flag_for_non_pow2_banks(self):
        plan = plan_cyclic(DENOISE.analysis())
        if plan.num_banks & (plan.num_banks - 1):
            assert plan.uses_dsp_address_transform
