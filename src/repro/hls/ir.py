"""Dataflow IR for the computation kernel (the right branch of Fig 11).

HLS-lite compiles the kernel's expression tree into a dataflow graph of
primitive operations (loads from the memory system's data ports,
constants, arithmetic), which the scheduler then maps onto clock cycles.
This substitutes for Vivado HLS in the paper's flow: it produces the
pipeline latency, initiation interval and operator counts that the
resource and timing models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..polyhedral.lexorder import Vector
from ..stencil.expr import BinOp, Const, Expr, Ref, UnOp

#: Opcodes of the dataflow IR.
LOAD = "load"
CONST = "const"


@dataclass(frozen=True)
class Operation:
    """One IR operation.

    ``operands`` are node ids of the producing operations; ``payload``
    holds the reference offset for loads / the value for constants.
    """

    node_id: int
    opcode: str
    operands: Tuple[int, ...]
    payload: object = None

    @property
    def is_input(self) -> bool:
        return self.opcode in (LOAD, CONST)


class DataflowGraph:
    """A DAG of operations with one designated output node.

    Common subexpressions are shared structurally: identical subtree
    shapes hash to the same node (value numbering), so e.g. the two uses
    of ``se`` in the Sobel kernel become one load feeding two adders.
    """

    def __init__(self) -> None:
        self.operations: List[Operation] = []
        self._value_numbers: Dict[tuple, int] = {}
        self.output: Optional[int] = None

    # ------------------------------------------------------------------
    def _intern(
        self, opcode: str, operands: Tuple[int, ...], payload: object
    ) -> int:
        key = (opcode, operands, payload)
        if key in self._value_numbers:
            return self._value_numbers[key]
        node_id = len(self.operations)
        self.operations.append(
            Operation(node_id, opcode, operands, payload)
        )
        self._value_numbers[key] = node_id
        return node_id

    def add_load(self, array: str, offset: Vector) -> int:
        return self._intern(LOAD, (), (array, offset))

    def add_const(self, value: float) -> int:
        return self._intern(CONST, (), value)

    def add_op(self, opcode: str, *operands: int) -> int:
        for o in operands:
            if not 0 <= o < len(self.operations):
                raise ValueError(f"unknown operand node {o}")
        return self._intern(opcode, tuple(operands), None)

    # ------------------------------------------------------------------
    @classmethod
    def from_expression(cls, expr: Expr) -> "DataflowGraph":
        graph = cls()

        def build(node: Expr) -> int:
            if isinstance(node, Ref):
                return graph.add_load(node.array, node.offset)
            if isinstance(node, Const):
                return graph.add_const(node.value)
            if isinstance(node, UnOp):
                return graph.add_op(node.op, build(node.operand))
            if isinstance(node, BinOp):
                return graph.add_op(
                    node.op, build(node.left), build(node.right)
                )
            raise TypeError(f"unknown expression node {node!r}")

        graph.output = build(expr)
        return graph

    # ------------------------------------------------------------------
    @property
    def n_operations(self) -> int:
        return len(self.operations)

    def loads(self) -> List[Operation]:
        return [op for op in self.operations if op.opcode == LOAD]

    def arithmetic_ops(self) -> List[Operation]:
        return [op for op in self.operations if not op.is_input]

    def opcode_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for op in self.arithmetic_ops():
            hist[op.opcode] = hist.get(op.opcode, 0) + 1
        return hist

    def consumers(self) -> Dict[int, List[int]]:
        """node id -> ids of operations that read it."""
        out: Dict[int, List[int]] = {
            op.node_id: [] for op in self.operations
        }
        for op in self.operations:
            for operand in op.operands:
                out[operand].append(op.node_id)
        return out

    def topological_order(self) -> List[Operation]:
        """Operations in dependency order (construction order is already
        topological because operands are built before users)."""
        return list(self.operations)

    def validate(self) -> None:
        """Structural checks: one output, acyclic by construction,
        every non-output node is consumed."""
        if self.output is None:
            raise ValueError("graph has no output node")
        consumers = self.consumers()
        for op in self.operations:
            if op.node_id != self.output and not consumers[op.node_id]:
                raise ValueError(
                    f"dead operation {op.node_id} ({op.opcode})"
                )
            for operand in op.operands:
                if operand >= op.node_id:
                    raise ValueError("operand does not precede user")
