"""Unit tests for repro.service.transport: backoff, handshake,
heartbeat wedge detection and the socket codec.

The backoff/heartbeat/connect-budget tests run against scripted fakes —
no real network — so the policy machinery is tested in isolation.  A
small set of codec tests use a real localhost socket pair because the
framing itself is the unit under test there.
"""

import json
import socket
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.proto import PROTO_VERSION
from repro.service.transport import (
    HANDSHAKE_VERSION,
    BackoffPolicy,
    HandshakeError,
    Heartbeat,
    Hello,
    NodeUnavailableError,
    SocketChaos,
    SocketServer,
    connect_once,
    connect_with_backoff,
    parse_address,
)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)

    def test_hostname(self):
        assert parse_address("example.test:1") == ("example.test", 1)

    @pytest.mark.parametrize("bad", ["", "host", ":80", "host:nan"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestBackoffPolicy:
    def test_ceiling_is_exponential_then_capped(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=1.0, multiplier=2.0)
        assert policy.ceiling(0) == pytest.approx(0.1)
        assert policy.ceiling(1) == pytest.approx(0.2)
        assert policy.ceiling(2) == pytest.approx(0.4)
        assert policy.ceiling(10) == pytest.approx(1.0)  # capped

    def test_jitter_bounds(self):
        """Every delay lands in [0, ceiling) — full jitter."""
        policy = BackoffPolicy(base_s=0.05, cap_s=2.0, seed=7)
        for attempt in range(12):
            for key in ("node-0", "node-1", "10.0.0.1:9"):
                d = policy.delay(attempt, key)
                assert 0.0 <= d < policy.ceiling(attempt)

    def test_deterministic_per_seed_key_attempt(self):
        a = BackoffPolicy(seed=3)
        b = BackoffPolicy(seed=3)
        assert a.delay(4, "k") == b.delay(4, "k")

    def test_decorrelated_across_keys_and_seeds(self):
        policy = BackoffPolicy(seed=0)
        assert policy.delay(2, "node-0") != policy.delay(2, "node-1")
        assert BackoffPolicy(seed=0).delay(2, "k") != BackoffPolicy(
            seed=1
        ).delay(2, "k")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(cap_s=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)


class TestConnectWithBackoff:
    """Budget/retry behavior against scripted connect/sleep fakes."""

    ADDRESS = ("198.51.100.1", 9)  # TEST-NET; never dialed (fakes)
    HELLO = Hello(node_id="t", role="client")

    def test_budget_exhaustion_is_node_unavailable(self):
        attempts, sleeps = [], []

        def connect(address, hello):
            attempts.append(address)
            raise ConnectionRefusedError("refused")

        with pytest.raises(NodeUnavailableError) as err:
            connect_with_backoff(
                self.ADDRESS,
                self.HELLO,
                BackoffPolicy(seed=1),
                max_attempts=4,
                sleep=sleeps.append,
                connect=connect,
            )
        assert len(attempts) == 4
        assert len(sleeps) == 3  # no sleep after the final attempt
        assert err.value.kind == "node_unavailable"
        assert "refused" in str(err.value)

    def test_sleeps_follow_the_policy(self):
        policy = BackoffPolicy(seed=5)
        sleeps = []

        def connect(address, hello):
            raise ConnectionRefusedError

        with pytest.raises(NodeUnavailableError):
            connect_with_backoff(
                self.ADDRESS,
                self.HELLO,
                policy,
                max_attempts=3,
                sleep=sleeps.append,
                connect=connect,
            )
        key = f"{self.ADDRESS[0]}:{self.ADDRESS[1]}"
        assert sleeps == [policy.delay(0, key), policy.delay(1, key)]

    def test_succeeds_after_transient_failures(self):
        calls = []

        def connect(address, hello):
            calls.append(address)
            if len(calls) < 3:
                raise ConnectionResetError
            return "the-connection"

        conn = connect_with_backoff(
            self.ADDRESS,
            self.HELLO,
            BackoffPolicy(seed=0),
            max_attempts=5,
            sleep=lambda s: None,
            connect=connect,
        )
        assert conn == "the-connection"
        assert len(calls) == 3

    def test_handshake_error_is_never_retried(self):
        calls = []

        def connect(address, hello):
            calls.append(address)
            raise HandshakeError("wrong dialect")

        with pytest.raises(HandshakeError):
            connect_with_backoff(
                self.ADDRESS,
                self.HELLO,
                BackoffPolicy(seed=0),
                max_attempts=5,
                sleep=lambda s: None,
                connect=connect,
            )
        assert len(calls) == 1

    def test_on_attempt_observes_each_failure(self):
        seen = []

        def connect(address, hello):
            raise ConnectionRefusedError

        with pytest.raises(NodeUnavailableError):
            connect_with_backoff(
                self.ADDRESS,
                self.HELLO,
                BackoffPolicy(seed=0),
                max_attempts=3,
                sleep=lambda s: None,
                connect=connect,
                on_attempt=lambda n, exc: seen.append(n),
            )
        assert seen == [0, 1, 2]


class TestHello:
    def test_round_trip(self):
        hello = Hello(
            node_id="n0", role="server", backends=("compiled",)
        )
        assert Hello.from_json(hello.to_json()) == hello

    def test_extra_keys_are_tolerated(self):
        data = Hello(node_id="n", role="client").to_json()
        data["future_extension"] = {"x": 1}
        assert Hello.from_json(data).node_id == "n"

    def test_rejects_non_hello_first_line(self):
        with pytest.raises(HandshakeError):
            Hello.from_json({"proto": PROTO_VERSION, "id": "r1"})

    def test_rejects_wrong_proto(self):
        ours = Hello(node_id="a", role="client")
        theirs = Hello(
            node_id="b", role="server", proto=PROTO_VERSION + 1
        )
        with pytest.raises(HandshakeError):
            ours.check_peer(theirs)

    def test_rejects_wrong_handshake_dialect(self):
        ours = Hello(node_id="a", role="client")
        theirs = Hello(
            node_id="b",
            role="server",
            handshake=HANDSHAKE_VERSION + 1,
        )
        with pytest.raises(HandshakeError):
            ours.check_peer(theirs)


class TestHeartbeat:
    """Scripted-clock heartbeat: due/pong/wedge with no real time."""

    def make(self, interval=1.0, timeout=5.0):
        clock = {"t": 0.0}
        hb = Heartbeat(
            interval_s=interval,
            timeout_s=timeout,
            now=lambda: clock["t"],
        )
        return hb, clock

    def test_due_immediately_then_paced(self):
        hb, clock = self.make(interval=2.0)
        assert hb.due()
        hb.make_ping()
        assert not hb.due()
        clock["t"] = 2.0
        assert hb.due()

    def test_pong_round_trip_reports_rtt(self):
        hb, clock = self.make()
        ping = hb.make_ping(scope="hb-0")
        assert ping["control"] == "ping"
        clock["t"] = 0.25
        assert hb.observe_pong(ping["id"]) == pytest.approx(0.25)

    def test_unknown_and_duplicate_pongs_return_none(self):
        hb, clock = self.make()
        ping = hb.make_ping()
        assert hb.observe_pong("no-such-ping") is None
        hb.observe_pong(ping["id"])
        assert hb.observe_pong(ping["id"]) is None

    def test_wedge_when_outstanding_ping_times_out(self):
        """The half-open signature: pings leave, pongs never return."""
        hb, clock = self.make(timeout=5.0)
        hb.make_ping()
        clock["t"] = 5.0
        assert not hb.wedged()  # exactly at the limit, not past it
        clock["t"] = 5.01
        assert hb.wedged()

    def test_answered_pings_never_wedge(self):
        hb, clock = self.make(interval=1.0, timeout=5.0)
        for k in range(10):
            ping = hb.make_ping()
            clock["t"] = float(k)
            hb.observe_pong(ping["id"])
        clock["t"] = 100.0
        assert not hb.wedged()

    def test_reset_clears_outstanding(self):
        hb, clock = self.make(timeout=1.0)
        hb.make_ping()
        clock["t"] = 10.0
        assert hb.wedged()
        hb.reset()
        assert not hb.wedged()
        assert hb.due()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Heartbeat(interval_s=0.0)
        with pytest.raises(ValueError):
            Heartbeat(timeout_s=-1.0)


class _Slot:
    """A pre-resolved ResultSlot stand-in."""

    def __init__(self, response):
        self._response = response

    def result(self, timeout=None):
        return self._response


class _EchoResponse:
    def __init__(self, document):
        self._document = document

    def to_json(self):
        return self._document


def _echo_submit(line):
    """A fake service: echoes the request id back with status ok."""
    document = json.loads(line)
    return _Slot(
        _EchoResponse(
            {
                "proto": PROTO_VERSION,
                "id": document.get("id"),
                "status": "ok",
                "summary": {"echo": True},
            }
        )
    )


class TestSocketServer:
    """Real-localhost codec tests: handshake, ping, request/response."""

    def test_handshake_and_echo(self):
        registry = MetricsRegistry()
        with SocketServer(
            _echo_submit, node_id="srv", registry=registry
        ) as server:
            conn = connect_once(
                server.address, Hello(node_id="cli", role="client")
            )
            try:
                assert conn.peer.node_id == "srv"
                assert conn.peer.role == "server"
                conn.send({"proto": PROTO_VERSION, "id": "r1"})
                reply = json.loads(conn.readline())
                assert reply["id"] == "r1"
                assert reply["status"] == "ok"
            finally:
                conn.close()
        assert (
            registry.counter("service_connections_total").value == 1
        )

    def test_transport_level_pong(self):
        with SocketServer(_echo_submit) as server:
            conn = connect_once(
                server.address, Hello(node_id="cli", role="client")
            )
            try:
                hb = Heartbeat()
                conn.send(hb.make_ping(scope="t"))
                pong = json.loads(conn.readline())
                assert pong["summary"]["pong"] is True
                assert hb.observe_pong(pong["id"]) is not None
            finally:
                conn.close()

    def test_incompatible_client_gets_typed_rejection(self):
        registry = MetricsRegistry()
        with SocketServer(_echo_submit, registry=registry) as server:
            bad = Hello(
                node_id="cli",
                role="client",
                handshake=HANDSHAKE_VERSION + 1,
            )
            with pytest.raises(HandshakeError) as err:
                connect_once(server.address, bad)
            assert "handshake dialect" in str(err.value)
        assert (
            registry.counter(
                "service_handshake_failures_total"
            ).value == 1
        )

    def test_half_open_chaos_swallows_response_but_not_connection(self):
        """hang → the reply vanishes while the socket stays up; a
        later heartbeat is the only way to notice (it is swallowed
        too, which is exactly the wedge signature)."""
        chaos = SocketChaos(seed=0, half_open_rate=1.0)
        with SocketServer(_echo_submit, chaos=chaos) as server:
            conn = connect_once(
                server.address, Hello(node_id="cli", role="client")
            )
            try:
                conn.send({"proto": PROTO_VERSION, "id": "r1"})
                # Give the response path time to go half-open, then
                # probe: sends still succeed, nothing ever answers.
                time.sleep(0.2)
                conn.send({"control": "ping", "id": "hb-1"})
                got = {}

                def read():
                    got["line"] = conn.readline()

                reader = threading.Thread(target=read, daemon=True)
                reader.start()
                reader.join(timeout=0.5)
                assert reader.is_alive()  # nothing ever arrives
            finally:
                conn.close()

    def test_trickle_chaos_delivers_intact_response(self):
        chaos = SocketChaos(
            seed=0,
            trickle_rate=1.0,
            trickle_chunk=3,
            trickle_delay_s=0.001,
        )
        with SocketServer(_echo_submit, chaos=chaos) as server:
            conn = connect_once(
                server.address, Hello(node_id="cli", role="client")
            )
            try:
                conn.send({"proto": PROTO_VERSION, "id": "r-slow"})
                reply = json.loads(conn.readline())
                assert reply["id"] == "r-slow"
                assert reply["status"] == "ok"
            finally:
                conn.close()

    def test_conn_kill_chaos_closes_connection(self):
        chaos = SocketChaos(seed=0, conn_kill_rate=1.0)
        with SocketServer(_echo_submit, chaos=chaos) as server:
            conn = connect_once(
                server.address, Hello(node_id="cli", role="client")
            )
            try:
                conn.send({"proto": PROTO_VERSION, "id": "r1"})
                assert conn.readline() == ""  # EOF, not a reply
            finally:
                conn.close()


class TestSocketConnection:
    def test_send_after_close_raises(self):
        a, b = socket.socketpair()
        from repro.service.transport import SocketConnection

        conn = SocketConnection(a, Hello(node_id="p", role="server"))
        conn.close()
        b.close()
        with pytest.raises(BrokenPipeError):
            conn.send({"x": 1})
