"""The versioned wire protocol: round trips, taxonomy, compat shim.

Every JSONL line crossing a service boundary is a :class:`Request` or
:class:`Response`.  ``proto: 2`` requests describe their work in a
typed ``workload`` object (single / iterate / graph); ``proto: 1``
requests keep the flat ``benchmark``/``spec`` shape and parse through
a compat shim counted on ``service_proto_v1_total``.  These tests pin
the contract:

* ``to_json``/``from_json`` round-trip losslessly (property-tested
  over generated requests — both proto dialects — and responses);
* both closed vocabularies (``status``, ``error.kind``) are enforced
  on parse, and unknown ``proto`` versions are rejected up front;
* the proto/shape cross-checks reject mixed envelopes with
  ``error.kind = "bad_workload"``;
* legacy bare dicts still parse through the compatibility shim and
  increment the ``service_proto_legacy_total`` deprecation counter.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.service.proto import (
    ERROR_KINDS,
    PROTO_VERSION,
    STATUSES,
    ErrorInfo,
    ProtoError,
    Request,
    Response,
    default_error_kind,
    error_response,
)
from repro.service.workload import Workload

BENCHMARKS = ("DENOISE", "SOBEL", "BICUBIC")


# -- strategies --------------------------------------------------------
request_strategy = st.builds(
    Request,
    id=st.one_of(st.none(), st.text(min_size=1, max_size=12)),
    benchmark=st.sampled_from(BENCHMARKS),
    grid=st.one_of(
        st.none(),
        st.lists(
            st.integers(min_value=1, max_value=64),
            min_size=1,
            max_size=3,
        ).map(tuple),
    ),
    streams=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
    timeout_s=st.one_of(
        st.none(),
        st.floats(min_value=0.5, max_value=600, allow_nan=False),
    ),
    validate=st.one_of(st.none(), st.booleans()),
    retries=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
)

error_strategy = st.builds(
    ErrorInfo,
    kind=st.sampled_from(ERROR_KINDS),
    detail=st.text(max_size=40),
)


@st.composite
def workload_strategy(draw):
    """A structurally valid workload of any kind."""
    kind = draw(st.sampled_from(["single", "iterate", "graph"]))
    fuse = draw(st.sampled_from(["auto", "never", "always"]))
    if kind == "single":
        return Workload.single(benchmark=draw(st.sampled_from(BENCHMARKS)))
    if kind == "iterate":
        return Workload.iterate(
            benchmark=draw(st.sampled_from(BENCHMARKS)),
            steps=draw(st.integers(min_value=1, max_value=6)),
            fuse=fuse,
        )
    n = draw(st.integers(min_value=1, max_value=4))
    nodes = tuple(
        {"id": f"n{i}", "benchmark": draw(st.sampled_from(BENCHMARKS))}
        for i in range(n)
    )
    edges = tuple([f"n{i}", f"n{i + 1}"] for i in range(n - 1))
    return Workload.from_json(
        {"kind": "graph", "nodes": list(nodes), "edges": list(edges),
         "fuse": fuse}
    )


workload_request_strategy = st.builds(
    Request,
    id=st.one_of(st.none(), st.text(min_size=1, max_size=12)),
    workload=workload_strategy(),
    grid=st.one_of(
        st.none(),
        st.lists(
            st.integers(min_value=1, max_value=64),
            min_size=1,
            max_size=3,
        ).map(tuple),
    ),
    streams=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)


@st.composite
def response_strategy(draw):
    status = draw(st.sampled_from(STATUSES))
    return Response(
        id=draw(st.one_of(st.none(), st.text(min_size=1, max_size=12))),
        status=status,
        benchmark=draw(st.one_of(st.none(), st.sampled_from(BENCHMARKS))),
        fingerprint=draw(st.one_of(st.none(), st.text(min_size=4, max_size=16))),
        latency_ms=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            )
        ),
        attempts=draw(st.one_of(st.none(), st.integers(1, 5))),
        cache=draw(
            st.one_of(
                st.none(),
                st.sampled_from(["hit", "disk", "miss", "coalesced"]),
            )
        ),
        validated=draw(st.one_of(st.none(), st.booleans())),
        retry_after_s=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=60, allow_nan=False),
            )
        ),
        node=draw(st.one_of(st.none(), st.integers(0, 7))),
        error=draw(st.one_of(st.none(), error_strategy))
        if status != "ok"
        else None,
    )


class TestRequestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(request_strategy)
    def test_round_trip_is_lossless(self, req):
        wire = req.to_json()
        # Flat benchmark/spec requests stay on the proto:1 dialect.
        assert wire["proto"] == 1
        # Through actual JSON text, exactly like the JSONL pipes.
        parsed = Request.from_json(json.loads(json.dumps(wire)))
        assert parsed == req
        # A second hop changes nothing (idempotent encoding).
        assert Request.from_json(parsed.to_json()) == parsed

    @settings(max_examples=200, deadline=None)
    @given(workload_request_strategy)
    def test_workload_round_trip_is_lossless(self, req):
        wire = req.to_json()
        assert wire["proto"] == PROTO_VERSION
        parsed = Request.from_json(json.loads(json.dumps(wire)))
        assert parsed == req
        assert parsed.workload == req.workload
        assert Request.from_json(parsed.to_json()) == parsed

    @settings(max_examples=100, deadline=None)
    @given(request_strategy)
    def test_unknown_keys_ignored_but_preserved_in_raw(self, req):
        wire = req.to_json()
        wire["x_experimental"] = {"nested": True}
        parsed = Request.from_json(wire)
        assert parsed == req
        assert parsed.raw["x_experimental"] == {"nested": True}

    def test_exactly_one_of_benchmark_spec_or_workload(self):
        with pytest.raises(ProtoError):
            Request(benchmark=None, spec=None)
        with pytest.raises(ProtoError):
            Request(benchmark="DENOISE", spec={"name": "x"})
        with pytest.raises(ProtoError):
            Request(
                benchmark="DENOISE",
                workload=Workload.single(benchmark="SOBEL"),
            )

    def test_proto_shape_cross_checks(self):
        # A workload rides proto 2, flat benchmark/spec ride proto 1;
        # mixing the dialects is a bad_workload error either way.
        with pytest.raises(ProtoError) as excinfo:
            Request(benchmark="DENOISE", proto=2)
        assert excinfo.value.kind == "bad_workload"
        with pytest.raises(ProtoError) as excinfo:
            Request(workload=Workload.single(benchmark="SOBEL"), proto=1)
        assert excinfo.value.kind == "bad_workload"
        for wire in (
            {"proto": 2, "benchmark": "SOBEL"},
            {"proto": 2, "spec": {"name": "x"}},
            {"proto": 2},
            {"proto": 2, "workload": "not-an-object"},
            {"proto": 2, "workload": {"kind": "iterate"}},
            {"proto": 1, "workload": {"kind": "single",
                                      "benchmark": "SOBEL"}},
        ):
            with pytest.raises(ProtoError) as excinfo:
                Request.from_json(wire)
            assert excinfo.value.kind == "bad_workload", wire

    def test_effective_workload_wraps_proto1_shapes(self):
        req = Request.from_json({"proto": 1, "benchmark": "SOBEL"})
        wrapped = req.effective_workload()
        assert wrapped.kind == "single"
        assert wrapped.kernel.benchmark == "SOBEL"
        wl = Workload.iterate(benchmark="SOBEL", steps=2)
        req2 = Request(workload=wl)
        assert req2.effective_workload() is wl
        with pytest.raises(ValueError):
            req2.resolve_spec()

    def test_grid_string_form_accepted(self):
        parsed = Request.from_json(
            {"proto": 1, "benchmark": "SOBEL", "grid": "10x12"}
        )
        assert parsed.grid == (10, 12)

    def test_bad_fields_raise_proto_error(self):
        for bad in (
            {"proto": 1, "benchmark": "SOBEL", "timeout_s": 0},
            {"proto": 1, "benchmark": "SOBEL", "retries": -1},
            {"proto": 1, "benchmark": "SOBEL", "streams": 0},
            {"proto": 1, "benchmark": "SOBEL", "grid": [0, 4]},
            {"proto": 1, "benchmark": "SOBEL", "spec": "not-an-object"},
            {"proto": 1, "benchmark": "SOBEL", "seed": "banana"},
            "not a dict",
        ):
            with pytest.raises(ProtoError):
                Request.from_json(bad)


class TestResponseRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(response_strategy())
    def test_round_trip_is_lossless(self, resp):
        wire = resp.to_json()
        assert wire["proto"] == PROTO_VERSION
        parsed = Response.from_json(json.loads(json.dumps(wire)))
        assert parsed == resp
        assert Response.from_json(parsed.to_json()) == parsed

    @settings(max_examples=100, deadline=None)
    @given(response_strategy())
    def test_mapping_access_matches_wire_encoding(self, resp):
        wire = resp.to_json()
        for key, value in wire.items():
            assert key in resp
            assert resp[key] == value
            assert resp.get(key) == value
        assert resp.get("definitely_not_a_field") is None
        assert set(resp.keys()) == set(wire.keys())

    def test_failure_without_error_gets_default_kind(self):
        for status in STATUSES:
            resp = Response(id="r", status=status)
            if status == "ok":
                assert resp.error is None
            else:
                assert resp.error is not None
                assert resp.error.kind == default_error_kind(status)

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtoError):
            Response(id="r", status="sideways")
        with pytest.raises(ProtoError):
            Response.from_json({"id": "r", "status": "sideways"})

    def test_missing_status_rejected(self):
        with pytest.raises(ProtoError):
            Response.from_json({"id": "r"})

    def test_legacy_string_error_parses_as_internal(self):
        parsed = Response.from_json(
            {"id": "r", "status": "error", "error": "it broke"}
        )
        assert parsed.error.kind == "internal"
        assert parsed.error.detail == "it broke"


class TestVersioning:
    def test_unknown_version_rejected_with_kind(self):
        for bad in (0, 3, 99, "1", 1.5, True):
            with pytest.raises(ProtoError) as excinfo:
                Request.from_json({"proto": bad, "benchmark": "SOBEL"})
            assert excinfo.value.kind == "unsupported_proto"
        with pytest.raises(ProtoError):
            Response.from_json({"proto": 7, "id": "r", "status": "ok"})

    def test_legacy_dict_counts_deprecation(self):
        registry = MetricsRegistry()
        Request.from_json({"benchmark": "SOBEL"}, registry=registry)
        Request.from_json(
            {"proto": 1, "benchmark": "SOBEL"}, registry=registry
        )
        assert (
            registry.counter("service_proto_legacy_total").value == 1
        )

    def test_proto_v1_counts_on_own_counter(self):
        registry = MetricsRegistry()
        Request.from_json(
            {"proto": 1, "benchmark": "SOBEL"}, registry=registry
        )
        Request.from_json(
            {
                "proto": 2,
                "workload": {"kind": "single", "benchmark": "SOBEL"},
            },
            registry=registry,
        )
        assert registry.counter("service_proto_v1_total").value == 1
        assert (
            registry.counter("service_proto_legacy_total").value == 0
        )

    def test_legacy_dict_warns_on_stderr_once(self, capsys):
        from repro.service import proto as proto_mod

        proto_mod._reset_legacy_warning()
        Request.from_json({"benchmark": "SOBEL"})
        Request.from_json({"benchmark": "DENOISE"})
        err = capsys.readouterr().err
        assert err.count("legacy bare-dict request") == 1
        # Versioned requests never trigger the warning.
        proto_mod._reset_legacy_warning()
        Request.from_json({"proto": 1, "benchmark": "SOBEL"})
        assert "legacy" not in capsys.readouterr().err


class TestTracePropagation:
    def test_round_trip_and_with_trace(self):
        req = Request(benchmark="SOBEL", id="r1")
        wire = req.to_json()
        assert "trace_id" not in wire  # absent until stamped
        stamped = req.with_trace("a" * 32, "b" * 16)
        assert stamped.trace_id == "a" * 32
        assert stamped.parent_span_id == "b" * 16
        assert req.trace_id is None  # original untouched
        parsed = Request.from_json(stamped.to_json())
        assert parsed.trace_id == "a" * 32
        assert parsed.parent_span_id == "b" * 16

    def test_response_trace_id_round_trips(self):
        resp = Response(id="r1", status="ok", trace_id="c" * 32)
        parsed = Response.from_json(resp.to_json())
        assert parsed.trace_id == "c" * 32
        bare = Response(id="r1", status="ok")
        assert "trace_id" not in bare.to_json()


class TestErrorTaxonomy:
    def test_kinds_are_closed(self):
        with pytest.raises(ProtoError):
            ErrorInfo(kind="made_up", detail="")

    def test_every_failure_status_has_a_default_kind(self):
        for status in STATUSES:
            if status == "ok":
                continue
            assert default_error_kind(status) in ERROR_KINDS

    def test_error_response_helper(self):
        resp = error_response(
            "r9", "circuit_open", "cooling down", retry_after_s=1.5
        )
        assert resp["status"] == "circuit_open"
        assert resp["error"]["kind"] == "circuit_open"
        assert resp["retry_after_s"] == 1.5
        assert Response.from_json(resp.to_json()) == resp
