"""Complete accelerator assembly (Fig 3).

An :class:`Accelerator` couples the generated memory system(s) with the
HLS-compiled computation kernel: the memory system streams the input
array once in lexicographic order and feeds every array reference's data
port; the fully pipelined kernel consumes all ``n`` ports per cycle and
emits one output per cycle in steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..stencil.spec import StencilSpec
from .memory_system import MemorySystem


@dataclass(frozen=True)
class KernelInfo:
    """Summary of the HLS-compiled computation kernel."""

    latency: int  # pipeline depth in cycles
    ii: int  # initiation interval (1 when fully pipelined)
    operation_counts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("kernel latency must be >= 0")
        if self.ii < 1:
            raise ValueError("kernel II must be >= 1")


@dataclass(frozen=True)
class Accelerator:
    """A complete stencil accelerator: memory systems + kernel."""

    spec: StencilSpec
    memory_systems: Tuple[MemorySystem, ...]
    kernel: KernelInfo

    def __post_init__(self) -> None:
        if not self.memory_systems:
            raise ValueError("an accelerator needs >= 1 memory system")

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def primary(self) -> MemorySystem:
        """The memory system of the (single) input array."""
        return self.memory_systems[0]

    @property
    def total_buffer_size(self) -> int:
        return sum(ms.total_buffer_size for ms in self.memory_systems)

    @property
    def num_banks(self) -> int:
        return sum(ms.num_banks for ms in self.memory_systems)

    @property
    def offchip_accesses_per_cycle(self) -> int:
        return sum(
            ms.offchip_accesses_per_cycle for ms in self.memory_systems
        )

    def expected_output_count(self) -> int:
        """Number of outputs one run produces (iteration-domain size)."""
        return self.spec.iteration_domain.count()

    def steady_state_cycles(self) -> int:
        """Lower-bound total cycles: fill latency + one output/cycle."""
        fill = max(
            (ms.total_buffer_size for ms in self.memory_systems),
            default=0,
        )
        return fill + self.expected_output_count() + self.kernel.latency

    def describe(self) -> str:
        lines = [
            f"Accelerator {self.name}: II={self.kernel.ii}, "
            f"kernel latency={self.kernel.latency}",
        ]
        for ms in self.memory_systems:
            lines.append(ms.describe())
        return "\n".join(lines)
