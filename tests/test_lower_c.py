"""Tests for the cffi-built C converter (``converter="c"``).

The C converter's contract is the same bit identity the NumPy
converter carries — double-precision IEEE semantics matching NumPy's
exact ufunc formulas (NaN propagation through min/max included) —
plus graceful degradation: with no C toolchain the build raises
:class:`ConverterUnavailable` and the engine silently serves the
NumPy kernel instead, recording the downgrade.
"""

import hashlib
import os

import numpy as np
import pytest

from repro.lower import (
    CompiledEngine,
    ConverterUnavailable,
    LoweringConfig,
    bufferize_plan,
    convert,
    converter_names,
    get_converter,
)
from repro.lower.convert_c import (
    CCompiledKernel,
    c_toolchain,
    generate_source,
)
from repro.service.executor import compile_plan, execute_stencil
from repro.service.fingerprint import CompileOptions, fingerprint
from repro.stencil import PAPER_BENCHMARKS, make_input, skewed_denoise
from repro.stencil.spec import StencilSpec, StencilWindow
from repro.stencil.expr import (
    Ref,
    absolute,
    maximum,
    minimum,
    square_root,
)

from conftest import SMALL_GRIDS, small_spec

needs_cc = pytest.mark.skipif(
    c_toolchain() is None, reason="no C toolchain on this machine"
)


def shrink(spec):
    if spec.name in SMALL_GRIDS:
        return small_spec(spec)
    return spec.with_grid(tuple(12 for _ in spec.grid))


def plan_for(spec, streams=1):
    opts = CompileOptions(offchip_streams=streams)
    fp = fingerprint(spec, opts)
    return compile_plan(spec, opts, fp)


def minmax_spec():
    """Min/max/sqrt soup — the ops whose C lowering could plausibly
    diverge from NumPy (fmin/fmax would, on NaN and signed zero)."""
    c, n, s = Ref((0, 0)), Ref((-1, 0)), Ref((1, 0))
    w, e = Ref((0, -1)), Ref((0, 1))
    expr = maximum(minimum(c, n - s), square_root(absolute(w * e))) - \
        minimum(maximum(w, e), c / 3.0)
    window = StencilWindow.from_offsets(
        [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    )
    return StencilSpec("MINMAX", (10, 12), window, expression=expr)


class TestCodegen:
    def test_source_is_deterministic(self, denoise_small):
        program = bufferize_plan(plan_for(denoise_small))
        assert generate_source(program) == generate_source(program)

    def test_source_mentions_both_entry_points(self, denoise_small):
        program = bufferize_plan(plan_for(denoise_small))
        src = generate_source(program)
        assert "kernel_box" in src
        assert "kernel_gather" in src

    def test_converter_is_registered(self):
        assert "numpy" in converter_names()
        if c_toolchain() is not None:
            assert "c" in converter_names()
            assert get_converter("c") is not None


@needs_cc
class TestCBitIdentity:
    @pytest.mark.parametrize(
        "spec",
        [shrink(s) for s in PAPER_BENCHMARKS],
        ids=lambda s: s.name,
    )
    def test_box_kernels_match_numpy_and_golden(self, spec):
        program = bufferize_plan(plan_for(spec))
        ck = CCompiledKernel(program)
        nk = convert(program)
        for seed in (2014, 7):
            grid = make_input(spec, seed=seed)
            c_row = np.ascontiguousarray(ck.run(grid), dtype=np.float64)
            assert np.array_equal(c_row, nk.run(grid), equal_nan=True)
            _, _, golden = execute_stencil(spec, seed)
            assert hashlib.sha256(c_row.tobytes()).hexdigest() == golden

    def test_multi_stream_matches_golden(self, denoise_small):
        program = bufferize_plan(plan_for(denoise_small, streams=2))
        ck = CCompiledKernel(program)
        row = np.ascontiguousarray(
            ck.run(make_input(denoise_small, seed=3)), dtype=np.float64
        )
        _, _, golden = execute_stencil(denoise_small, 3)
        assert hashlib.sha256(row.tobytes()).hexdigest() == golden

    @pytest.mark.parametrize("gather_limit", [None, 4])
    def test_gather_matches_numpy(self, gather_limit):
        spec = skewed_denoise(rows=8, cols=10)
        program = bufferize_plan(plan_for(spec))
        kwargs = (
            {} if gather_limit is None
            else {"gather_limit": gather_limit}
        )
        ck = CCompiledKernel(program, **kwargs)
        nk = convert(program, **kwargs)
        grid = make_input(spec, seed=3)
        assert np.array_equal(ck.run(grid), nk.run(grid))
        _, _, golden = execute_stencil(spec, 3)
        row = np.ascontiguousarray(ck.run(grid), dtype=np.float64)
        assert hashlib.sha256(row.tobytes()).hexdigest() == golden

    def test_minmax_nan_and_signed_zero_match_numpy(self):
        spec = minmax_spec()
        program = bufferize_plan(plan_for(spec))
        ck = CCompiledKernel(program)
        nk = convert(program)
        grid = make_input(spec, seed=1)
        # Poison the grid with the values where fmin/fmax-style C
        # lowering would diverge from NumPy's propagating formula.
        grid = grid.copy()
        grid[2, 2] = np.nan
        grid[3, 3] = -0.0
        grid[4, 4] = 0.0
        grid[5, 5] = np.inf
        grid[6, 6] = -np.inf
        c_row = np.ascontiguousarray(ck.run(grid), dtype=np.float64)
        n_row = np.ascontiguousarray(nk.run(grid), dtype=np.float64)
        assert c_row.tobytes() == n_row.tobytes()  # bit identity

    def test_batch_matches_numpy(self, denoise_small):
        program = bufferize_plan(plan_for(denoise_small))
        ck = CCompiledKernel(program)
        nk = convert(program)
        grids = [make_input(denoise_small, seed=s) for s in range(3)]
        batch = np.stack(grids)
        assert np.array_equal(ck.run_batch(batch), nk.run_batch(batch))


@needs_cc
class TestArtifactCache:
    def test_artifact_persists_and_reloads(self, denoise_small, tmp_path):
        plan = plan_for(denoise_small)
        program = bufferize_plan(plan)
        art = str(tmp_path)
        CCompiledKernel(program, artifact_dir=art)
        so = os.path.join(art, f"{plan.fingerprint}.c.so")
        meta = os.path.join(art, f"{plan.fingerprint}.c.json")
        assert os.path.exists(so) and os.path.exists(meta)
        stamp = os.path.getmtime(so)
        again = CCompiledKernel(program, artifact_dir=art)
        assert os.path.getmtime(so) == stamp  # reused, not rebuilt
        grid = make_input(denoise_small, seed=0)
        assert np.array_equal(
            again.run(grid), convert(program).run(grid)
        )

    def test_tampered_artifact_is_rebuilt(self, denoise_small, tmp_path):
        plan = plan_for(denoise_small)
        program = bufferize_plan(plan)
        art = str(tmp_path)
        CCompiledKernel(program, artifact_dir=art)
        so = os.path.join(art, f"{plan.fingerprint}.c.so")
        with open(so, "ab") as fh:
            fh.write(b"tampered")
        rebuilt = CCompiledKernel(program, artifact_dir=art)
        grid = make_input(denoise_small, seed=0)
        assert np.array_equal(
            rebuilt.run(grid), convert(program).run(grid)
        )


class TestDegradation:
    def test_no_toolchain_raises_unavailable(
        self, denoise_small, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CC", "")
        program = bufferize_plan(plan_for(denoise_small))
        assert c_toolchain() is None
        with pytest.raises(ConverterUnavailable):
            CCompiledKernel(program)

    def test_engine_degrades_to_numpy(self, denoise_small, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "")
        plan = plan_for(denoise_small)
        engine = CompiledEngine(config=LoweringConfig(converter="c"))
        result = engine.kernel_for(plan)
        assert result.built
        assert result.converter == "numpy"
        assert result.converter_fallback is not None
        row = result.kernel.run(make_input(denoise_small, seed=0))
        row = np.ascontiguousarray(row, dtype=np.float64)
        _, _, golden = execute_stencil(denoise_small, 0)
        assert hashlib.sha256(row.tobytes()).hexdigest() == golden

    @needs_cc
    def test_engine_uses_c_when_available(self, denoise_small):
        plan = plan_for(denoise_small)
        engine = CompiledEngine(config=LoweringConfig(converter="c"))
        result = engine.kernel_for(plan)
        assert result.built
        assert result.converter == "c"
        assert result.converter_fallback is None
        assert isinstance(result.kernel, CCompiledKernel)
