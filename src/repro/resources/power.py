"""Power estimation (Section 5.2's closing observation).

The paper found XPower dominated by static power, "almost invariant
with custom circuits", and notes that *with power gating* FPGA power
would be proportional to resource usage — "which is covered by
Table 5".  This module makes that proportionality explicit: a static
baseline for the powered-on region plus per-resource dynamic/leakage
coefficients, so resource savings translate into gated-power savings.

Coefficients are order-of-magnitude Virtex-7 figures (28 nm, 200 MHz,
moderate toggle rates); as with the resource model, the comparison
between designs is the target, not absolute watts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fpga import ResourceUsage

#: Per-unit power at 200 MHz, in milliwatts.
MW_PER_BRAM18 = 7.0
MW_PER_SLICE = 0.12
MW_PER_DSP = 8.0
#: Static power of the always-on fabric region (clocking, config).
STATIC_MW = 180.0


@dataclass(frozen=True)
class PowerEstimate:
    """Gated-power breakdown of one design."""

    dynamic_mw: float
    static_mw: float = STATIC_MW

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw

    @property
    def gated_total_mw(self) -> float:
        """Total if unused fabric is power-gated: usage-proportional
        (the paper's hypothetical)."""
        return self.dynamic_mw


def estimate_power(usage: ResourceUsage) -> PowerEstimate:
    """Usage-proportional power of one design's resource vector."""
    dynamic = (
        usage.bram_18k * MW_PER_BRAM18
        + usage.slices * MW_PER_SLICE
        + usage.dsp * MW_PER_DSP
    )
    return PowerEstimate(dynamic_mw=round(dynamic, 2))


def power_saving_ratio(
    ours: ResourceUsage, baseline: ResourceUsage
) -> float:
    """Fractional gated-power saving of ours vs a baseline."""
    p_ours = estimate_power(ours).gated_total_mw
    p_base = estimate_power(baseline).gated_total_mw
    if p_base <= 0:
        return 0.0
    return 1.0 - p_ours / p_base
