"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation section and prints the reproduced rows (run with ``-s`` to
see them, e.g. ``pytest benchmarks/ --benchmark-only -s``).

Each bench additionally runs inside an obs span with a fresh tracer and
metrics registry installed, and on teardown writes
``benchmarks/results/BENCH_<name>.json`` (wall time, span totals, key
counters) so the perf trajectory is machine-readable PR over PR.  Set
``OBS_BENCH_DIR`` to redirect the output, or ``OBS_BENCH_DIR=''`` to
disable recording.
"""

from __future__ import annotations

import json
import os
import re
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_metrics,
    install_tracer,
    uninstall_metrics,
    uninstall_tracer,
)
from repro.obs.report import summarize_tracer

_DEFAULT_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(title: str, body: str) -> None:
    """Print one reproduced artifact with a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(autouse=True)
def obs_bench_record(request):
    """Wrap each bench in a span and dump a BENCH_<name>.json result."""
    out_dir = os.environ.get("OBS_BENCH_DIR", _DEFAULT_DIR)
    if not out_dir:
        yield
        return
    tracer = install_tracer(Tracer())
    registry = install_metrics(MetricsRegistry())
    start = time.perf_counter()
    with tracer.span(f"bench.{request.node.name}"):
        yield
    wall_s = time.perf_counter() - start
    uninstall_tracer()
    uninstall_metrics()
    snapshot = registry.snapshot()
    payload = {
        "bench": request.node.name,
        "wall_s": round(wall_s, 6),
        "spans": summarize_tracer(tracer),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
    }
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", request.node.name)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
