"""Skewed-grid experiments (Fig 9 / Section 3.4.2): the distributed
modules automatically adapt the amount of data stored in each reuse FIFO
as the reuse distance changes along the execution."""

import numpy as np
import pytest

from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.sim.trace import TraceRecorder
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import skewed_denoise


@pytest.fixture
def skewed_run():
    spec = skewed_denoise(rows=8, cols=10)
    grid = make_input(spec)
    system = build_memory_system(spec.analysis())
    trace = TraceRecorder(max_cycles=4000)
    result = ChainSimulator(spec, system, grid, trace=trace).run()
    return spec, system, result, trace


class TestSkewedCorrectness:
    def test_output_matches_golden(self, skewed_run):
        spec, _, result, _ = skewed_run
        golden = golden_output_sequence(spec, make_input(spec))
        assert np.allclose(result.output_values(), golden)

    def test_output_count(self, skewed_run):
        spec, _, result, _ = skewed_run
        assert (
            result.stats.outputs_produced
            == spec.iteration_domain.count()
        )

    def test_no_deadlock_with_tight_capacities(self):
        """Max-reuse-distance sizing also covers the *varying* reuse
        distances of the skewed domain (the max is taken over all h)."""
        for rows, cols in [(4, 5), (6, 9), (10, 7)]:
            spec = skewed_denoise(rows=rows, cols=cols)
            system = build_memory_system(spec.analysis())
            result = ChainSimulator(
                spec, system, make_input(spec)
            ).run()
            assert result.stats.outputs_produced == (
                spec.iteration_domain.count()
            )


class TestDynamicAdaptation:
    def test_large_fifo_occupancy_varies_in_steady_state(self):
        """Fig 9: with the exact input data domain streamed (the
        paper's D_A), the number of elements held in a reuse FIFO
        changes as the iteration advances over the skewed domain."""
        spec = skewed_denoise(rows=8, cols=10)
        grid = make_input(spec)
        system = build_memory_system(
            spec.analysis(stream_mode="union")
        )
        trace = TraceRecorder(max_cycles=4000)
        result = ChainSimulator(spec, system, grid, trace=trace).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )
        first_out = result.stats.first_output_cycle
        varying = 0
        for fifo in system.fifos:
            steady = {
                row.fifo_occupancy[fifo.fifo_id]
                for row in trace.rows
                if row.cycle >= first_out
            }
            if len(steady) > 1:
                varying += 1
        assert varying >= 1

    def test_union_streaming_needs_smaller_buffers(self):
        """Streaming D_A instead of its hull box shrinks the reuse
        window on skewed domains."""
        spec = skewed_denoise(rows=8, cols=10)
        hull = build_memory_system(spec.analysis())
        union = build_memory_system(
            spec.analysis(stream_mode="union")
        )
        assert (
            union.total_buffer_size < hull.total_buffer_size
        )

    def test_occupancy_stays_within_capacity(self, skewed_run):
        _, system, result, _ = skewed_run
        for fid, occ in result.stats.fifo_max_occupancy.items():
            assert occ <= result.stats.fifo_capacity[fid]

    def test_capacity_reached_somewhere(self, skewed_run):
        """Capacities equal the *maximum* reuse distance, so each large
        FIFO hits its capacity at the point of maximum distance."""
        _, system, result, _ = skewed_run
        big = max(system.fifos, key=lambda f: f.capacity)
        assert (
            result.stats.fifo_max_occupancy[big.fifo_id]
            == big.capacity
        )

    def test_skew_needs_larger_window_than_rectangle(self):
        """The skewed domain's max reuse distance exceeds the
        rectangular equivalent's — the cost of skewing that a
        centralized design must manage explicitly."""
        from repro.stencil.kernels import DENOISE

        skew = skewed_denoise(rows=8, cols=10)
        rect = DENOISE.with_grid(skew.grid)
        assert (
            skew.analysis().minimum_total_buffer()
            >= rect.analysis().minimum_total_buffer() - 2
        )
