"""Unit tests for the non-uniform partitioner (the core contribution)."""

import pytest

from repro.partitioning.base import BankSpec
from repro.partitioning.nonuniform import (
    DeadlockConditionError,
    NonUniformPlan,
    OptimalityError,
    ReuseFifoSpec,
    check_deadlock_conditions,
    check_optimality,
    pairwise_deadlock_analysis,
    plan_nonuniform,
    table2_rows,
)
from repro.stencil.kernels import DENOISE, PAPER_BENCHMARKS

from conftest import small_spec


class TestPlanStructure:
    def test_denoise_plan_matches_paper(self):
        plan = plan_nonuniform(DENOISE.analysis())
        assert plan.num_banks == 4
        assert plan.total_size == 2048
        assert plan.fifo_capacities() == [1023, 1, 1, 1023]
        assert plan.achieved_ii == 1

    def test_filter_order_matches_fig7(self):
        plan = plan_nonuniform(DENOISE.analysis())
        assert plan.filter_order == [
            "A[i+1][j]",
            "A[i][j+1]",
            "A[i][j]",
            "A[i][j-1]",
            "A[i-1][j]",
        ]

    def test_all_benchmarks_get_n_minus_1_banks(self):
        for spec in PAPER_BENCHMARKS:
            plan = plan_nonuniform(spec.analysis())
            assert plan.num_banks == spec.n_points - 1, spec.name

    def test_all_benchmarks_get_minimum_size(self):
        for spec in PAPER_BENCHMARKS:
            analysis = spec.analysis()
            plan = plan_nonuniform(analysis)
            assert (
                plan.total_size == analysis.minimum_total_buffer()
            ), spec.name

    def test_fifo_endpoints_chain_through_references(self):
        plan = plan_nonuniform(DENOISE.analysis())
        for k, fifo in enumerate(plan.fifos):
            assert fifo.precedent is plan.references[k]
            assert fifo.successive is plan.references[k + 1]

    def test_banks_are_reuse_fifos(self):
        plan = plan_nonuniform(DENOISE.analysis())
        assert all(b.role == "reuse_fifo" for b in plan.banks)

    def test_summary_row(self):
        row = plan_nonuniform(DENOISE.analysis()).summary_row()
        assert row["original_ii"] == 5
        assert row["target_ii"] == 1
        assert row["banks"] == 4
        assert row["total_size"] == 2048


class TestValidation:
    def _tampered(self, plan, **changes):
        return NonUniformPlan(
            scheme=plan.scheme,
            array=plan.array,
            n_references=plan.n_references,
            banks=changes.get("banks", plan.banks),
            achieved_ii=plan.achieved_ii,
            fifos=changes.get("fifos", plan.fifos),
            references=changes.get("references", plan.references),
        )

    def test_undersized_fifo_fails_condition_2(self):
        analysis = small_spec(DENOISE).analysis()
        plan = plan_nonuniform(analysis)
        bad_fifo = ReuseFifoSpec(
            fifo_id=0,
            precedent=plan.fifos[0].precedent,
            successive=plan.fifos[0].successive,
            capacity=plan.fifos[0].capacity - 1,
            distance_vector=plan.fifos[0].distance_vector,
        )
        tampered = self._tampered(
            plan, fifos=(bad_fifo,) + plan.fifos[1:]
        )
        with pytest.raises(DeadlockConditionError):
            check_deadlock_conditions(tampered, analysis)

    def test_wrong_order_fails_condition_1(self):
        analysis = small_spec(DENOISE).analysis()
        plan = plan_nonuniform(analysis)
        refs = list(plan.references)
        refs[0], refs[-1] = refs[-1], refs[0]
        tampered = self._tampered(plan, references=tuple(refs))
        with pytest.raises(DeadlockConditionError):
            check_deadlock_conditions(tampered, analysis)

    def test_extra_bank_fails_optimality(self):
        analysis = small_spec(DENOISE).analysis()
        plan = plan_nonuniform(analysis)
        extra = plan.banks + (
            BankSpec(bank_id=99, capacity=1, role="reuse_fifo"),
        )
        tampered = self._tampered(plan, banks=extra)
        with pytest.raises(OptimalityError):
            check_optimality(tampered, analysis)

    def test_oversized_total_fails_optimality(self):
        analysis = small_spec(DENOISE).analysis()
        plan = plan_nonuniform(analysis)
        banks = list(plan.banks)
        banks[0] = BankSpec(
            bank_id=0,
            capacity=banks[0].capacity + 10,
            role="reuse_fifo",
        )
        tampered = self._tampered(plan, banks=tuple(banks))
        with pytest.raises(OptimalityError):
            check_optimality(tampered, analysis)


class TestPairwiseAnalysis:
    def test_all_pairs_satisfy_condition_1(self):
        plan = plan_nonuniform(DENOISE.analysis())
        for x_label, y_label, holds in pairwise_deadlock_analysis(plan):
            assert holds, f"{x_label} vs {y_label}"

    def test_pair_count(self):
        plan = plan_nonuniform(DENOISE.analysis())
        n = plan.n_references
        assert len(pairwise_deadlock_analysis(plan)) == n * (n - 1) // 2


class TestTable2Rows:
    def test_rows_match_paper(self):
        rows = table2_rows(plan_nonuniform(DENOISE.analysis()))
        assert rows[0] == {
            "fifo_id": "FIFO 0",
            "precedent": "A[i+1][j]",
            "successive": "A[i][j+1]",
            "size": 1023,
        }
        assert [r["size"] for r in rows] == [1023, 1, 1, 1023]
