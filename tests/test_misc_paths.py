"""Targeted tests for less-travelled code paths across modules."""

import numpy as np
import pytest

from repro.flow.report import average_reduction
from repro.hls.ir import DataflowGraph
from repro.hls.schedule import FIXED32_LIBRARY, schedule_kernel
from repro.partitioning.cyclic import plan_cyclic
from repro.partitioning.gmp import plan_gmp
from repro.polyhedral.domain import (
    BoxDomain,
    DomainUnion,
    IntegerPolyhedron,
)
from repro.polyhedral.reuse import check_linearity
from repro.resources.estimate import estimate_kernel
from repro.rtl.core import RtlModule, RtlSimulator, Signal, WaveformDump
from repro.stencil.kernels import DENOISE

from conftest import small_spec


class TestRtlSimulatorKernel:
    """The generic two-phase RTL simulation kernel."""

    class Counter(RtlModule):
        def __init__(self):
            self.count = Signal("count", 0)

        def evaluate(self):
            self.count.stage(self.count.value + 1)

        def commit(self):
            self.count.commit()

        def signals(self):
            return (self.count,)

    def test_step_evaluates_then_commits(self):
        counter = self.Counter()
        sim = RtlSimulator([counter])
        sim.step()
        assert counter.count.value == 1
        sim.step()
        assert counter.count.value == 2

    def test_run_until(self):
        counter = self.Counter()
        sim = RtlSimulator([counter])
        cycles = sim.run_until(
            lambda: counter.count.value >= 5, max_cycles=100
        )
        assert cycles == 5

    def test_run_until_timeout(self):
        counter = self.Counter()
        sim = RtlSimulator([counter])
        with pytest.raises(RuntimeError):
            sim.run_until(lambda: False, max_cycles=3)

    def test_dump_integration(self):
        counter = self.Counter()
        dump = WaveformDump()
        sim = RtlSimulator([counter], dump=dump)
        sim.step()
        sim.step()
        assert len(dump.changes) == 2


class TestDomainEdgeCases:
    def test_union_lex_rank(self):
        u = DomainUnion(
            [BoxDomain((0, 0), (1, 1)), BoxDomain((3, 3), (4, 4))]
        )
        # 4 points in the first box, then the gap, then 4 more.
        assert u.lex_rank((1, 1)) == 4
        assert u.lex_rank((2, 0)) == 4
        assert u.lex_rank((4, 4)) == 8

    def test_union_bounding_box(self):
        u = DomainUnion(
            [BoxDomain((0, 0), (1, 1)), BoxDomain((3, 3), (4, 4))]
        )
        lo, hi = u.bounding_box()
        assert lo == (0, 0)
        assert hi == (4, 4)

    def test_polyhedron_lex_first_last_general(self):
        tri = IntegerPolyhedron(
            coefficients=[(-1, 0), (0, -1), (1, 1)],
            bounds=[0, 0, 2],
        )
        assert tri.lex_first() == (0, 0)
        assert tri.lex_last() == (2, 0)

    def test_linearity_on_union_stream(self):
        """Property 3 may lose exactness on non-box streams; the
        checker must still run and return a boolean."""
        from repro.polyhedral.access import (
            ArrayReference,
            input_data_domain,
        )

        refs = [
            ArrayReference("A", o)
            for o in [(1, 0), (0, 0), (-1, 0)]
        ]
        domain = BoxDomain((1, 1), (5, 6))
        union = input_data_domain(refs, domain)
        result = check_linearity(refs, domain, union)
        assert isinstance(result, bool)


class TestPlanSummaries:
    def test_cyclic_summary_row(self):
        spec = small_spec(DENOISE)
        row = plan_cyclic(spec.analysis()).summary_row()
        assert row["scheme"] == "cyclic_linear"
        assert row["banks"] >= spec.n_points

    def test_gmp_summary_row(self):
        spec = small_spec(DENOISE)
        row = plan_gmp(spec.analysis()).summary_row()
        assert row["scheme"] == "gmp_padded"
        assert row["achieved_ii"] == 1

    def test_gmp_padding_overhead_non_negative(self):
        spec = small_spec(DENOISE)
        plan = plan_gmp(spec.analysis())
        assert plan.mapping.padding_overhead() >= 0.0


class TestResourceEdges:
    def test_estimate_kernel_fields(self):
        g = DataflowGraph.from_expression(DENOISE.expression)
        sched = schedule_kernel(g, library=FIXED32_LIBRARY)
        usage = estimate_kernel(sched)
        assert usage.lut == sched.lut_usage()
        assert usage.ff == sched.ff_usage()
        assert usage.bram_18k == 0

    def test_average_reduction_empty_and_zero(self):
        assert average_reduction([], "a", "b") == 0.0
        assert (
            average_reduction([{"a": 1, "b": 0}], "a", "b") == 0.0
        )


class TestEngineEdges:
    def test_default_max_cycles_generous(self):
        from repro.microarch.memory_system import build_memory_system
        from repro.sim.engine import ChainSimulator
        from repro.stencil.golden import make_input

        spec = small_spec(DENOISE)
        sim = ChainSimulator(
            spec,
            build_memory_system(spec.analysis()),
            make_input(spec),
        )
        result = sim.run()  # default budget must suffice
        assert result.stats.outputs_produced > 0

    def test_kernel_latency_zero(self):
        from repro.microarch.memory_system import build_memory_system
        from repro.sim.engine import ChainSimulator
        from repro.stencil.golden import (
            golden_output_sequence,
            make_input,
        )

        spec = small_spec(DENOISE)
        grid = make_input(spec)
        result = ChainSimulator(
            spec,
            build_memory_system(spec.analysis()),
            grid,
            kernel_latency=0,
        ).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )

    def test_single_reference_chain(self):
        """A 1-point window: no FIFOs at all, just a filter."""
        from repro.microarch.memory_system import build_memory_system
        from repro.sim.engine import ChainSimulator
        from repro.stencil.expr import Ref
        from repro.stencil.golden import (
            golden_output_sequence,
            make_input,
        )
        from repro.stencil.spec import StencilSpec, StencilWindow

        spec = StencilSpec(
            "COPY",
            (6, 7),
            StencilWindow.from_offsets([(0, 0)]),
            expression=2.0 * Ref((0, 0)),
        )
        system = build_memory_system(spec.analysis())
        assert system.num_banks == 0
        grid = make_input(spec)
        result = ChainSimulator(spec, system, grid).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )


class TestArtifactsExport:
    def test_collect_and_write(self, tmp_path):
        import json

        from repro.flow.artifacts import write_artifacts

        path = tmp_path / "artifacts.json"
        data = write_artifacts(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["table2"][0]["size"] == 1023
        assert len(loaded["table4"]) == 6
        assert len(loaded["fig15"]) == 18
        assert loaded["table5"]["average_bram_reduction_pct"] > 20
        assert data["paper"]["venue"] == "DAC 2014"

    def test_serializable(self):
        import json

        from repro.flow.artifacts import collect_artifacts

        json.dumps(collect_artifacts())  # must not raise


class TestCliRobustness:
    """User mistakes must produce clean errors, never tracebacks."""

    def _run(self, argv, capsys):
        from repro.cli import main

        rc = main(argv)
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_unknown_benchmark_clean_error(self, capsys):
        rc, _, err = self._run(["info", "NOPE"], capsys)
        assert rc == 2
        assert err.startswith("error: unknown benchmark 'NOPE'")
        assert "known: " in err
        assert "Traceback" not in err

    def test_unknown_benchmark_submit(self, capsys):
        rc, _, err = self._run(
            ["submit", "NOPE", "--grid", "8x9"], capsys
        )
        assert rc == 2
        assert err.startswith("error: unknown benchmark")
        assert "Traceback" not in err

    def test_malformed_grid_clean_error(self, capsys):
        from repro.cli import main

        for bad in ("12xbanana", "12x", "x", "0x5", "-3x4"):
            # argparse rejects the value with a clean usage error.
            with pytest.raises(SystemExit) as excinfo:
                main(["submit", "DENOISE", "--grid", bad])
            assert excinfo.value.code == 2, bad
            err = capsys.readouterr().err
            assert "grid" in err, bad
            assert "Traceback" not in err, bad

    def test_valid_submit_smoke(self, capsys):
        import json

        rc, out, _ = self._run(
            ["submit", "DENOISE", "--grid", "12x16"], capsys
        )
        assert rc == 0
        reply = json.loads(out.strip().splitlines()[-1])
        assert reply["status"] == "ok"
        assert reply["benchmark"] == "DENOISE"

    def test_serve_jsonl_subprocess(self, tmp_path):
        import json
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).parent.parent
        lines = "\n".join(
            [
                json.dumps(
                    {"id": "a", "benchmark": "SOBEL", "grid": [10, 12]}
                ),
                "not json at all",
                json.dumps({"id": "b", "benchmark": "BOGUS"}),
            ]
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--workers", "2"],
            input=lines,
            capture_output=True,
            text=True,
            cwd=str(root),
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(root / "src"),
            },
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        replies = [
            json.loads(line) for line in result.stdout.splitlines()
        ]
        assert [r["status"] for r in replies] == [
            "ok",
            "invalid",
            "invalid",
        ]
        assert replies[0]["id"] == "a"


class TestApiDocsGenerator:
    def test_generates_reference(self, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "API.md"
        result = subprocess.run(
            [sys.executable, "tools/gen_api_docs.py", str(out)],
            capture_output=True,
            text=True,
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        assert "# API reference" in text
        assert "## `repro.partitioning.nonuniform`" in text
        assert "plan_nonuniform" in text

    def test_checked_in_docs_up_to_date_enough(self):
        import pathlib

        api = pathlib.Path(__file__).parent.parent / "docs" / "API.md"
        text = api.read_text()
        # Spot-check a few load-bearing symbols.
        for symbol in (
            "plan_nonuniform",
            "ChainSimulator",
            "max_reuse_distance",
            "tradeoff_curve",
            "simulate_rtl",
        ):
            assert symbol in text, symbol
