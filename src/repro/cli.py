"""Command-line interface: drive the flow without writing Python.

Examples
--------
::

    python -m repro list
    python -m repro info DENOISE
    python -m repro compile DENOISE --streams 2 --show rtl
    python -m repro report table4
    python -m repro report fig15
    python -m repro simulate DENOISE --grid 24x32
    python -m repro submit DENOISE --grid 24x32 --count 8
    echo '{"benchmark": "SOBEL", "grid": [10, 12]}' | python -m repro serve
"""

from __future__ import annotations

import argparse
import contextlib
import glob
import json
import os
import queue
import sys
import threading
import time
from typing import Optional, Sequence

from .flow.automation import compile_accelerator
from .flow.report import (
    fig5_report,
    fig15_report,
    format_table,
    table2_report,
    table4_report,
    table5_report,
)
from .stencil.kernels import (
    DENOISE,
    PAPER_BENCHMARKS,
    SEGMENTATION_3D,
    get_benchmark,
)


def _parse_grid(text: str) -> tuple:
    try:
        parts = tuple(int(p) for p in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"grid must look like 24x32, got {text!r}"
        )
    if not parts or any(p <= 0 for p in parts):
        raise argparse.ArgumentTypeError("grid extents must be positive")
    return parts


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the heavyweight subcommands."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write a span trace: Chrome trace_event JSON "
            "(chrome://tracing / Perfetto), or JSONL if FILE ends "
            "in .jsonl"
        ),
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write collected metrics: Prometheus text, or a JSON "
            "snapshot if FILE ends in .json"
        ),
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="print a hot-path span summary after the command",
    )


@contextlib.contextmanager
def _obs_session(args):
    """Install tracer/registry for one command, export on the way out.

    Yields ``(tracer, registry)`` when any observability flag is set,
    else ``(None, None)`` — commands use the registry presence to
    decide whether to attach a simulator probe.
    """
    from .obs import (
        MetricsRegistry,
        Tracer,
        install_metrics,
        install_tracer,
        uninstall_metrics,
        uninstall_tracer,
    )

    if not (args.trace_out or args.metrics_out or args.profile):
        yield None, None
        return
    tracer = install_tracer(
        Tracer(name=f"{getattr(args, 'command', 'cli')}-{os.getpid()}")
    )
    registry = install_metrics(MetricsRegistry())
    try:
        yield tracer, registry
    finally:
        uninstall_tracer()
        uninstall_metrics()
        if args.trace_out:
            if args.trace_out.endswith(".jsonl"):
                n = tracer.export_jsonl(args.trace_out)
            else:
                n = tracer.export_chrome(args.trace_out)
            # Status notices go to stderr: serve's stdout is a pure
            # JSONL response stream that clients parse line by line.
            print(f"wrote {args.trace_out} ({n} spans)", file=sys.stderr)
        if args.metrics_out:
            if args.metrics_out.endswith(".json"):
                registry.export_json(args.metrics_out)
            else:
                registry.export_prometheus(args.metrics_out)
            print(f"wrote {args.metrics_out}", file=sys.stderr)
        if args.profile:
            from .obs.report import format_summary, summarize_tracer

            print()
            print("hot paths (per span name):")
            print(format_summary(summarize_tracer(tracer)))


def cmd_list(_args) -> int:
    rows = [
        {
            "benchmark": spec.name,
            "dim": spec.dim,
            "window_points": spec.n_points,
            "grid": "x".join(str(g) for g in spec.grid),
            "min_banks": spec.n_points - 1,
        }
        for spec in PAPER_BENCHMARKS
    ]
    print(format_table(rows))
    return 0


def cmd_info(args) -> int:
    spec = get_benchmark(args.benchmark)
    analysis = spec.analysis()
    print(spec)
    print(f"window offsets (filter order): {analysis.offsets()}")
    print(f"reuse FIFO capacities: {analysis.fifo_capacities()}")
    print(
        f"minimum total buffer: {analysis.minimum_total_buffer()} "
        "elements"
    )
    print(f"minimum banks: {analysis.minimum_banks()}")
    return 0


def cmd_compile(args) -> int:
    spec = get_benchmark(args.benchmark)
    if args.grid:
        spec = spec.with_grid(args.grid)
    with _obs_session(args):
        design = compile_accelerator(
            spec, offchip_streams=args.streams
        )
    print(design.memory_system.describe())
    print()
    summary = design.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if args.show == "kernel":
        print()
        print(design.transformed.kernel_source)
    elif args.show == "original":
        print()
        print(design.transformed.original_source)
    elif args.show == "rtl":
        print()
        print(design.rtl)
    elif args.show == "primitives":
        from .hls.primitives import generate_primitives_library

        print()
        print(generate_primitives_library())
    elif args.show == "table2":
        print()
        print(format_table(design.memory_system.table2_rows()))
    return 0


def cmd_report(args) -> int:
    kind = args.artifact
    if kind == "table2":
        print(format_table(table2_report(DENOISE)))
    elif kind == "table4":
        print(format_table(table4_report(PAPER_BENCHMARKS)))
    elif kind == "table5":
        print(format_table(table5_report(PAPER_BENCHMARKS)))
    elif kind == "fig5":
        print(
            format_table(fig5_report(DENOISE, range(1016, 1033)))
        )
    elif kind == "fig15":
        print(format_table(fig15_report(SEGMENTATION_3D)))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(kind)
    return 0


def cmd_explore(args) -> int:
    from .flow.explore import explore

    spec = get_benchmark(args.benchmark)
    with _obs_session(args):
        result = explore(
            spec,
            bram_budget=args.bram,
            bandwidth_budget=args.bandwidth,
        )
    print(f"design-space exploration for {spec.name}:")
    print(
        format_table([p.as_row() for p in result.candidates])
    )
    print()
    print("Pareto frontier (BRAM vs off-chip traffic):")
    print(format_table([p.as_row() for p in result.pareto]))
    print()
    if result.best is None:
        print(
            f"no design fits {args.bram} BRAM18 at "
            f"{args.bandwidth} access(es)/cycle"
        )
        return 1
    print(
        f"best within {args.bram} BRAM18 and {args.bandwidth} "
        f"access(es)/cycle: {result.best.label}"
    )
    return 0


def cmd_datasheet(args) -> int:
    from .flow.docgen import generate_design_report

    spec = get_benchmark(args.benchmark)
    if args.grid:
        spec = spec.with_grid(args.grid)
    design = compile_accelerator(spec, offchip_streams=args.streams)
    report = generate_design_report(design)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def cmd_simulate(args) -> int:
    import numpy as np

    from .microarch.memory_system import build_memory_system
    from .microarch.tradeoff import with_offchip_streams
    from .sim.engine import ChainSimulator
    from .stencil.golden import golden_output_sequence, make_input

    spec = get_benchmark(args.benchmark)
    if args.grid:
        spec = spec.with_grid(args.grid)
    grid = make_input(spec, seed=args.seed)
    with _obs_session(args) as (_, registry):
        system = build_memory_system(spec.analysis())
        if args.streams > 1:
            system = with_offchip_streams(system, args.streams)
        probe = None
        if registry is not None:
            from .obs import MetricsProbe

            probe = MetricsProbe(registry=registry)
        result = ChainSimulator(spec, system, grid, probe=probe).run()
    golden = golden_output_sequence(spec, grid)
    matches = np.allclose(result.output_values(), golden)
    print(f"simulated {spec}")
    print(
        f"  cycles: {result.stats.total_cycles}, outputs: "
        f"{result.stats.outputs_produced}"
    )
    print(
        f"  first output at cycle {result.stats.first_output_cycle}, "
        f"worst output gap {result.stats.worst_output_gap}"
    )
    print(f"  golden match: {'yes' if matches else 'NO'}")
    return 0 if matches else 1


def _lowering_from_args(args):
    """Parse ``--lowering`` (one consolidated JSON pass-through) into
    a :class:`~repro.lower.engine.LoweringConfig`, or None when the
    flag is absent (legacy ``--converter``/``--gather-limit`` knobs
    then apply)."""
    from .lower.engine import LoweringConfig

    raw = getattr(args, "lowering", None)
    if not raw:
        return None
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"--lowering is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ValueError("--lowering must be a JSON object")
    return LoweringConfig.from_json(data)


def _service_config(args):
    from .service import ChaosConfig, ServiceConfig

    chaos = None
    if (
        getattr(args, "chaos_rate", 0.0)
        or getattr(args, "chaos_hang_rate", 0.0)
        or getattr(args, "chaos_slow_rate", 0.0)
    ):
        chaos = ChaosConfig(
            seed=args.chaos_seed,
            kill_rate=args.chaos_rate,
            hang_rate=args.chaos_hang_rate,
            slow_rate=args.chaos_slow_rate,
        )
    return ServiceConfig(
        workers=args.workers,
        max_queue=args.queue,
        max_batch=args.max_batch,
        validate_every=args.validate_every,
        cache_dir=args.cache_dir,
        worker_mode=args.worker_mode,
        backend=getattr(args, "backend", "interpreted"),
        lowering=_lowering_from_args(args),
        converter=getattr(args, "converter", "numpy"),
        gather_limit=getattr(args, "gather_limit", None),
        hang_timeout_s=args.hang_timeout,
        chaos=chaos,
    )


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("service")
    group.add_argument(
        "--workers", type=int, default=4,
        help="executor workers (default 4)",
    )
    group.add_argument(
        "--worker-mode", choices=["thread", "process"],
        default="thread",
        help=(
            "thread workers in-process, or a crash-isolated "
            "fingerprint-sharded multiprocessing pool with supervised "
            "restarts and circuit breaking (default thread)"
        ),
    )
    group.add_argument(
        # Validated by ServiceConfig (not argparse choices) so an
        # unknown backend exits with the CLI's one-line error contract.
        "--backend", default="interpreted", metavar="NAME",
        help=(
            "execution backend: 'interpreted' runs the paper-exact "
            "golden reference per request; 'compiled' lowers each plan "
            "to a batched vectorized kernel (bufferize -> convert) and "
            "falls back to interpreted where lowering is unsupported "
            "(default interpreted)"
        ),
    )
    group.add_argument(
        # Validated by ServiceConfig, like --backend.
        "--converter", default="numpy", metavar="NAME",
        help=(
            "kernel converter under --backend compiled: 'numpy' "
            "(vectorized replay) or 'c' (cffi-built generated C, "
            "degrading to numpy when no C toolchain is available; "
            "default numpy)"
        ),
    )
    group.add_argument(
        # Validated by ServiceConfig (positive int).
        "--gather-limit", type=int, default=None, metavar="POINTS",
        help=(
            "gather-domain size above which the compiled backend "
            "replays the table in fixed-size chunks instead of "
            "materializing it (default: engine built-in)"
        ),
    )
    group.add_argument(
        "--lowering", default=None, metavar="JSON",
        help=(
            "consolidated lowering config as a JSON object (keys: "
            "converter, gather_limit, gather_hard_limit, artifact_dir); "
            "overrides --converter/--gather-limit.  This is the single "
            "pass-through the router uses to configure its nodes"
        ),
    )
    group.add_argument(
        "--queue", type=int, default=256,
        help="bounded admission queue size (default 256)",
    )
    group.add_argument(
        "--max-batch", type=int, default=16,
        help="max requests one worker drains per round (default 16)",
    )
    group.add_argument(
        "--validate-every", type=int, default=0, metavar="N",
        help=(
            "cycle-sim-validate ~1 in N executions against the cached "
            "plan, biased toward fresh plans (0 disables the canary)"
        ),
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist compiled plans as JSON under DIR",
    )
    group.add_argument(
        "--hang-timeout", type=float, default=60.0, metavar="S",
        help=(
            "kill and respawn a process worker that stays silent this "
            "long past every in-flight deadline (default 60)"
        ),
    )
    chaos = parser.add_argument_group(
        "chaos (fault injection; requires --worker-mode process)"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=2014,
        help="deterministic fault-injection seed (default 2014)",
    )
    chaos.add_argument(
        "--chaos-rate", type=float, default=0.0, metavar="P",
        help="kill the executing worker on fraction P of attempts",
    )
    chaos.add_argument(
        "--chaos-hang-rate", type=float, default=0.0, metavar="P",
        help="hang the executing worker on fraction P of attempts",
    )
    chaos.add_argument(
        "--chaos-slow-rate", type=float, default=0.0, metavar="P",
        help="slow the executing worker on fraction P of attempts",
    )


def _submit_requests(args) -> list:
    """Build the wire dicts for ``repro submit``, validating workload
    shapes client-side so a malformed workload (cyclic graph, steps < 1,
    dangling edge, bad JSON) exits rc 2 with a one-line error before
    any workers spin up.  WorkloadError subclasses ValueError, so it
    rides the CLI's standard error contract."""
    from .service.workload import Workload

    workload = None
    if getattr(args, "workload", None):
        if args.benchmark:
            raise ValueError(
                "--workload replaces the benchmark arguments; "
                "pass one or the other"
            )
        try:
            data = json.loads(args.workload)
        except ValueError as exc:
            raise ValueError(f"--workload is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ValueError("--workload must be a JSON object")
        workload = Workload.from_json(data)
    elif not args.benchmark:
        raise ValueError("pass at least one benchmark name or --workload")
    else:
        for name in args.benchmark:
            get_benchmark(name)  # fail fast on typos, before any workers

    requests = []

    def finish(request: dict) -> None:
        if args.grid:
            request["grid"] = list(args.grid)
        if args.streams != 1:
            request["streams"] = args.streams
        requests.append(request)

    if workload is not None:
        for k in range(args.count):
            finish({
                "proto": 2,
                "workload": workload.to_json(),
                "seed": args.seed + k,
            })
        return requests
    steps = getattr(args, "steps", 1)
    for name in args.benchmark:
        for k in range(args.count):
            if steps != 1:
                # Validates steps >= 1 (WorkloadError -> rc 2).
                iterate = Workload.iterate(benchmark=name, steps=steps)
                finish({
                    "proto": 2,
                    "workload": iterate.to_json(),
                    "seed": args.seed + k,
                })
            else:
                finish({
                    "proto": 1,
                    "benchmark": name,
                    "seed": args.seed + k,
                })
    return requests


def cmd_submit(args) -> int:
    """One-shot client: spin a service, submit, print responses.

    ``circuit_open`` responses carry a ``retry_after_s`` hint (the
    breaker cooldown remaining); with ``--client-retries`` the client
    honors it — sleeps that long and resubmits — before giving up.
    """
    from .service import StencilService

    wire_requests = _submit_requests(args)
    with _obs_session(args):
        service = StencilService(_service_config(args)).start()
        slots = []
        for request in wire_requests:
            slots.append((request, service.submit(request)))
        failures = 0
        for request, slot in slots:
            response = slot.result()
            retries = args.client_retries
            while response.status == "circuit_open" and retries > 0:
                delay = response.retry_after_s or 0.05
                time.sleep(min(delay, args.client_retry_cap))
                retries -= 1
                response = service.handle(request)
            print(json.dumps(response.to_json(), sort_keys=True))
            if not response.ok:
                failures += 1
        service.shutdown(drain=True)
    return 0 if failures == 0 else 1


def _stream_jsonl(submit_line, lines) -> None:
    """Shared serve/route loop: submit each request line, stream the
    responses back in submission order as they resolve.

    A writer thread blocks on the oldest unanswered slot, so a
    long-running head request delays (but never drops) the responses
    behind it, and every response is flushed the moment it is ready —
    required by the router, whose nodes answer over these pipes while
    more requests keep arriving.
    """
    slots: "queue.Queue" = queue.Queue()
    done = object()

    def writer() -> None:
        while True:
            slot = slots.get()
            if slot is done:
                return
            print(
                json.dumps(slot.result().to_json(), sort_keys=True),
                flush=True,
            )

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        slots.put(submit_line(line))
    slots.put(done)
    thread.join()


def cmd_serve(args) -> int:
    """JSONL server: one request per stdin line, one response per
    stdout line (submission order, streamed as results resolve),
    graceful drain on EOF.  With ``--listen`` the data plane moves to
    a TCP socket (handshaken proto:1 JSONL); stdout carries a single
    ``{"listening": "host:port"}`` announcement and stdin keeps its
    lifecycle role — EOF still means drain-and-exit, so supervisors
    (the router) manage socket nodes exactly like pipe nodes."""
    from .service import StencilService

    with _obs_session(args):
        service = StencilService(_service_config(args)).start()
        if getattr(args, "listen", None):
            return _serve_listen(args, service)
        print(
            f"repro service: {args.workers} workers, queue "
            f"{args.queue}, reading JSONL requests from stdin",
            file=sys.stderr,
        )
        _stream_jsonl(service.submit_json, sys.stdin)
        drained = service.shutdown(drain=True)
        print(
            f"drained: {drained}, cache "
            f"{service.cache.stats.hits} hits / "
            f"{service.cache.stats.misses} misses",
            file=sys.stderr,
        )
    return 0


def _serve_listen(args, service) -> int:
    """The ``repro serve --listen`` body (service already started)."""
    from .service.transport import (
        SocketChaos,
        SocketServer,
        parse_address,
    )

    host, port = parse_address(args.listen)
    chaos = None
    if (
        args.sock_kill_rate
        or args.sock_half_open_rate
        or args.sock_trickle_rate
    ):
        chaos = SocketChaos(
            seed=args.chaos_seed,
            conn_kill_rate=args.sock_kill_rate,
            half_open_rate=args.sock_half_open_rate,
            trickle_rate=args.sock_trickle_rate,
        )
    server = SocketServer(
        service.submit_json,
        host=host,
        port=port,
        backends=(getattr(args, "backend", "interpreted"),),
        registry=service.metrics,
        chaos=chaos,
    )
    bound_host, bound_port = server.start()
    # The one stdout line: where we actually bound (port 0 resolves
    # here).  Parsed by the router and by shell scripts alike.
    print(
        json.dumps({"listening": f"{bound_host}:{bound_port}"}),
        flush=True,
    )
    print(
        f"repro service: {args.workers} workers, queue {args.queue}, "
        f"serving proto:1 JSONL on {bound_host}:{bound_port}",
        file=sys.stderr,
    )
    # Lifecycle stays on stdin: block until the supervisor closes it.
    for _ in sys.stdin:
        pass
    server.stop()
    drained = service.shutdown(drain=True)
    print(
        f"drained: {drained}, cache "
        f"{service.cache.stats.hits} hits / "
        f"{service.cache.stats.misses} misses",
        file=sys.stderr,
    )
    return 0


def cmd_route(args) -> int:
    """Multi-node JSONL front end: rendezvous-hash each request's
    plan fingerprint onto one of N ``repro serve`` subprocesses, with
    failover to the next node in rendezvous order when a node dies."""
    from .service.router import NodeConfig, Router, RouterConfig

    extra = []
    for flag, value in (
        ("--chaos-seed", args.chaos_seed),
        ("--chaos-rate", args.chaos_rate),
        ("--chaos-hang-rate", args.chaos_hang_rate),
        ("--chaos-slow-rate", args.chaos_slow_rate),
    ):
        if flag == "--chaos-seed" and not (
            args.chaos_rate or args.chaos_hang_rate
            or args.chaos_slow_rate
        ):
            continue  # only forward the seed with an active fault rate
        if value:
            extra += [flag, str(value)]
    backend = getattr(args, "backend", "interpreted")
    if backend not in ("interpreted", "compiled"):
        raise ValueError(
            f"backend must be one of 'interpreted', 'compiled', "
            f"got {backend!r}"
        )
    converter = getattr(args, "converter", "numpy")
    if converter not in ("numpy", "c"):
        raise ValueError(
            f"converter must be one of 'numpy', 'c', "
            f"got {converter!r}"
        )
    lowering = _lowering_from_args(args)
    if lowering is None:
        from .lower.engine import LoweringConfig

        kwargs = {"converter": converter}
        gather_limit = getattr(args, "gather_limit", None)
        if gather_limit:
            kwargs["gather_limit"] = int(gather_limit)
        lowering = LoweringConfig(**kwargs)
    remotes = tuple(getattr(args, "connect", None) or ())
    transport = getattr(args, "transport", "pipe")
    if remotes:
        transport = "tcp"
    node = NodeConfig(
        workers=args.workers,
        queue=args.queue,
        max_batch=args.max_batch,
        worker_mode=args.worker_mode,
        backend=backend,
        lowering=lowering,
        validate_every=args.validate_every,
        cache_dir=args.cache_dir,
        hang_timeout_s=args.hang_timeout,
        transport=transport,
        extra_args=tuple(extra),
    )
    config = RouterConfig(
        nodes=len(remotes) or args.nodes,
        node=node,
        max_retries=args.router_retries,
        failover_grace_s=args.failover_grace,
        node_metrics_dir=args.node_metrics_dir,
        trace_dir=args.trace_dir,
        chaos_seed=args.chaos_seed,
        node_kill_rate=args.node_kill_rate,
        conn_kill_rate=getattr(args, "conn_kill_rate", 0.0),
        remotes=remotes,
    )
    with _obs_session(args) as (session_tracer, _):
        own_tracer = None
        if args.trace_dir and session_tracer is None:
            # Distributed tracing without the single-process obs flags:
            # the router needs its own tracer so its spans land next to
            # the per-node files the stitcher will merge.
            from .obs import Tracer, install_tracer

            own_tracer = install_tracer(Tracer(name="router"))
        router = Router(config).start()
        print(
            f"repro router: {args.nodes} nodes x {args.workers} "
            "workers, reading JSONL requests from stdin",
            file=sys.stderr,
        )
        _stream_jsonl(router.submit_json, sys.stdin)
        if args.fabric_snapshot:
            # Collected over the live node pipes, so it must happen
            # before close() tears the fabric down.
            with open(args.fabric_snapshot, "w", encoding="utf-8") as fh:
                json.dump(router.fabric_snapshot(), fh, sort_keys=True)
            print(
                f"wrote {args.fabric_snapshot}", file=sys.stderr
            )
        clean = router.close()
        tracer = session_tracer or own_tracer
        if args.trace_dir and tracer is not None:
            path = os.path.join(args.trace_dir, "router.jsonl")
            n = tracer.export_jsonl(path)
            print(f"wrote {path} ({n} spans)", file=sys.stderr)
        if own_tracer is not None:
            from .obs import uninstall_tracer

            uninstall_tracer()
        counters = router.metrics.snapshot()["counters"]
        failovers = sum(
            v for k, v in counters.items()
            if k.startswith("router_failovers_total")
        )
        restarts = sum(
            v for k, v in counters.items()
            if k.startswith("router_node_restarts_total")
        )
        print(
            f"clean shutdown: {clean}, failovers: {int(failovers)}, "
            f"node restarts: {int(restarts)}",
            file=sys.stderr,
        )
    return 0 if clean else 1


def cmd_trace(args) -> int:
    """Stitch a fabric run's per-process traces and print one
    request's cross-process timeline, critical path and stage
    coverage."""
    from .obs.stitch import (
        critical_path,
        events_for_trace,
        format_timeline,
        stage_coverage,
        stitch_traces,
        trace_ids,
    )

    paths = sorted(glob.glob(os.path.join(args.trace_dir, "*.jsonl")))
    if not paths:
        print(
            f"error: no .jsonl trace files in {args.trace_dir}",
            file=sys.stderr,
        )
        return 2
    try:
        document = stitch_traces(paths)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        print(
            f"wrote {args.out} "
            f"({len(document['traceEvents'])} events)",
            file=sys.stderr,
        )
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in document["traceEvents"]
        if e.get("ph") == "M"
    }
    counts = trace_ids(document)
    if not counts:
        print("error: stitched trace contains no spans with a "
              "trace_id", file=sys.stderr)
        return 1

    def request_of(trace_id: str):
        for event in events_for_trace(document, trace_id):
            request = event["args"].get("request")
            if request is not None:
                return request
        return None

    if args.request_id:
        target = next(
            (
                tid
                for tid in counts
                if any(
                    e["args"].get("request") == args.request_id
                    for e in events_for_trace(document, tid)
                )
            ),
            None,
        )
        if target is None:
            known = sorted(
                str(request_of(tid)) for tid in counts
            )
            print(
                f"error: no trace for request {args.request_id!r} "
                f"(known requests: {', '.join(known)})",
                file=sys.stderr,
            )
            return 1
    elif len(counts) == 1:
        target = next(iter(counts))
    else:
        print(f"{len(counts)} traces in {args.trace_dir}; pick a "
              "request id:")
        for tid, n in sorted(counts.items()):
            print(f"  {request_of(tid)}  trace={tid}  spans={n}")
        return 0

    events = events_for_trace(document, target)
    pids = sorted({e["pid"] for e in events})
    print(
        f"trace {target}: {len(events)} spans across "
        f"{len(pids)} processes"
    )
    print()
    print(format_timeline(events, process_names))
    coverage = stage_coverage(document, target)
    if coverage is not None:
        print()
        print(f"stage coverage: {100.0 * coverage:.1f}% of the root "
              "span's wall-clock attributed to named stages")
    path_events = critical_path(document, target)
    if path_events:
        print()
        print("critical path:")
        for event in path_events:
            process = process_names.get(
                event["pid"], f"pid-{event['pid']}"
            )
            print(
                f"  {event['name']} ({process}) "
                f"{event['dur'] / 1e3:.3f} ms"
            )
    return 0


def cmd_top(args) -> int:
    """Aggregate fabric metrics snapshots into one summary table."""
    from .obs.report import format_fabric_summary

    parts = []
    node_status = {}
    for path in args.snapshot:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {path}: not valid JSON ({exc})",
                  file=sys.stderr)
            return 2
        if not isinstance(data, dict):
            print(f"error: {path}: not a metrics snapshot",
                  file=sys.stderr)
            return 2
        if "router" in data and "nodes" in data:
            # A `repro route --fabric-snapshot` document.
            parts.append(("router", data["router"]))
            statuses = data.get("node_status") or {}
            for idx in sorted(data["nodes"], key=str):
                label = f"node-{idx}"
                parts.append((label, data["nodes"][idx]))
                if str(idx) in statuses:
                    node_status[label] = statuses[str(idx)]
        elif "counters" in data or "histograms" in data:
            label = os.path.splitext(os.path.basename(path))[0]
            parts.append((label, data))
        else:
            print(f"error: {path}: not a metrics snapshot",
                  file=sys.stderr)
            return 2
    try:
        print(format_fabric_summary(parts, node_status))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Non-uniform reuse-buffer partitioning for stencil "
            "accelerators (DAC'14 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper benchmarks").set_defaults(
        func=cmd_list
    )

    p_info = sub.add_parser("info", help="analysis summary of one benchmark")
    p_info.add_argument("benchmark")
    p_info.set_defaults(func=cmd_info)

    p_compile = sub.add_parser(
        "compile", help="run the full Fig 11 flow on one benchmark"
    )
    p_compile.add_argument("benchmark")
    p_compile.add_argument(
        "--streams", type=int, default=1,
        help="off-chip accesses per cycle (chain breaking)",
    )
    p_compile.add_argument(
        "--grid", type=_parse_grid, default=None,
        help="override the grid, e.g. 24x32",
    )
    p_compile.add_argument(
        "--show",
        choices=[
            "none", "kernel", "original", "rtl", "primitives", "table2"
        ],
        default="none",
        help="print a generated artifact",
    )
    _add_obs_flags(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_report = sub.add_parser(
        "report", help="regenerate one paper table/figure"
    )
    p_report.add_argument(
        "artifact",
        choices=["table2", "table4", "table5", "fig5", "fig15"],
    )
    p_report.set_defaults(func=cmd_report)

    p_explore = sub.add_parser(
        "explore",
        help="capacity-driven design-space exploration",
    )
    p_explore.add_argument("benchmark")
    p_explore.add_argument(
        "--bram", type=int, default=8,
        help="BRAM18 budget for the memory system",
    )
    p_explore.add_argument(
        "--bandwidth", type=int, default=1,
        help="off-chip accesses per cycle available",
    )
    _add_obs_flags(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_doc = sub.add_parser(
        "datasheet", help="generate a markdown design report"
    )
    p_doc.add_argument("benchmark")
    p_doc.add_argument("--grid", type=_parse_grid, default=None)
    p_doc.add_argument("--streams", type=int, default=1)
    p_doc.add_argument("--output", default=None)
    p_doc.set_defaults(func=cmd_datasheet)

    p_sim = sub.add_parser(
        "simulate", help="cycle-simulate a benchmark vs golden"
    )
    p_sim.add_argument("benchmark")
    p_sim.add_argument("--grid", type=_parse_grid, default=None)
    p_sim.add_argument("--streams", type=int, default=1)
    p_sim.add_argument("--seed", type=int, default=2014)
    _add_obs_flags(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_submit = sub.add_parser(
        "submit",
        help="submit benchmark requests to an in-process service",
    )
    p_submit.add_argument(
        "benchmark", nargs="*",
        help=(
            "one or more benchmark names (repeated --count times "
            "each); omit when submitting a raw --workload object"
        ),
    )
    p_submit.add_argument(
        "--count", type=int, default=1,
        help="submissions per benchmark (distinct seeds)",
    )
    p_submit.add_argument(
        "--steps", type=int, default=1, metavar="T",
        help=(
            "run each benchmark as a proto:2 iterate(T) workload — T "
            "chained applications of the kernel with intermediates "
            "kept server-side (default 1 = classic single request)"
        ),
    )
    p_submit.add_argument(
        "--workload", default=None, metavar="JSON",
        help=(
            "submit one proto:2 workload object (kind single/iterate/"
            "graph), validated client-side; replaces the benchmark "
            "arguments"
        ),
    )
    p_submit.add_argument("--grid", type=_parse_grid, default=None)
    p_submit.add_argument("--streams", type=int, default=1)
    p_submit.add_argument("--seed", type=int, default=2014)
    p_submit.add_argument(
        "--client-retries", type=int, default=0, metavar="N",
        help=(
            "resubmit a circuit_open response up to N times, sleeping "
            "its retry_after_s breaker hint between tries (default 0)"
        ),
    )
    p_submit.add_argument(
        "--client-retry-cap", type=float, default=5.0, metavar="S",
        help="longest the client will sleep on one breaker hint",
    )
    _add_service_flags(p_submit)
    _add_obs_flags(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_serve = sub.add_parser(
        "serve",
        help="run the stencil service over JSONL stdin/stdout",
    )
    listen_group = p_serve.add_argument_group("socket transport")
    listen_group.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help=(
            "serve proto:1 JSONL over TCP instead of stdout: bind "
            "HOST:PORT (port 0 = ephemeral), print one "
            '{"listening": "host:port"} line on stdout, then answer '
            "socket clients after a connect-time handshake; stdin "
            "EOF still triggers the graceful drain"
        ),
    )
    listen_group.add_argument(
        "--sock-kill-rate", type=float, default=0.0, metavar="P",
        help=(
            "socket chaos (needs --listen): abruptly close the "
            "client's connection instead of writing a response, on "
            "fraction P of responses (seeded by --chaos-seed)"
        ),
    )
    listen_group.add_argument(
        "--sock-half-open-rate", type=float, default=0.0, metavar="P",
        help=(
            "socket chaos (needs --listen): go half-open — swallow "
            "this and all later responses while keeping the socket "
            "up — on fraction P of responses"
        ),
    )
    listen_group.add_argument(
        "--sock-trickle-rate", type=float, default=0.0, metavar="P",
        help=(
            "socket chaos (needs --listen): trickle the response out "
            "a few bytes at a time on fraction P of responses"
        ),
    )
    _add_service_flags(p_serve)
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_route = sub.add_parser(
        "route",
        help=(
            "run the multi-node fingerprint router over JSONL "
            "stdin/stdout (N repro-serve subprocesses)"
        ),
    )
    router_group = p_route.add_argument_group("router")
    router_group.add_argument(
        "--nodes", type=int, default=2,
        help="service-node subprocesses to spawn (default 2)",
    )
    router_group.add_argument(
        "--router-retries", type=int, default=2, metavar="N",
        help="failover budget per request (default 2)",
    )
    router_group.add_argument(
        "--failover-grace", type=float, default=2.0, metavar="S",
        help=(
            "kill a node that is silent this long past an in-flight "
            "deadline (wedge detection, default 2)"
        ),
    )
    router_group.add_argument(
        "--node-metrics-dir", default=None, metavar="DIR",
        help=(
            "each node exports node-N.json metrics here on graceful "
            "shutdown"
        ),
    )
    router_group.add_argument(
        "--node-kill-rate", type=float, default=0.0, metavar="P",
        help=(
            "whole-node chaos: kill the owning node right after "
            "dispatch on fraction P of attempts (seeded by "
            "--chaos-seed)"
        ),
    )
    router_group.add_argument(
        "--transport", choices=["pipe", "tcp"], default="pipe",
        help=(
            "how the router reaches its nodes: proto:1 JSONL over "
            "subprocess pipes (default), or over localhost TCP "
            "sockets with handshake, reconnect backoff and "
            "heartbeats (nodes are spawned with --listen)"
        ),
    )
    router_group.add_argument(
        "--connect", action="append", default=None, metavar="ADDR",
        dest="connect",
        help=(
            "connect to an already-running `repro serve --listen` "
            "endpoint (host:port) instead of spawning nodes; repeat "
            "for more nodes — implies --transport tcp and overrides "
            "--nodes"
        ),
    )
    router_group.add_argument(
        "--conn-kill-rate", type=float, default=0.0, metavar="P",
        help=(
            "connection chaos (tcp transport): sever the owning "
            "node's socket right after dispatch on fraction P of "
            "attempts (seeded by --chaos-seed)"
        ),
    )
    router_group.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "distributed tracing: router and every node export JSONL "
            "span files here; stitch them with `repro trace`"
        ),
    )
    router_group.add_argument(
        "--fabric-snapshot", default=None, metavar="FILE",
        help=(
            "collect every node's metrics over the live pipes on "
            "shutdown and write the aggregated fabric snapshot as "
            "JSON (input for `repro top`)"
        ),
    )
    _add_service_flags(p_route)
    _add_obs_flags(p_route)
    p_route.set_defaults(func=cmd_route)

    p_trace = sub.add_parser(
        "trace",
        help=(
            "stitch a fabric run's per-process JSONL traces and print "
            "one request's cross-process timeline and critical path"
        ),
    )
    p_trace.add_argument(
        "request_id", nargs="?", default=None,
        help=(
            "client request id to inspect (omit to auto-pick when the "
            "run had one request, or to list the traces)"
        ),
    )
    p_trace.add_argument(
        "--trace-dir", required=True, metavar="DIR",
        help="directory of JSONL traces from `repro route --trace-dir`",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="FILE",
        help=(
            "also write the stitched Chrome trace_event JSON "
            "(chrome://tracing / Perfetto)"
        ),
    )
    p_trace.set_defaults(func=cmd_trace)

    p_top = sub.add_parser(
        "top",
        help=(
            "aggregate fabric metrics snapshots: per-node health, "
            "cache hit rates, stage latency percentiles, slowest "
            "requests"
        ),
    )
    p_top.add_argument(
        "snapshot", nargs="+",
        help=(
            "JSON metrics files: `repro route --fabric-snapshot` "
            "documents and/or plain --metrics-out .json snapshots"
        ),
    )
    p_top.set_defaults(func=cmd_top)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        # e.g. an unknown benchmark name: print the message, not a
        # traceback (KeyError's str() wraps its argument in repr quotes).
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
