"""Property tests for the extension subsystems: tiling, boundary
handling and loop transforms on randomized inputs."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.microarch.memory_system import build_memory_system
from repro.microarch.tiling import plan_tiling, simulate_tiled
from repro.polyhedral.transform import (
    UnimodularTransform,
    transform_spec,
)
from repro.sim.engine import ChainSimulator
from repro.stencil.boundary import run_with_boundary
from repro.stencil.golden import golden_output_sequence, run_golden
from repro.stencil.kernels import DENOISE
from repro.stencil.spec import StencilSpec, StencilWindow


@st.composite
def small_2d_case(draw, max_points=5):
    n = draw(st.integers(2, max_points))
    offsets = draw(
        st.sets(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=n,
            max_size=n,
        )
    )
    window = StencilWindow.from_offsets(sorted(offsets))
    mins, maxs = window.span()
    rows = draw(st.integers(maxs[0] - mins[0] + 2, 9))
    cols = draw(st.integers(maxs[1] - mins[1] + 4, 14))
    spec = StencilSpec("P", (rows, cols), window)
    seed = draw(st.integers(0, 2**16))
    grid = np.random.default_rng(seed).uniform(
        -4, 4, size=spec.grid
    )
    return spec, grid


class TestTilingProperties:
    @given(small_2d_case(), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_tiled_equals_monolithic(self, case, width):
        spec, grid = case
        result = simulate_tiled(spec, width, grid)
        assert np.allclose(result.outputs, run_golden(spec, grid))

    @given(small_2d_case(), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_strip_buffers_never_exceed_monolithic(self, case, width):
        spec, _ = case
        plan = plan_tiling(spec, width)
        full = spec.analysis().minimum_total_buffer()
        assert plan.buffer_per_strip <= full

    @given(small_2d_case(), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_traffic_at_least_monolithic(self, case, width):
        spec, _ = case
        plan = plan_tiling(spec, width)
        assert plan.traffic_overhead >= -1e-9


class TestBoundaryProperties:
    @given(
        small_2d_case(),
        st.sampled_from(["edge", "reflect", "constant"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_size_output_shape_and_interior(self, case, mode):
        spec, grid = case
        full = run_with_boundary(spec, grid, mode=mode)
        assert full.shape == grid.shape
        # Where the original iteration domain overlaps the grid, the
        # full-size output must equal the unpadded computation (for
        # one-sided windows the domain can extend past the grid, so
        # clip the comparison region).
        lo = spec.iteration_domain.lows
        hi = spec.iteration_domain.highs
        r0, r1 = max(lo[0], 0), min(hi[0], grid.shape[0] - 1)
        c0, c1 = max(lo[1], 0), min(hi[1], grid.shape[1] - 1)
        if r0 > r1 or c0 > c1:
            return
        interior = run_golden(spec, grid)
        assert np.allclose(
            full[r0 : r1 + 1, c0 : c1 + 1],
            interior[
                r0 - lo[0] : r1 - lo[0] + 1,
                c0 - lo[1] : c1 - lo[1] + 1,
            ],
        )


class TestTransformProperties:
    @given(st.integers(-2, 2), st.integers(0, 1))
    @settings(max_examples=12, deadline=None)
    def test_skewed_denoise_simulates(self, factor, axis_pick):
        if factor == 0:
            return
        spec = DENOISE.with_grid((8, 10))
        t = (
            UnimodularTransform.skew(2, 1, 0, factor)
            if axis_pick == 0
            else UnimodularTransform.skew(2, 0, 1, factor)
        )
        skewed = transform_spec(spec, t)
        assert (
            skewed.iteration_domain.count()
            == spec.iteration_domain.count()
        )
        rng = np.random.default_rng(1)
        grid = rng.uniform(-3, 3, size=skewed.grid)
        result = ChainSimulator(
            skewed, build_memory_system(skewed.analysis()), grid
        ).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(skewed, grid),
        )

    @given(
        st.lists(
            st.sampled_from(["swap", "skew+", "skew-", "rev0"]),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_composed_transforms_stay_unimodular(self, ops):
        t = UnimodularTransform.identity(2)
        table = {
            "swap": UnimodularTransform.interchange(2, 0, 1),
            "skew+": UnimodularTransform.skew(2, 1, 0, 1),
            "skew-": UnimodularTransform.skew(2, 1, 0, -1),
            "rev0": UnimodularTransform.reversal(2, 0),
        }
        for op in ops:
            t = table[op].compose(t)
        # Still unimodular: inverse round-trips.
        assert (
            t.compose(t.inverse()).matrix
            == UnimodularTransform.identity(2).matrix
        )
