"""Observability: tracing, metrics and simulator probes.

A dependency-free instrumentation layer with three pillars:

* :mod:`repro.obs.tracing` — nested :class:`Span` timing with JSONL and
  Chrome ``trace_event`` export (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with Prometheus-text and JSON exporters;
* :mod:`repro.obs.probe` — the :class:`SimProbe` hook the cycle
  simulator drives (per-module fire/stall counters, FIFO occupancy
  histograms, deadlock pre-state ring buffer);
* :mod:`repro.obs.stitch` — merges the per-process JSONL exports of a
  router fabric run into one wall-clock-aligned Chrome trace and
  computes per-request critical paths and stage coverage.

Everything is opt-in: with no tracer/registry installed and no probe
attached, instrumented code paths cost one global read (spans) or one
attribute check per simulated cycle (the engine).  The CLI exposes the
layer as ``--trace-out``, ``--metrics-out`` and ``--profile`` flags;
``tools/obs_report.py`` summarizes a trace file into a hot-path table.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    install_metrics,
    uninstall_metrics,
)
from .probe import MetricsProbe, SimProbe
from .stitch import (
    critical_path,
    events_for_trace,
    stage_coverage,
    stitch_traces,
)
from .tracing import (
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
    install_tracer,
    new_span_id,
    new_trace_id,
    record_span,
    span,
    trace_context,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsProbe",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "SimProbe",
    "Tracer",
    "critical_path",
    "events_for_trace",
    "get_metrics",
    "get_tracer",
    "install_metrics",
    "install_tracer",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "span",
    "stage_coverage",
    "stitch_traces",
    "trace_context",
    "uninstall_metrics",
    "uninstall_tracer",
]
