"""Content-addressed fingerprints of stencil compile requests.

The compile pipeline (polyhedral analysis -> non-uniform partitioning ->
microarchitecture generation -> HLS) is fully deterministic in the
*content* of a :class:`~repro.stencil.spec.StencilSpec` plus the compile
options, so one SHA-256 over a canonical JSON encoding addresses the
compiled plan exactly: two requests with the same fingerprint are
guaranteed the same plan, regardless of submission order, benchmark
label or field ordering in the request.

Canonicalization rules:

* the spec's display ``name`` is **excluded** — a renamed copy of
  DENOISE hits DENOISE's cache entry;
* the derived (default) iteration domain serializes as ``null``
  (see :meth:`StencilSpec.to_json`), so passing the default explicitly
  changes nothing;
* JSON is dumped with sorted keys and no whitespace;
* :data:`FINGERPRINT_VERSION` is hashed in, so any change to the plan
  format or the compile pipeline's semantics invalidates every cached
  plan by bumping one constant.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..stencil.spec import StencilSpec

__all__ = [
    "FINGERPRINT_VERSION",
    "CompileOptions",
    "canonical_digest",
    "canonical_payload",
    "fingerprint",
]

#: Bump on any change to plan content or compile semantics.
FINGERPRINT_VERSION = 1


@dataclass(frozen=True)
class CompileOptions:
    """Options that change the compiled plan (and hence the hash)."""

    offchip_streams: int = 1

    def __post_init__(self) -> None:
        if self.offchip_streams < 1:
            raise ValueError("offchip_streams must be >= 1")

    def to_json(self) -> dict:
        return {"offchip_streams": self.offchip_streams}

    @classmethod
    def from_json(cls, data: dict) -> "CompileOptions":
        return cls(offchip_streams=int(data.get("offchip_streams", 1)))


def canonical_payload(
    spec: StencilSpec, options: CompileOptions
) -> dict:
    """The exact dict that gets hashed (useful for debugging misses)."""
    spec_json = spec.to_json()
    spec_json.pop("name")  # labels do not change the plan
    return {
        "version": FINGERPRINT_VERSION,
        "spec": spec_json,
        "options": options.to_json(),
    }


def canonical_digest(payload) -> str:
    """SHA-256 hex digest of any JSON-safe value, canonically encoded.

    Sorted keys, no whitespace — the one hashing convention shared by
    plan fingerprints and lowered buffer-program digests, so equal
    content always means equal digest.
    """
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint(
    spec: StencilSpec, options: CompileOptions = CompileOptions()
) -> str:
    """SHA-256 hex digest of the canonical request encoding."""
    return canonical_digest(canonical_payload(spec, options))
