"""Cross-implementation property tests.

Four independent implementations compute the same thing: the NumPy
golden reference, the point-tagged behavioural chain simulator, the
counter-controlled RTL layer, and the modulo-scheduled centralized
controller.  For random stencil windows all four must agree — the
strongest internal-consistency statement the repository makes.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.microarch.memory_system import build_memory_system
from repro.partitioning.proof import is_deadlock_free
from repro.rtl.design import simulate_rtl
from repro.sim.engine import ChainSimulator
from repro.sim.modulo_chain import ModuloChainSimulator
from repro.stencil.fusion import fuse
from repro.stencil.golden import golden_output_sequence
from repro.stencil.spec import StencilSpec, StencilWindow


@st.composite
def random_case(draw):
    n = draw(st.integers(2, 5))
    offsets = draw(
        st.sets(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=n,
            max_size=n,
        )
    )
    window = StencilWindow.from_offsets(sorted(offsets))
    mins, maxs = window.span()
    rows = draw(st.integers(maxs[0] - mins[0] + 2, 9))
    cols = draw(st.integers(maxs[1] - mins[1] + 2, 10))
    spec = StencilSpec("X", (rows, cols), window)
    seed = draw(st.integers(0, 2**16))
    grid = np.random.default_rng(seed).uniform(
        -5, 5, size=spec.grid
    )
    return spec, grid


class TestFourWayAgreement:
    @given(random_case())
    @settings(max_examples=25, deadline=None)
    def test_behavioural_rtl_modulo_golden_agree(self, case):
        spec, grid = case
        golden = golden_output_sequence(spec, grid)
        behavioural = ChainSimulator(
            spec, build_memory_system(spec.analysis()), grid
        ).run()
        rtl = simulate_rtl(
            spec, build_memory_system(spec.analysis()), grid
        )
        modulo = ModuloChainSimulator(
            spec, build_memory_system(spec.analysis()), grid
        ).run()
        assert np.allclose(behavioural.output_values(), golden)
        assert np.allclose(rtl.outputs, golden)
        assert np.allclose(modulo.output_values(), golden)

    @given(random_case())
    @settings(max_examples=15, deadline=None)
    def test_proof_checker_agrees_with_simulation(self, case):
        """The executable Appendix 9.2 proof holds exactly for the
        designs that simulate to completion."""
        spec, grid = case
        assert is_deadlock_free(spec.analysis(), max_states=300_000)

    @given(random_case(), random_case())
    @settings(max_examples=10, deadline=None)
    def test_fused_pipelines_match_composition(self, case_a, case_b):
        producer, _ = case_a
        consumer, _ = case_b
        # Re-grid the producer so the fused interior is non-empty.
        p_mins, p_maxs = producer.window.span()
        c_mins, c_maxs = consumer.window.span()
        need = tuple(
            (pa - pi) + (ca - ci) + 3
            for pi, pa, ci, ca in zip(
                p_mins, p_maxs, c_mins, c_maxs
            )
        )
        grid_shape = tuple(
            max(n, g) for n, g in zip(need, producer.grid)
        )
        producer = producer.with_grid(grid_shape)
        fused = fuse(producer, consumer)
        grid = np.random.default_rng(3).uniform(
            -2, 2, size=fused.grid
        )
        from repro.stencil.golden import run_golden

        fused_out = run_golden(fused, grid)
        intermediate = run_golden(producer, grid)
        chained_out = run_golden(
            consumer.with_grid(intermediate.shape), intermediate
        )
        assert np.allclose(fused_out, chained_out)
