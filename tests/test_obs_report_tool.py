"""Direct unit tests for the ``tools/obs_report.py`` summarizer."""

import importlib.util
import pathlib

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

_TOOL = (
    pathlib.Path(__file__).parent.parent / "tools" / "obs_report.py"
)


@pytest.fixture(scope="module")
def obs_report():
    spec = importlib.util.spec_from_file_location("obs_report", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _traced_file(tmp_path, fmt):
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    path = tmp_path / f"trace.{fmt}"
    if fmt == "jsonl":
        tracer.export_jsonl(str(path))
    else:
        tracer.export_chrome(str(path))
    return path


@pytest.mark.parametrize("fmt", ["json", "jsonl"])
def test_trace_input_summarized(obs_report, tmp_path, capsys, fmt):
    path = _traced_file(tmp_path, fmt)
    rc = obs_report.main([str(path), "--top", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "3 spans, 2 span names" in out
    assert "outer" in out and "inner" in out


def test_sort_by_calls(obs_report, tmp_path, capsys):
    path = _traced_file(tmp_path, "jsonl")
    rc = obs_report.main([str(path), "--sort", "calls"])
    out = capsys.readouterr().out
    assert rc == 0
    # "inner" ran twice, so it leads the calls-sorted table.
    table = out.splitlines()
    inner_row = next(i for i, l in enumerate(table) if "inner" in l)
    outer_row = next(i for i, l in enumerate(table) if "outer" in l)
    assert inner_row < outer_row


def test_metrics_json_input_is_graceful(obs_report, tmp_path, capsys):
    """A metrics snapshot is valid JSON but holds no spans: the tool
    must report that cleanly (rc 1), not crash or fabricate rows."""
    registry = MetricsRegistry()
    registry.counter("service_requests_total", {"status": "ok"}).inc()
    registry.histogram("service_compile_ms").observe(1.5)
    path = tmp_path / "metrics.json"
    registry.export_json(str(path))

    rc = obs_report.main([str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "no spans" in out


def test_missing_file_errors(obs_report, tmp_path, capsys):
    rc = obs_report.main([str(tmp_path / "absent.json")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "cannot read" in err


def test_metrics_mode_reports_service_health(
    obs_report, tmp_path, capsys
):
    registry = MetricsRegistry()
    registry.counter("service_requests_total", {"status": "ok"}).inc(9)
    registry.counter(
        "service_requests_total", {"status": "error"}
    ).inc()
    registry.counter(
        "service_cache_total", {"outcome": "hit"}
    ).inc(7)
    registry.counter("service_cache_evictions_total").inc(3)
    registry.counter(
        "service_cache_disk_lookups_total", {"outcome": "hit"}
    ).inc()
    registry.counter(
        "service_cache_disk_lookups_total", {"outcome": "miss"}
    ).inc(3)
    registry.counter(
        "service_worker_restarts_total", {"reason": "death"}
    ).inc(2)
    registry.gauge(
        "service_breaker_state", {"fingerprint": "abcdef012345"}
    ).set(1)
    registry.counter(
        "service_breaker_transitions_total", {"to": "open"}
    ).inc()
    path = tmp_path / "metrics.json"
    registry.export_json(str(path))

    rc = obs_report.main([str(path), "--metrics"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ok: 9" in out
    assert "evictions: 3" in out
    assert "disk_hit_rate: 0.25" in out
    assert "restarts_death: 2" in out
    assert "breakers_not_closed: 1" in out


def test_metrics_mode_rejects_non_metrics_json(
    obs_report, tmp_path, capsys
):
    path = _traced_file(tmp_path, "jsonl")
    rc = obs_report.main([str(path), "--metrics"])
    captured = capsys.readouterr()
    out = captured.out + captured.err
    assert rc in (1, 2)
    assert "metrics" in out or "JSON" in out


def test_truncated_jsonl_trace_fails_cleanly(
    obs_report, tmp_path, capsys
):
    """A chaos-killed run can tear a trace file mid-line; the tool
    must print one error line and exit nonzero, not traceback."""
    path = tmp_path / "torn.jsonl"
    whole = _traced_file(tmp_path, "jsonl").read_text()
    path.write_text(whole[: len(whole) - 20])
    rc = obs_report.main([str(path)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err
    assert len(captured.err.strip().splitlines()) == 1


def test_non_jsonl_garbage_fails_cleanly(obs_report, tmp_path, capsys):
    path = tmp_path / "garbage.jsonl"
    path.write_text("not json at all\x00\x01")
    rc = obs_report.main([str(path)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err


def test_truncated_metrics_json_fails_cleanly(
    obs_report, tmp_path, capsys
):
    registry = MetricsRegistry()
    registry.counter("service_requests_total").inc()
    path = tmp_path / "metrics.json"
    registry.export_json(str(path))
    path.write_text(path.read_text()[:-10])
    rc = obs_report.main([str(path), "--metrics"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "error:" in captured.err
    assert len(captured.err.strip().splitlines()) == 1


def test_jsonl_with_meta_header_skips_it(obs_report, tmp_path, capsys):
    """The trace_meta header line must not count as a span."""
    path = _traced_file(tmp_path, "jsonl")
    first = path.read_text().splitlines()[0]
    assert '"trace_meta"' in first
    rc = obs_report.main([str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "3 spans" in out
