"""Microarchitecture generation: the Fig 7 chain, physical mapping,
bandwidth/memory trade-off and full-accelerator assembly."""

from .accelerator import Accelerator, KernelInfo
from .components import (
    ChainSegment,
    DataFilter,
    DataPathSplitter,
    FifoImpl,
    ReuseFifo,
)
from .mapping import (
    ALL_BRAM_POLICY,
    DEFAULT_POLICY,
    LUTRAM_THRESHOLD,
    REGISTER_THRESHOLD,
    MappingPolicy,
    map_capacities,
    map_fifo,
    mapping_histogram,
)
from .memory_system import MemorySystem, build_memory_system
from .tiling import (
    TiledRunResult,
    TilingPlan,
    compare_tradeoffs,
    plan_tiling,
    simulate_tiled,
    tiling_tradeoff_curve,
)
from .tradeoff import (
    TradeoffPoint,
    break_chain,
    resegment,
    select_breaks,
    tradeoff_curve,
    with_offchip_streams,
)

__all__ = [
    "ALL_BRAM_POLICY",
    "Accelerator",
    "ChainSegment",
    "DEFAULT_POLICY",
    "DataFilter",
    "DataPathSplitter",
    "FifoImpl",
    "KernelInfo",
    "LUTRAM_THRESHOLD",
    "MappingPolicy",
    "MemorySystem",
    "REGISTER_THRESHOLD",
    "ReuseFifo",
    "TiledRunResult",
    "TilingPlan",
    "TradeoffPoint",
    "break_chain",
    "compare_tradeoffs",
    "build_memory_system",
    "map_capacities",
    "map_fifo",
    "mapping_histogram",
    "plan_tiling",
    "resegment",
    "select_breaks",
    "simulate_tiled",
    "tiling_tradeoff_curve",
    "tradeoff_curve",
    "with_offchip_streams",
]
