"""Accelerator chaining and inter-block communication (Fig 13c).

The paper's Appendix 9.3 argues that transforming every accelerator to a
single-stream interface lets accelerator 1 forward its output directly
into accelerator 2 — after loop reordering their orders coincide —
instead of bouncing a full block through on-chip memory.

:func:`chain_accelerators` actually runs two chained stencil
accelerators back-to-back in the cycle simulator and verifies the
composition against the golden reference.
:func:`forwarding_analysis` quantifies the buffering saved by direct
forwarding vs an intermediate block buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..microarch.memory_system import build_memory_system
from ..polyhedral.domain import BoxDomain
from ..sim.engine import ChainSimulator, SimulationResult
from ..stencil.golden import run_golden
from ..stencil.spec import StencilSpec


@dataclass(frozen=True)
class ChainedRun:
    """Results of a two-stage accelerator pipeline."""

    first: SimulationResult
    second: SimulationResult
    intermediate: np.ndarray
    final: np.ndarray


class ChainingError(ValueError):
    """The two stages cannot be composed."""


def intermediate_grid_shape(producer: StencilSpec) -> Tuple[int, ...]:
    """Shape of the array the producer emits: its iteration-domain box."""
    domain = producer.iteration_domain
    if not isinstance(domain, BoxDomain):
        raise ChainingError(
            "chaining requires a box iteration domain on the producer"
        )
    return domain.shape


def compose_consumer(
    producer: StencilSpec, consumer: StencilSpec
) -> StencilSpec:
    """Re-grid the consumer spec onto the producer's output shape."""
    shape = intermediate_grid_shape(producer)
    if len(shape) != consumer.dim:
        raise ChainingError(
            "producer output dimensionality does not match consumer"
        )
    return consumer.with_grid(shape)


def chain_accelerators(
    producer: StencilSpec,
    consumer: StencilSpec,
    grid: np.ndarray,
    kernel_latency: int = 4,
) -> ChainedRun:
    """Run producer -> consumer as a streaming pipeline.

    The producer's lexicographic output stream *is* the consumer's
    lexicographic input stream (the Fig 13c property), so the hand-off is
    a reshape of the ordered output sequence — no reordering buffer.
    """
    consumer = compose_consumer(producer, consumer)
    first = ChainSimulator(
        producer,
        build_memory_system(producer.analysis()),
        grid,
        kernel_latency=kernel_latency,
    ).run()
    shape = intermediate_grid_shape(producer)
    values = np.array(first.output_values(), dtype=np.float64)
    intermediate = values.reshape(shape)
    second = ChainSimulator(
        consumer,
        build_memory_system(consumer.analysis()),
        intermediate,
        kernel_latency=kernel_latency,
    ).run()
    final = np.array(
        second.output_values(), dtype=np.float64
    ).reshape(consumer.iteration_domain.shape)
    return ChainedRun(
        first=first,
        second=second,
        intermediate=intermediate,
        final=final,
    )


def golden_chain(
    producer: StencilSpec, consumer: StencilSpec, grid: np.ndarray
) -> np.ndarray:
    """Golden reference of the two-stage pipeline."""
    consumer = compose_consumer(producer, consumer)
    intermediate = run_golden(producer, grid)
    return run_golden(consumer, intermediate)


@dataclass(frozen=True)
class ForwardingAnalysis:
    """Buffering comparison for inter-accelerator communication."""

    block_buffer_elements: int  # store-and-forward through on-chip RAM
    forwarding_fifo_elements: int  # direct stream forwarding
    consumer_reuse_elements: int  # consumer's own reuse window (present
    # in both organizations)

    @property
    def saving_ratio(self) -> float:
        if self.block_buffer_elements == 0:
            return 0.0
        return 1.0 - (
            self.forwarding_fifo_elements / self.block_buffer_elements
        )


def forwarding_analysis(
    producer: StencilSpec,
    consumer: StencilSpec,
    rate_matching_depth: int = 4,
) -> ForwardingAnalysis:
    """Quantify Fig 13c: direct forwarding needs only a small
    rate-matching FIFO; the conventional organization stores the whole
    intermediate block in on-chip memory first."""
    consumer = compose_consumer(producer, consumer)
    shape = intermediate_grid_shape(producer)
    block = 1
    for extent in shape:
        block *= extent
    reuse = consumer.analysis().minimum_total_buffer()
    return ForwardingAnalysis(
        block_buffer_elements=block,
        forwarding_fifo_elements=rate_matching_depth,
        consumer_reuse_elements=reuse,
    )
