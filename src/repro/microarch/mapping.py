"""Heterogeneous mapping of reuse buffers to physical memories.

Section 3.5.1: because the non-uniform chain produces FIFOs of wildly
different sizes (1 vs 1023 for DENOISE), each one can pick the cheapest
physical implementation — slice registers for tiny FIFOs, distributed
(LUT) memory for medium ones, block RAM only for large ones.  Uniform
schemes cannot do this: all their banks are equally large and all go to
BRAM.

Thresholds follow Xilinx 7-series sizing: a SLICEM provides 32x2-bit
(to 256x1) distributed RAM, so buffers beyond a few hundred elements are
only economical in 18 Kb block RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .components import FifoImpl

#: Capacity (elements) up to which a FIFO maps to slice registers.
REGISTER_THRESHOLD = 4
#: Capacity (elements) up to which a FIFO maps to distributed LUT RAM.
LUTRAM_THRESHOLD = 128


@dataclass(frozen=True)
class MappingPolicy:
    """Thresholds steering the FIFO-to-memory mapping."""

    register_threshold: int = REGISTER_THRESHOLD
    lutram_threshold: int = LUTRAM_THRESHOLD
    force_bram: bool = False  # ablation: uniform-style all-BRAM mapping

    def __post_init__(self) -> None:
        if self.register_threshold < 0:
            raise ValueError("register threshold must be >= 0")
        if self.lutram_threshold < self.register_threshold:
            raise ValueError(
                "LUT-RAM threshold must be >= register threshold"
            )


DEFAULT_POLICY = MappingPolicy()
ALL_BRAM_POLICY = MappingPolicy(force_bram=True)


def map_fifo(
    capacity: int, policy: MappingPolicy = DEFAULT_POLICY
) -> FifoImpl:
    """Choose the physical implementation for one FIFO."""
    if capacity < 1:
        raise ValueError("capacity must be positive")
    if policy.force_bram:
        return FifoImpl.BRAM
    if capacity <= policy.register_threshold:
        return FifoImpl.REGISTER
    if capacity <= policy.lutram_threshold:
        return FifoImpl.LUTRAM
    return FifoImpl.BRAM


def map_capacities(
    capacities: Sequence[int], policy: MappingPolicy = DEFAULT_POLICY
) -> List[FifoImpl]:
    """Map a whole chain of FIFO capacities."""
    return [map_fifo(c, policy) for c in capacities]


def mapping_histogram(
    capacities: Sequence[int], policy: MappingPolicy = DEFAULT_POLICY
) -> dict:
    """How many FIFOs land in each implementation class."""
    hist = {impl: 0 for impl in FifoImpl}
    for impl in map_capacities(capacities, policy):
        hist[impl] += 1
    return {impl.value: count for impl, count in hist.items()}
