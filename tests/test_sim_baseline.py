"""Tests of the uniform-banked baseline simulator."""

import numpy as np
import pytest

from repro.partitioning.cyclic import plan_cyclic
from repro.partitioning.gmp import plan_gmp
from repro.sim.baseline import (
    UniformBankedSimulator,
    run_forced_bank_count,
    run_uniform_plan,
)
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE, RICIAN

from conftest import small_spec


class TestCorrectness:
    def test_cyclic_plan_matches_golden(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        plan = plan_cyclic(spec.analysis())
        result = run_uniform_plan(spec, plan, grid)
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )

    def test_gmp_plan_matches_golden(self):
        spec = small_spec(RICIAN)
        grid = make_input(spec)
        plan = plan_gmp(spec.analysis())
        result = run_uniform_plan(spec, plan, grid)
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )

    def test_outputs_in_iteration_order(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        plan = plan_cyclic(spec.analysis())
        result = run_uniform_plan(spec, plan, grid)
        iters = [i for i, _ in result.outputs]
        assert iters == sorted(iters)

    def test_wrong_grid_shape_rejected(self):
        spec = small_spec(DENOISE)
        plan = plan_cyclic(spec.analysis())
        with pytest.raises(ValueError):
            UniformBankedSimulator(
                spec, plan.mapping, np.zeros((2, 2))
            )


class TestTiming:
    def test_conflict_free_plan_achieves_ii_near_1(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        plan = plan_cyclic(spec.analysis())
        result = run_uniform_plan(spec, plan, grid)
        assert result.stats.conflict_iterations == 0
        assert result.stats.worst_iteration_cycles == 1
        # Fill overhead only: achieved II stays close to 1.
        assert result.stats.achieved_ii < 2.0

    def test_too_few_banks_degrade_ii(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        one_bank = run_forced_bank_count(spec, 1, grid)
        enough = run_forced_bank_count(spec, 16, grid)
        assert one_bank.stats.worst_iteration_cycles == 5
        assert (
            one_bank.stats.total_cycles > enough.stats.total_cycles
        )

    def test_ii_monotone_in_bank_count(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        cycles = [
            run_forced_bank_count(spec, n, grid).stats.total_cycles
            for n in (1, 2, 16)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_forced_runs_still_correct(self):
        """Conflicts cost cycles but never corrupt data."""
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        result = run_forced_bank_count(spec, 2, grid)
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(spec, grid),
        )

    def test_buffer_usage_tracked(self):
        spec = small_spec(DENOISE)
        grid = make_input(spec)
        plan = plan_cyclic(spec.analysis())
        result = run_uniform_plan(spec, plan, grid)
        assert result.stats.buffer_capacity_used > 0
        assert (
            result.stats.buffer_capacity_used
            <= spec.analysis().minimum_total_buffer() + 1
        )
