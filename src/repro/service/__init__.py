"""repro.service — a concurrent compile-and-execute stencil service.

The deterministic Fig 11 pipeline compiles one spec into one plan, so a
serving layer only ever needs to pay that cost once per distinct
(spec, options) content hash.  This package turns the reproduction into
a long-running service around that observation:

* :mod:`repro.service.fingerprint` — canonical, version-stamped content
  hashes of ``StencilSpec`` + compile options;
* :mod:`repro.service.plancache` — two-tier plan cache (bounded
  in-memory LRU over on-disk JSON) with single-flight stampede
  protection;
* :mod:`repro.service.scheduler` — bounded admission queue with
  per-request deadlines and graceful drain;
* :mod:`repro.service.executor` — worker-pool batch executor that
  groups requests by fingerprint, runs the vectorized golden path and
  cycle-sim-validates a weighted 1-in-N sample against the cached
  plan;
* :mod:`repro.service.pool` — the crash-isolated process-pool
  executor: fingerprint-sharded ``multiprocessing`` workers with
  supervised restarts, sibling-shard retries and per-plan circuit
  breaking;
* :mod:`repro.service.chaos` — deterministic fault injection (worker
  kills/hangs/slowdowns, cached-plan field fuzzing, disk-tier
  corruption) for the chaos campaign tests;
* :mod:`repro.service.proto` — the versioned wire protocol: typed
  ``Request`` / ``Response`` dataclasses (``proto: 2`` workload
  envelope, ``proto: 1`` flat benchmark/spec) with a closed status
  and error-kind taxonomy, plus the legacy bare-dict compatibility
  shim;
* :mod:`repro.service.workload` — typed ``single``/``iterate``/
  ``graph`` workload descriptions with structural validation and
  content-addressed fingerprints, and the planner that lowers them
  onto the chaining/fusion machinery as per-stage compile plans;
* :mod:`repro.service.api` — the :class:`StencilService` facade plus
  the JSON request/response surface behind ``repro serve`` /
  ``repro submit``;
* :mod:`repro.service.router` — the multi-node front end:
  rendezvous-hashes each request's plan fingerprint onto one of N
  service-node subprocesses, collapses identical in-flight requests
  globally and fails requests over to the next node in rendezvous
  order when a node dies (``repro route``);
* :mod:`repro.service.transport` — the TCP socket transport for the
  proto:1 wire protocol: connect-time handshakes, reconnect with
  seeded full-jitter backoff, heartbeat wedge detection and seeded
  socket-level fault injection (``repro serve --listen``,
  ``repro route --transport tcp`` / ``--connect``);
* :mod:`repro.service.lease` — cross-process single-flight lease
  files in a shared ``cache_dir``, so N routers sharing a cache
  perform exactly one cold compile per fingerprint (pid-liveness
  staleness, fsync'd atomic stealing, crashed-run cleanup).
"""

from .api import ServiceConfig, StencilService
from .chaos import ChaosConfig, ChaosInjector, PlanFuzzer
from .executor import (
    CanarySampler,
    Executor,
    PlanExecutor,
    PlanValidationError,
    compile_plan,
    executor_backends,
    make_executor,
    make_response,
    register_executor,
    validate_plan,
)
from .pool import CircuitBreaker, ProcessPlanExecutor, shard_of
from .fingerprint import (
    FINGERPRINT_VERSION,
    CompileOptions,
    fingerprint,
)
from .plancache import CachedPlan, CacheStats, PlanCache
from .proto import (
    ERROR_KINDS,
    PROTO_VERSION,
    STATUSES,
    ErrorInfo,
    ProtoError,
    Request,
    Response,
    error_response,
)
from .lease import FileLease, LeaseInfo, cleanup_stale_artifacts
from .router import NodeConfig, Router, RouterConfig, rendezvous_order
from .scheduler import (
    QueueClosedError,
    ResultSlot,
    Scheduler,
    WorkItem,
)
from .workload import (
    KernelRef,
    PlannedStage,
    Workload,
    WorkloadError,
    WorkloadPlan,
    plan_workload,
    request_fingerprint,
)
from .transport import (
    BackoffPolicy,
    HandshakeError,
    Heartbeat,
    Hello,
    NodeUnavailableError,
    SocketChaos,
    SocketConnection,
    SocketServer,
    TransportError,
    connect_with_backoff,
    parse_address,
)

__all__ = [
    "BackoffPolicy",
    "CachedPlan",
    "CacheStats",
    "CanarySampler",
    "ChaosConfig",
    "ChaosInjector",
    "CircuitBreaker",
    "CompileOptions",
    "ERROR_KINDS",
    "ErrorInfo",
    "Executor",
    "FINGERPRINT_VERSION",
    "FileLease",
    "HandshakeError",
    "Heartbeat",
    "Hello",
    "KernelRef",
    "LeaseInfo",
    "NodeConfig",
    "NodeUnavailableError",
    "PROTO_VERSION",
    "PlanCache",
    "PlanExecutor",
    "PlanFuzzer",
    "PlanValidationError",
    "PlannedStage",
    "ProcessPlanExecutor",
    "ProtoError",
    "QueueClosedError",
    "Request",
    "Response",
    "ResultSlot",
    "Router",
    "RouterConfig",
    "STATUSES",
    "Scheduler",
    "ServiceConfig",
    "SocketChaos",
    "SocketConnection",
    "SocketServer",
    "StencilService",
    "TransportError",
    "WorkItem",
    "Workload",
    "WorkloadError",
    "WorkloadPlan",
    "cleanup_stale_artifacts",
    "compile_plan",
    "connect_with_backoff",
    "error_response",
    "executor_backends",
    "fingerprint",
    "make_executor",
    "make_response",
    "parse_address",
    "plan_workload",
    "register_executor",
    "rendezvous_order",
    "request_fingerprint",
    "shard_of",
    "validate_plan",
]
