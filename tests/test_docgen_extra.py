"""Tests for the design-report generator and the extended kernels."""

import numpy as np
import pytest

from repro.flow.automation import compile_accelerator
from repro.flow.docgen import generate_design_report, write_design_report
from repro.microarch.memory_system import build_memory_system
from repro.sim.engine import ChainSimulator
from repro.stencil.extra_kernels import (
    EXTRA_BENCHMARKS,
    FD4_LAPLACIAN,
    FUSED_FORWARD,
    GAUSSIAN_5X5,
    JACOBI_2D,
    MOORE_27PT,
    get_extra_benchmark,
)
from repro.stencil.golden import golden_output_sequence, make_input
from repro.stencil.kernels import DENOISE


class TestDesignReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_design_report(compile_accelerator(DENOISE))

    def test_has_all_sections(self, report):
        for heading in (
            "# Design report — DENOISE",
            "## Architecture",
            "## Reuse FIFOs (Table 2)",
            "## Computation kernel",
            "## Resources and timing",
            "## Baseline comparison",
            "## Transformed kernel (Fig 4)",
            "## Memory-system netlist",
        ):
            assert heading in report

    def test_quotes_key_numbers(self, report):
        assert "2048" in report
        assert "FIFO 0" in report
        assert "1023" in report

    def test_baseline_rows_present(self, report):
        assert "[5] linear cyclic" in report
        assert "[8] padded GMP" in report
        assert "ours (non-uniform)" in report

    def test_embeds_sources(self, report):
        assert "#pragma HLS pipeline" in report
        assert "reuse_fifo #" in report

    def test_write_to_file(self, tmp_path):
        design = compile_accelerator(DENOISE.with_grid((16, 20)))
        path = tmp_path / "denoise.md"
        write_design_report(design, str(path))
        assert path.read_text().startswith("# Design report")


class TestExtraKernels:
    def test_registry(self):
        assert len(EXTRA_BENCHMARKS) == 10
        assert get_extra_benchmark("jacobi_2d") is JACOBI_2D
        with pytest.raises(KeyError):
            get_extra_benchmark("NOTHING")

    def test_gaussian_is_25_point(self):
        assert GAUSSIAN_5X5.n_points == 25
        assert GAUSSIAN_5X5.analysis().minimum_banks() == 24

    def test_fd4_reach_two_cross(self):
        assert FD4_LAPLACIAN.n_points == 9
        assert (0, 2) in FD4_LAPLACIAN.window
        assert (2, 2) not in FD4_LAPLACIAN.window

    def test_moore27_bank_count(self):
        assert MOORE_27PT.analysis().minimum_banks() == 26

    def test_asymmetric_window_plan_is_optimal(self):
        from repro.partitioning.nonuniform import plan_nonuniform

        plan = plan_nonuniform(FUSED_FORWARD.analysis())
        assert plan.num_banks == FUSED_FORWARD.n_points - 1

    @pytest.mark.parametrize(
        "name", sorted(EXTRA_BENCHMARKS), ids=str
    )
    def test_every_extra_kernel_simulates(self, name):
        spec = EXTRA_BENCHMARKS[name]
        small = spec.scaled(40 if spec.dim <= 2 else 12)
        grid = make_input(small)
        result = ChainSimulator(
            small, build_memory_system(small.analysis()), grid
        ).run()
        assert np.allclose(
            result.output_values(),
            golden_output_sequence(small, grid),
        )

    def test_gaussian_weights_sum_to_one(self):
        small = GAUSSIAN_5X5.scaled(40)
        grid = np.full(small.grid, 3.0)
        from repro.stencil.golden import run_golden

        out = run_golden(small, grid)
        assert np.allclose(out, 3.0)
