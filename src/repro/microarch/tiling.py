"""Grid tiling: the classical alternative to the Fig 14 trade-off.

Appendix 9.4 addresses the case where "the maximum reuse distance is so
large that the buffer sizes exceed the on-chip memory capacity" by
trading off-chip bandwidth for buffer size via chain breaking.  The
classical alternative is *tiling*: split the grid into strips along the
innermost dimension, process each strip with a small reuse buffer, and
re-fetch the halo columns shared by adjacent strips.

Works for any dimensionality with a box iteration domain: 2D grids tile
into column strips, 3D grids into x-line strips (shrinking both the
inter-row and the inter-plane reuse FIFOs, which scale with the
innermost extent).

Both techniques trade extra off-chip traffic for on-chip memory, with
different currencies: chain breaking adds whole extra passes of the
stream (bandwidth per cycle), tiling adds halo re-fetches (total
traffic) and keeps one access per cycle.  :func:`compare_tradeoffs`
puts both on a single buffer-vs-traffic plot; the tests verify tiled
execution is functionally identical to the monolithic accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..polyhedral.domain import BoxDomain
from ..stencil.spec import StencilSpec


@dataclass(frozen=True)
class TileStrip:
    """One innermost-axis strip of the tiled execution."""

    index: int
    out_col_lo: int  # global iteration coords covered (innermost axis)
    out_col_hi: int
    in_col_lo: int  # global input coords fetched (incl. halo)
    in_col_hi: int

    @property
    def out_width(self) -> int:
        return self.out_col_hi - self.out_col_lo + 1

    @property
    def in_width(self) -> int:
        return self.in_col_hi - self.in_col_lo + 1


@dataclass(frozen=True)
class TilingPlan:
    """A tiling of one stencil spec into innermost-axis strips."""

    spec: StencilSpec
    strip_width: int
    strips: Tuple[TileStrip, ...]
    buffer_per_strip: int
    words_per_strip: Tuple[int, ...]

    @property
    def n_strips(self) -> int:
        return len(self.strips)

    @property
    def total_offchip_words(self) -> int:
        return sum(self.words_per_strip)

    @property
    def monolithic_words(self) -> int:
        total = 1
        for g in self.spec.grid:
            total *= g
        return total

    @property
    def traffic_overhead(self) -> float:
        """Fractional extra off-chip traffic vs one monolithic pass."""
        return self.total_offchip_words / self.monolithic_words - 1.0


def plan_tiling(spec: StencilSpec, strip_width: int) -> TilingPlan:
    """Tile a box-domain spec into innermost-axis strips of output
    width ``strip_width`` (the last strip may be narrower)."""
    domain = spec.iteration_domain
    if not isinstance(domain, BoxDomain):
        raise ValueError("tiling requires a box iteration domain")
    if strip_width < 1:
        raise ValueError("strip width must be >= 1")
    mins, maxs = spec.window.span()
    axis = spec.dim - 1  # innermost dimension
    col_lo, col_hi = domain.lows[axis], domain.highs[axis]
    outer_words = 1
    for d, g in enumerate(spec.grid):
        if d != axis:
            outer_words *= g
    strips: List[TileStrip] = []
    words: List[int] = []
    a = col_lo
    while a <= col_hi:
        b = min(a + strip_width - 1, col_hi)
        strip = TileStrip(
            index=len(strips),
            out_col_lo=a,
            out_col_hi=b,
            in_col_lo=a + mins[axis],
            in_col_hi=b + maxs[axis],
        )
        strips.append(strip)
        words.append(outer_words * strip.in_width)
        a = b + 1
    # Per-strip buffer: analyze the strip-shaped sub-spec.
    widest = max(s.in_width for s in strips)
    sub_grid = spec.grid[:axis] + (widest,)
    sub = spec.with_grid(sub_grid)
    buffer_per_strip = sub.analysis().minimum_total_buffer()
    return TilingPlan(
        spec=spec,
        strip_width=strip_width,
        strips=tuple(strips),
        buffer_per_strip=buffer_per_strip,
        words_per_strip=tuple(words),
    )


def strip_spec(plan: TilingPlan, strip: TileStrip) -> StencilSpec:
    """The stand-alone spec executed for one strip."""
    axis = plan.spec.dim - 1
    grid = plan.spec.grid[:axis] + (strip.in_width,)
    return plan.spec.with_grid(grid)


def extract_strip_input(
    plan: TilingPlan, strip: TileStrip, grid: np.ndarray
) -> np.ndarray:
    """Cut the strip's input slab (with halo) out of the full grid."""
    return np.ascontiguousarray(
        grid[..., strip.in_col_lo : strip.in_col_hi + 1]
    )


@dataclass
class TiledRunResult:
    """Stitched output plus per-strip statistics."""

    outputs: np.ndarray  # shaped like the full iteration domain
    total_cycles: int
    offchip_words: int
    strips_run: int


def simulate_tiled(
    spec: StencilSpec,
    strip_width: int,
    grid: np.ndarray,
    kernel_latency: int = 4,
) -> TiledRunResult:
    """Run every strip through the cycle simulator and stitch the
    outputs back into the full iteration-domain array."""
    from ..sim.engine import ChainSimulator
    from .memory_system import build_memory_system

    plan = plan_tiling(spec, strip_width)
    domain = spec.iteration_domain
    out_shape = domain.shape
    stitched = np.zeros(out_shape)
    cycles = 0
    words = 0
    axis = spec.dim - 1
    for strip in plan.strips:
        sub = strip_spec(plan, strip)
        sub_grid = extract_strip_input(plan, strip, grid)
        system = build_memory_system(sub.analysis())
        result = ChainSimulator(
            sub, system, sub_grid, kernel_latency=kernel_latency
        ).run()
        values = np.array(result.output_values()).reshape(
            sub.iteration_domain.shape
        )
        col0 = strip.out_col_lo - domain.lows[axis]
        dest = [slice(None)] * spec.dim
        dest[axis] = slice(col0, col0 + strip.out_width)
        stitched[tuple(dest)] = values
        cycles += result.stats.total_cycles
        words += sum(result.stats.elements_streamed_per_segment)
    return TiledRunResult(
        outputs=stitched,
        total_cycles=cycles,
        offchip_words=words,
        strips_run=plan.n_strips,
    )


def tiling_tradeoff_curve(
    spec: StencilSpec, strip_widths
) -> List[dict]:
    """Buffer vs traffic across strip widths."""
    rows = []
    for width in strip_widths:
        plan = plan_tiling(spec, width)
        rows.append(
            {
                "strip_width": width,
                "strips": plan.n_strips,
                "onchip_buffer": plan.buffer_per_strip,
                "offchip_words": plan.total_offchip_words,
                "traffic_overhead_pct": round(
                    100 * plan.traffic_overhead, 1
                ),
            }
        )
    return rows


def compare_tradeoffs(
    spec: StencilSpec, strip_widths, max_streams: Optional[int] = None
) -> dict:
    """Chain breaking vs tiling on the buffer/traffic plane.

    Chain breaking multiplies *bandwidth* (streams/cycle) at constant
    total traffic per stream; tiling multiplies *traffic* (halo
    re-fetches) at constant bandwidth.  Returns both curves.
    """
    from .memory_system import build_memory_system
    from .tradeoff import tradeoff_curve

    system = build_memory_system(spec.analysis())
    stream_words = system.stream_domain.count()
    breaking = [
        {
            "streams_per_cycle": p.offchip_accesses_per_cycle,
            "onchip_buffer": p.total_buffer_size,
            "offchip_words": (
                p.offchip_accesses_per_cycle * stream_words
            ),
        }
        for p in tradeoff_curve(system, max_streams)
    ]
    tiling = tiling_tradeoff_curve(spec, strip_widths)
    return {"chain_breaking": breaking, "tiling": tiling}
